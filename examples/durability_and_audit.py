"""Durability + audit tooling: WAL recovery, diffs, history export.

A compliance-flavoured tour of the operational features:

1. run a durable engine (write-ahead log on disk);
2. "crash" and recover — transaction-time history comes back
   bit-for-bit, because replay forces the original commit timestamps;
3. ask audit questions: what changed on this account between two
   instants (``diff_vertex``), who changed the most (``WITH``
   aggregation pipeline);
4. export the complete version history as JSONL;
5. checkpoint to bound future recovery time.

Run with::

    python examples/durability_and_audit.py
"""

import json
import tempfile
from pathlib import Path

from repro import AeonG
from repro.io import export_history_jsonl


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="aeong-audit-"))
    data_dir = root / "db"

    # -- a durable engine -------------------------------------------------
    db = AeonG.open(data_dir, gc_interval_transactions=0)
    with db.transaction() as txn:
        accounts = {
            name: db.create_vertex(
                txn, ["Account"], {"owner": name, "balance": 1000}
            )
            for name in ("alice", "bob", "carol")
        }
    t_opened = db.now()

    # Some activity, including a suspicious drain of alice's account.
    transfers = [("alice", -700), ("bob", -50), ("alice", -250), ("carol", 120)]
    for owner, delta in transfers:
        with db.transaction() as txn:
            gid = accounts[owner]
            balance = db.get_vertex(txn, gid).properties["balance"]
            db.set_vertex_property(txn, gid, "balance", balance + delta)
    t_after = db.now()
    print(f"{db._wal.records_appended} transactions journaled to the WAL")

    # -- crash & recover --------------------------------------------------------
    db.close()  # simulate a process exit; nothing checkpointed yet
    db = AeonG.open(data_dir, gc_interval_transactions=0)
    print("recovered engine; balances now:",
          db.execute("MATCH (a:Account) RETURN a.owner, a.balance ORDER BY a.owner"))

    # -- audit: what happened to alice? -------------------------------------------
    with db.transaction() as txn:
        diff = db.diff_vertex(txn, accounts["alice"], t_opened - 1, t_after - 1)
    old, new = diff["changed"]["balance"]
    print(f"alice's balance changed {old} -> {new} over the audit window")
    assert new == 50

    # -- audit: number of versions per account (WITH pipeline) ---------------------
    rows = db.execute(
        f"MATCH (a:Account) TT BETWEEN 0 AND {db.now()} "
        "WITH a.owner AS owner, count(*) AS versions "
        "WHERE versions > 1 "
        "RETURN owner, versions ORDER BY versions DESC"
    )
    print("accounts with history:", rows)
    assert rows[0]["owner"] == "alice" and rows[0]["versions"] == 3

    # -- export the full audit trail -------------------------------------------------
    db.collect_garbage()  # migrate history to the KV store first
    audit_path = root / "audit.jsonl"
    lines = export_history_jsonl(db, audit_path)
    sample = json.loads(audit_path.read_text().splitlines()[0])
    print(f"exported {lines} versions to {audit_path}; first line: {sample}")

    # -- checkpoint: bound recovery time ----------------------------------------------
    db.checkpoint()
    db.close()
    db = AeonG.open(data_dir, gc_interval_transactions=0)
    rows = db.execute(
        f"MATCH (a:Account {{owner: 'alice'}}) TT SNAPSHOT {t_opened - 1} "
        "RETURN a.balance"
    )
    print("post-checkpoint recovery still answers historical queries:", rows)
    assert rows == [{"a.balance": 1000}]
    db.close()
    print("audit example complete")


if __name__ == "__main__":
    main()
