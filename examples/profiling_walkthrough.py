"""Profiling walkthrough: EXPLAIN a plan, then PROFILE a time-slice
query cold vs warm to watch the reconstruction cache work.

The script seeds a small bi-temporal graph — accounts whose balances
churn (transaction time) and offers with explicit validity intervals
(valid time) — garbage-collects so the old balance versions migrate to
the KV history store, and then:

1. renders the operator tree of the time-slice query (``EXPLAIN``);
2. profiles the query **cold** (reconstruction caches dropped): the
   temporal scan pays history fetches, KV seeks, and backward-delta
   replays to rebuild reclaimed versions (paper Algorithm 2);
3. profiles the identical query **warm**: the reconstruction cache
   answers instead, so seeks and replays collapse to zero — the effect
   the read-path performance layer exists to produce.

The two PROFILE trees print side by side so the counter movement is
obvious at a glance.

Run with::

    python examples/profiling_walkthrough.py
"""

from repro import AeonG, GraphModel


def seed(db):
    """Accounts with churned balances + offers with valid-time intervals."""
    with db.transaction() as txn:
        accounts = [
            db.create_vertex(
                txn, ["Account"], {"owner": f"acct-{i}", "balance": 0}
            )
            for i in range(4)
        ]
        for i in range(4):
            db.create_edge(
                txn, accounts[i], accounts[(i + 1) % 4], "TRANSFER", {"amt": 0}
            )
        # Valid-time objects: offers that were true over given intervals.
        db.create_vertex(txn, ["Offer"], {"pct": 10}, valid_time=(100, 200))
        db.create_vertex(txn, ["Offer"], {"pct": 25}, valid_time=(150, 300))
    t_mid = db.now()
    for round_no in range(1, 9):  # churn: 8 more balance versions each
        with db.transaction() as txn:
            for gid in accounts:
                db.set_vertex_property(txn, gid, "balance", round_no * 100)
    reclaimed = db.collect_garbage()
    print(f"seeded 4 accounts x 9 balance versions; GC migrated "
          f"{reclaimed} undo deltas to the history store\n")
    return t_mid


def side_by_side(left_title, left_lines, right_title, right_lines):
    width = max(len(line) for line in [left_title, *left_lines])
    rows = [(left_title, right_title)]
    for i in range(max(len(left_lines), len(right_lines))):
        rows.append(
            (
                left_lines[i] if i < len(left_lines) else "",
                right_lines[i] if i < len(right_lines) else "",
            )
        )
    return "\n".join(f"{left:<{width}}  {right}" for left, right in rows)


def main():
    db = AeonG(anchor_interval=4, gc_interval_transactions=0)
    t_mid = seed(db)
    query = f"MATCH (a:Account) TT SNAPSHOT {t_mid} RETURN a.owner, a.balance"

    print("== the plan (EXPLAIN executes nothing) ==")
    for line in db.explain_tree(query):
        print(line)

    print("\n== PROFILE: cold vs warm ==")
    db.history.invalidate_caches()          # drop the reconstruction cache
    cold = db.profile(query)
    warm = db.profile(query)                # identical query, warm cache
    assert cold.rows == warm.rows           # same answers either way
    print(side_by_side("-- cold (caches dropped)", cold.tree(),
                       "-- warm (second run)", warm.tree()))

    print("\n== totals ==")
    keys = ("reclaimed_hits", "history_fetches", "kv_seeks",
            "deltas_replayed", "cache_hits", "cache_misses")
    header = f"{'counter':<18}{'cold':>8}{'warm':>8}"
    print(header)
    for key in keys:
        print(f"{key:<18}{cold.totals[key]:>8}{warm.totals[key]:>8}")

    # The claims this example exists to demonstrate:
    assert cold.totals["reclaimed_hits"] > 0      # history was really read
    assert cold.totals["kv_seeks"] > 0
    assert cold.totals["deltas_replayed"] > 0
    assert warm.totals["cache_hits"] > 0          # the cache answered
    assert warm.totals["kv_seeks"] == 0           # ...so no KV work
    assert warm.totals["deltas_replayed"] == 0

    print("\nwarm run: the reconstruction cache replaces "
          f"{cold.totals['kv_seeks']} KV seeks and "
          f"{cold.totals['deltas_replayed']} delta replays with "
          f"{warm.totals['cache_hits']} cache hits.")

    # Valid-time queries profile the same way.
    vt = db.profile("MATCH (o:Offer) WHERE o.VT CONTAINS 175 RETURN o.pct")
    assert sorted(row["o.pct"] for row in vt.rows) == [10, 25]
    print("\nbi-temporal check: both offers valid at VT=175 found "
          "(see docs/OBSERVABILITY.md for reading the full profile).")
    db.close()


if __name__ == "__main__":
    main()
