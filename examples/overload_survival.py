"""Overload survival: retry, admission control, deadlines, degraded mode.

A tour of the transaction-lifecycle resilience features — how the
engine behaves when everything goes wrong at once:

1. a conflict storm: many writers hammer one counter through
   ``run_transaction`` and not a single increment is lost;
2. admission control: a bounded transaction gate queues the overflow
   and rejects with ``OverloadError`` only past the queue deadline;
3. a leaked transaction: the watchdog aborts it at its deadline, so
   the GC watermark is unpinned and history migration resumes;
4. a history-store outage: the circuit breaker trips, temporal reads
   degrade to current-only answers (flagged), migration pauses with
   requeue, and a half-open probe restores full service.

Run with::

    python examples/overload_survival.py
"""

import threading

from repro import (
    AeonG,
    FAILPOINTS,
    OverloadError,
    ResilienceConfig,
    RetryPolicy,
    TemporalCondition,
)


class ManualClock:
    """An advanceable clock — deadlines and breaker timeouts are measured
    on ``ResilienceConfig.clock``, so examples and tests need not sleep."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def conflict_storm() -> None:
    print("== 1. conflict storm: lost-update-free increments ==")
    db = AeonG(gc_interval_transactions=0)
    with db.transaction() as txn:
        counter = db.create_vertex(txn, ["Counter"], {"n": 0})
    policy = RetryPolicy(max_attempts=500, base_delay=0.0002, max_delay=0.005)

    def bump(txn):
        value = db.get_vertex(txn, counter).properties["n"]
        db.set_vertex_property(txn, counter, "n", value + 1)

    def worker():
        for _ in range(25):
            db.run_transaction(bump, policy=policy)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    with db.transaction() as txn:
        final = db.get_vertex(txn, counter).properties["n"]
    retries = db.metrics()["resilience"]["conflict_retries"]
    print(f"4 threads x 25 increments -> n={final} ({retries} retries)")
    assert final == 100


def admission_control() -> None:
    print("\n== 2. admission control: bounded concurrency ==")
    db = AeonG(
        gc_interval_transactions=0,
        resilience=ResilienceConfig(
            max_concurrent_transactions=2, admission_timeout=0.05
        ),
    )
    first = db.begin()
    second = db.begin()
    try:
        db.begin()
    except OverloadError as exc:
        print(f"third begin() rejected after the queue deadline: {exc}")
    db.commit(first)
    third = db.begin()  # a freed slot admits immediately
    print("slot freed by commit -> next begin() admitted")
    db.abort(second)
    db.abort(third)
    stats = db.metrics()["resilience"]["admission"]
    print(f"admission stats: admitted={stats['admitted']} "
          f"rejected={stats['rejected']}")


def leaked_transaction() -> None:
    print("\n== 3. leaked transaction: the watchdog unpins GC ==")
    clock = ManualClock()
    db = AeonG(
        gc_interval_transactions=0,
        anchor_interval=2,
        resilience=ResilienceConfig(watchdog_interval=0, clock=clock),
    )
    with db.transaction() as txn:
        gid = db.create_vertex(txn, ["Doc"], {"rev": 0})
    db.collect_garbage()  # reclaim the creation before the leak

    leaked = db.begin(timeout=5.0)  # ...and never committed or aborted
    for rev in (1, 2, 3):
        with db.transaction() as txn:
            db.set_vertex_property(txn, gid, "rev", rev)
    print(f"leaked snapshot pins the watermark: "
          f"collect_garbage() reclaimed {db.collect_garbage()} deltas")

    clock.advance(6.0)  # a real deployment just waits out the deadline
    aborted = db.sweep_expired()
    reclaimed = db.collect_garbage()
    print(f"watchdog aborted {aborted} zombie -> {reclaimed} deltas migrated")
    assert reclaimed > 0 and not leaked.is_active


def degraded_mode() -> None:
    print("\n== 4. history-store outage: breaker + degraded reads ==")
    clock = ManualClock()
    db = AeonG(
        gc_interval_transactions=0,
        anchor_interval=2,
        resilience=ResilienceConfig(
            breaker_failure_threshold=2,
            breaker_reset_timeout=30.0,
            degraded_reads="current-only",
            clock=clock,
        ),
    )
    with db.transaction() as txn:
        gid = db.create_vertex(txn, ["Doc"], {"rev": 0})
    t_created = db.now()
    for rev in (1, 2):
        with db.transaction() as txn:
            db.set_vertex_property(txn, gid, "rev", rev)
    db.collect_garbage()  # old revisions now live only in the KV store

    def old_revision():
        txn = db.begin()
        try:
            views = list(
                db.vertex_versions(
                    txn, gid, TemporalCondition.as_of(t_created - 1)
                )
            )
            return views[0].properties["rev"] if views else None
        finally:
            db.abort(txn)

    print(f"healthy: revision as of creation = {old_revision()}")
    FAILPOINTS.activate("history.fetch", "error", times=None)
    for attempt in (1, 2):
        try:
            old_revision()
        except Exception as exc:
            print(f"history fetch {attempt} failed: {type(exc).__name__}")
    state = db.metrics()["resilience"]["breaker"]["state"]
    print(f"breaker state: {state}")

    # Degraded service: current reads fine, temporal reads current-only.
    with db.transaction() as txn:
        db.set_vertex_property(txn, gid, "rev", 3)  # writes still land
    rows = db.execute(f"MATCH (n) TT SNAPSHOT {t_created - 1} RETURN n.rev")
    print(f"degraded temporal query -> {rows} "
          f"(last_read_degraded={db.last_read_degraded})")

    FAILPOINTS.clear()  # the outage ends...
    clock.advance(31.0)  # ...and the reset timeout elapses: next read probes
    print(f"after recovery probe: revision as of creation = {old_revision()}")
    breaker = db.metrics()["resilience"]["breaker"]
    print(f"breaker state: {breaker['state']} "
          f"(trips={breaker['trips']}, probes={breaker['probes']})")
    assert breaker["state"] == "closed"


def main() -> None:
    conflict_storm()
    admission_control()
    leaked_transaction()
    degraded_mode()
    print("\nAll overload scenarios survived.")


if __name__ == "__main__":
    main()
