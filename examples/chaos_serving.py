"""Chaos serving: no acknowledged write is ever lost.

The serving layer's contract under fire, demonstrated end to end:

1. a durable engine is served over TCP with a deliberately tiny
   admission gate (2 slots), so an 8-client Bi-LDBC burst runs well
   past capacity;
2. socket failpoints are armed on the server's connection I/O —
   periodic hard disconnects and torn response frames — while the
   retrying client transparently reconnects and resends;
3. overload never surfaces as a connection reset: it comes back as a
   structured, retryable ``OVERLOADED`` response with a
   ``retry_after`` hint, and the client's backoff absorbs it;
4. after the storm the server drains gracefully, the directory is
   reopened (crash-recovery path), and every acknowledged insert is
   still present — acknowledgement means the commit hit the WAL.

Run with::

    python examples/chaos_serving.py
"""

import tempfile
from pathlib import Path

from repro import AeonG, FAILPOINTS
from repro.resilience import ResilienceConfig, RetryPolicy
from repro.server import Client, ServerThread
from repro.server.app import ServerConfig
from repro.server.harness import run_load
from repro.server.protocol import SITE_CONN_READ, SITE_CONN_WRITE
from repro.workloads import bildbc, ldbc

POLICY = RetryPolicy(max_attempts=8, base_delay=0.01, max_delay=0.25)


def main() -> None:
    directory = Path(tempfile.mkdtemp(prefix="aeong-chaos-")) / "data"
    dataset = ldbc.generate(persons=25, seed=3)
    stream = bildbc.generate_operations(dataset, 200, seed=5)

    engine = AeonG.open(
        directory,
        gc_interval_transactions=0,
        resilience=ResilienceConfig(
            max_concurrent_transactions=2, admission_timeout=0.01
        ),
    )
    thread = ServerThread(engine, ServerConfig(executor_workers=16))
    host, port = thread.start()
    print(f"serving a durable engine on {host}:{port} "
          "(2 admission slots, 10ms queue deadline)")

    # Seed the graph gently, then arm the chaos: every 20th read off a
    # connection drops it cold, every 30th response frame is torn
    # mid-write (client sees a reset either way).
    run_load(host, port, dataset.ops, clients=2, policy=POLICY)
    FAILPOINTS.activate(SITE_CONN_READ, "disconnect", nth=20)
    FAILPOINTS.activate(SITE_CONN_WRITE, "torn-write", nth=30)
    print("chaos armed: disconnect every 20th read, "
          "torn frame every 30th write")

    try:
        record = run_load(
            host, port, stream.ops, clients=8, policy=POLICY
        )
    finally:
        FAILPOINTS.clear()

    print(
        f"\n8 clients replayed {record['offered']} Bi-LDBC operations "
        "at 4x admission capacity:"
    )
    print(f"  served      {record['served']:>5}")
    print(f"  shed        {record['shed']:>5}  (structured OVERLOADED, retried)")
    print(f"  disconnects {record['disconnects']:>5}  (socket faults, reconnected)")
    print(f"  retries     {record['retries']:>5}")
    print(f"  failed      {record['failed']:>5}")
    assert record["failed"] == 0, "retry policy should absorb the chaos"
    assert record["disconnects"] > 0, "chaos never bit"

    acked = record["acked_inserts"]
    with Client(host, port, policy=POLICY) as client:
        stored = {
            row["n.ext_id"]
            for row in client.query("MATCH (n) RETURN n.ext_id")
        }
    lost = [ext_id for ext_id in acked if ext_id not in stored]
    assert not lost, f"acknowledged inserts lost: {lost}"
    print(f"\nall {len(acked)} acknowledged inserts present while serving")

    server_counters = thread.server.metrics()
    thread.stop()
    engine.close()
    print("server drained; "
          f"{server_counters['requests_shed']} requests shed in total, "
          f"{server_counters['sessions_killed']} sessions killed")

    # The real guarantee: reopen the directory the way a restart after
    # a crash would, and the acknowledged writes are still all there.
    recovered = AeonG.open(directory, gc_interval_transactions=0)
    report = recovered.last_recovery
    try:
        stored = {
            row["n.ext_id"]
            for row in recovered.execute("MATCH (n) RETURN n.ext_id")
        }
    finally:
        recovered.close()
    lost = [ext_id for ext_id in acked if ext_id not in stored]
    assert not lost, f"acknowledged inserts lost across restart: {lost}"
    assert not report.corruption_detected
    print(
        f"restart replayed {report.transactions_replayed} WAL transactions "
        f"cleanly; all {len(acked)} acknowledged inserts survived"
    )


if __name__ == "__main__":
    main()
