"""Bi-temporal fraud auditing — the paper's motivating scenario.

Reproduces Example 1/2 of the paper: a credit-card transaction graph
where **valid time** tracks real-world card validity and phone
location, while **transaction time** (engine-assigned) guarantees an
immutable audit trail.  The auditor asks:

    "What was Jack's credit card balance on day 422, as recorded in
    the database at day 423?"

and then flags an impossible-travel fraud pattern: the card was used
in Chicago one hour after the owner's phone was still in Singapore.

Run with::

    python examples/fraud_audit.py
"""

from repro import AeonG, TemporalCondition


def main() -> None:
    db = AeonG(anchor_interval=5, enforce_vt_constraints=False)

    # -- day 420: the world as the bank knows it ---------------------------
    with db.transaction() as txn:
        jack = db.create_vertex(
            txn, ["Customer"], {"name": "Jack"}, valid_time=(0, 10_000)
        )
        card = db.create_vertex(
            txn,
            ["CreditCard"],
            {"account": "4485-01", "balance": 270},
            valid_time=(100, 500),  # card validity window
        )
        phone = db.create_vertex(
            txn, ["Phone"], {"imei": "49-015420", "location": "Singapore"},
            valid_time=(0, 10_000),
        )
        db.create_edge(txn, jack, card, "OWNS", valid_time=(100, 500))
        db.create_edge(txn, jack, phone, "CARRIES", valid_time=(0, 10_000))
    t_day_420 = db.now()

    # -- day 422: two card transactions change the balance ------------------
    with db.transaction() as txn:
        db.set_vertex_property(txn, card, "balance", 200)  # purchase 1
    with db.transaction() as txn:
        db.set_vertex_property(txn, card, "balance", 30)  # purchase 2 (Chicago)
        db.set_vertex_property(txn, card, "lastUsedIn", "Chicago")
    t_day_423 = db.now()  # the auditor's "recorded as of" point

    # -- day 424: phone location syncs (it was still in Singapore!) ---------
    with db.transaction() as txn:
        db.set_vertex_property(txn, phone, "location", "Singapore")

    # Migrate history to the KV store, like a nightly maintenance window.
    db.collect_garbage()

    # -- audit query 1: the paper's Example 2 --------------------------------
    # Balance on valid-time day 422, as recorded at transaction-time 423.
    rows = db.execute(
        "MATCH (n:Customer)-[r:OWNS]->(m:CreditCard) "
        "WHERE n.name = 'Jack' AND m.VT CONTAINS 422 "
        f"TT SNAPSHOT {t_day_423 - 1} "
        "RETURN m.balance"
    )
    print("Example 2 — balance on day 422 as recorded on day 423:", rows)

    # -- audit query 2: was the card *valid* when used? -----------------------
    rows = db.execute(
        "MATCH (m:CreditCard) WHERE m.VT CONTAINS 600 RETURN m.account"
    )
    print("cards valid on day 600 (card expired at 500):", rows)

    # -- audit query 3: impossible travel ------------------------------------
    # At the time of the Chicago purchase, where did the database say
    # Jack's phone was?  Transaction time is engine-assigned, so nobody
    # can tamper with this answer after the fact.
    with db.transaction() as txn:
        cond = TemporalCondition.as_of(t_day_423 - 1)
        jack_then = next(db.vertex_versions(txn, jack, cond))
        for edge, device in db.expand(txn, jack_then, cond, edge_types={"CARRIES"}):
            phone_location = device.properties["location"]
        card_then = next(db.vertex_versions(txn, card, cond))
        used_in = card_then.properties.get("lastUsedIn")
    print(f"at purchase time: card used in {used_in}, phone in {phone_location}")
    if used_in != phone_location:
        print("=> FLAGGED: impossible travel — likely fraud")

    # -- audit query 4: full balance history, immutable -----------------------
    rows = db.execute(
        f"MATCH (m:CreditCard) TT BETWEEN 0 AND {db.now()} "
        "RETURN m.balance ORDER BY m.balance"
    )
    print("complete recorded balance history:", rows)

    # Historical versions cannot be altered: transaction time is
    # engine-assigned and the reserved properties are rejected.
    try:
        with db.transaction() as txn:
            db.set_vertex_property(txn, card, "_tt_start", 0)
    except Exception as exc:
        print("tamper attempt rejected:", type(exc).__name__)

    # Sanity assertions so the example doubles as an integration check.
    assert rows[-1]["m.balance"] == 270
    assert db.execute(
        "MATCH (m:CreditCard) WHERE m.VT CONTAINS 600 RETURN m.account"
    ) == []
    print("audit complete;", db.storage_report())


if __name__ == "__main__":
    main()
