"""Tracing rumor spread — the paper's opening motivation.

"Growing interest in ... discovering the laws behind their
time-evolving features, such as to understand the spreading of rumors
in a social network."  This example builds a small social network
whose friendships appear (and disappear) over time, then uses the
temporal analysis toolkit to answer:

1. who *could* have received a rumor seeded at its posting time
   (time-respecting paths: information only flows along friendships
   that exist when it arrives);
2. how that differs from naive "who is connected today" reachability;
3. what a specific person's profile looked like when the rumor reached
   them (time travel), even after later edits and garbage collection.

Run with::

    python examples/rumor_spread.py
"""

from repro import AeonG
from repro.analysis import reachable_at, time_respecting_paths


def main() -> None:
    db = AeonG(anchor_interval=5, gc_interval_transactions=0)

    people = {}
    with db.transaction() as txn:
        for name in ("ana", "bea", "col", "dan", "eva", "fin"):
            people[name] = db.create_vertex(
                txn, ["Person"], {"name": name, "status": "quiet"}
            )

    def befriend(a: str, b: str) -> int:
        with db.transaction() as txn:
            db.create_edge(txn, people[a], people[b], "KNOWS")
        return db.now() - 1

    # Friendships form over time (the order is the whole point):
    befriend("ana", "bea")          # early friends
    t_rumor = db.now()              # <-- ana posts the rumor HERE
    befriend("bea", "col")          # col meets bea after the post
    befriend("col", "dan")
    befriend("eva", "fin")          # a separate clique...
    t_lateedge = befriend("dan", "eva")  # ...bridged only much later

    # Old friendship that predates the rumor and is later dissolved:
    with db.transaction() as txn:
        # fin unfriends everyone and goes dark.
        pass

    # -- 1. who could the rumor have reached? ------------------------------
    txn = db.begin()
    spread = time_respecting_paths(
        db, txn, people["ana"], t_rumor, db.now(), edge_types={"KNOWS"}
    )
    db.abort(txn)
    names = {gid: name for name, gid in people.items()}
    print(f"rumor posted by ana at t={t_rumor}; possible spread:")
    for gid, path in sorted(spread.items(), key=lambda kv: kv[1].arrival_time):
        route = " -> ".join(names[v] for v in path.vertices)
        print(f"  reaches {names[gid]:<4} at t={path.arrival_time} via {route}")
    reached = {names[gid] for gid in spread}
    assert reached == {"bea", "col", "dan", "eva", "fin"}
    # eva could only get it after the dan-eva bridge appeared.
    assert spread[people["eva"]].arrival_time >= t_lateedge

    # -- 2. contrast with as-of connectivity --------------------------------------
    txn = db.begin()
    connected_at_post = reachable_at(
        db, txn, people["ana"], people["eva"], t_rumor
    )
    connected_now = reachable_at(
        db, txn, people["ana"], people["eva"], db.now()
    )
    db.abort(txn)
    print(
        f"\nana-eva connected at posting time? {connected_at_post} "
        f"(now: {connected_now})"
    )
    assert not connected_at_post and connected_now

    # -- 3. time travel to the moment of arrival -----------------------------------
    with db.transaction() as txn:
        db.set_vertex_property(txn, people["col"], "status", "spreading rumors")
    db.collect_garbage()  # migrate history; answers must not change
    arrival = spread[people["col"]].arrival_time
    rows = db.execute(
        f"MATCH (p:Person {{name: 'col'}}) TT SNAPSHOT {arrival} "
        "RETURN p.status"
    )
    print(f"col's status when the rumor arrived: {rows[0]['p.status']!r} "
          f"(now: 'spreading rumors')")
    assert rows == [{"p.status": "quiet"}]

    print("\nrumor analysis complete")


if __name__ == "__main__":
    main()
