"""Quickstart: create a temporal graph, travel in time, run queries.

Run with::

    python examples/quickstart.py
"""

from repro import AeonG, TemporalCondition


def main() -> None:
    # An embedded temporal graph database.  Garbage collection (which
    # migrates history to the key-value store) runs automatically every
    # 512 commits; we also trigger it manually below.
    db = AeonG(anchor_interval=10)

    # -- writes are ordinary transactions --------------------------------
    with db.transaction() as txn:
        alice = db.create_vertex(
            txn, labels=["Person"], properties={"name": "Alice", "age": 34}
        )
        bob = db.create_vertex(
            txn, labels=["Person"], properties={"name": "Bob", "age": 29}
        )
        db.create_edge(txn, alice, bob, "KNOWS", {"since": 2019})

    t_before_raise = db.now()  # remember "now" on the engine clock

    with db.transaction() as txn:
        db.set_vertex_property(txn, alice, "age", 35)
        db.set_vertex_property(txn, alice, "title", "Dr.")

    # -- the Cypher-ish query language ------------------------------------
    rows = db.execute("MATCH (p:Person) RETURN p.name, p.age ORDER BY p.name")
    print("current persons:", rows)

    rows = db.execute(
        "MATCH (a:Person {name: 'Alice'})-[r:KNOWS]->(b) RETURN b.name, r.since"
    )
    print("alice knows:", rows)

    # -- time travel: TT SNAPSHOT / TT BETWEEN -----------------------------
    rows = db.execute(
        f"MATCH (p:Person {{name: 'Alice'}}) TT SNAPSHOT {t_before_raise - 1} "
        "RETURN p.age"
    )
    print("alice's age before the update:", rows)

    rows = db.execute(
        f"MATCH (p:Person {{name: 'Alice'}}) TT BETWEEN 0 AND {db.now()} "
        "RETURN p.age ORDER BY p.age"
    )
    print("every age alice ever had:", rows)

    # -- history survives garbage collection -------------------------------
    reclaimed = db.collect_garbage()
    print(f"garbage collection reclaimed {reclaimed} undo deltas")
    rows = db.execute(
        f"MATCH (p:Person {{name: 'Alice'}}) TT SNAPSHOT {t_before_raise - 1} "
        "RETURN p.age"
    )
    print("still answerable after GC:", rows)

    # -- the programmatic temporal API --------------------------------------
    with db.transaction() as txn:
        cond = TemporalCondition.between(0, db.now())
        versions = list(db.vertex_versions(txn, alice, cond))
        print("alice's versions (newest first):")
        for view in versions:
            print(f"  tt={view.tt} properties={view.properties}")

    print(db.storage_report())


if __name__ == "__main__":
    main()
