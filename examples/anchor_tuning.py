"""Tuning the anchor interval ``u`` — the paper's Figure 6(a) ablation.

AeonG stores history as backward diffs; every ``u`` diffs of one
object it inserts an *anchor* (a complete copy) so reconstruction
never replays more than ``u`` diffs.  Small ``u`` → more storage,
faster point queries; large ``u`` → less storage, longer replay
chains.  This example sweeps ``u`` over the TPC-DS-like workload
(whose hot customers accumulate hundreds of versions) and prints the
trade-off table, ending with the paper's recommendation (``u = 10``).

Run with::

    python examples/anchor_tuning.py
"""

import time

from repro.baselines import AeonGBackend
from repro.workloads import tpcds
from repro.workloads.driver import WorkloadDriver


def measure(anchor_interval: int, dataset, repetitions: int = 150):
    backend = AeonGBackend(
        anchor_interval=anchor_interval, gc_interval_transactions=400
    )
    driver = WorkloadDriver(backend, seed=31)
    driver.apply(dataset.ops)
    driver.finish_load()
    # Warm every customer once so the measurement reflects steady
    # state, not one-time cache builds.
    mid = backend.to_query_time(dataset.last_ts // 2)
    for customer in dataset.customer_ids:
        backend.vertex_at(customer, mid)
    run = driver.run_vertex_lookups(dataset.customer_ids, repetitions)
    return backend.storage_bytes(), run.latency.p50_us, backend.engine.history.anchors_written


def main() -> None:
    dataset = tpcds.generate(customers=40, items=60, updates=2500, seed=11)
    print(
        f"TPC-DS-like workload: {len(dataset.customer_ids)} customers, "
        f"{sum(1 for op in dataset.ops if op.kind == 'update_vertex')} "
        "attribute updates (rank-weighted onto hot customers)\n"
    )
    print(f"{'u':>6} | {'storage (bytes)':>16} | {'point query (us)':>17} | anchors")
    print("-" * 60)
    rows = []
    for interval in (1, 5, 10, 50, 100, 0):  # 0 = anchors disabled
        storage, mean_us, anchors = measure(interval, dataset)
        label = interval if interval else "off"
        rows.append((interval, storage, mean_us))
        print(f"{label:>6} | {storage:>16,} | {mean_us:>17.1f} | {anchors}")

    dense = next(r for r in rows if r[0] == 1)
    disabled = next(r for r in rows if r[0] == 0)
    print(
        f"\nanchors every diff cost {dense[1] / disabled[1]:.2f}x the storage "
        f"of no anchors, but point queries run "
        f"{disabled[2] / dense[2]:.2f}x faster."
    )
    print("the paper recommends u = 10 as the balance point for this data.")


if __name__ == "__main__":
    main()
