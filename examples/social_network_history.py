"""A temporal social network: LDBC-style data on all three systems.

Loads the same LDBC-like graph plus a Bi-LDBC update stream into
AeonG, T-GQL and Clock-G, then

1. answers the LDBC interactive short reads (IS1/IS3/IS4/IS5/IS7) at a
   historical instant on each system and checks they agree, and
2. prints the storage/latency comparison the paper's Figure 5 draws.

Run with::

    python examples/social_network_history.py
"""

import time

from repro.baselines import AeonGBackend, ClockGBackend, TGQLBackend
from repro.workloads import bildbc, ldbc
from repro.workloads import queries as q
from repro.workloads.driver import WorkloadDriver


def main() -> None:
    dataset = ldbc.generate(persons=60, seed=42)
    stream = bildbc.generate_operations(dataset, 1500, seed=43)
    print(
        f"dataset: {dataset.vertex_count} vertices, {dataset.edge_count} "
        f"edges; update stream: {len(stream.ops)} timestamped operations"
    )

    systems = [
        AeonGBackend(anchor_interval=10, gc_interval_transactions=500),
        TGQLBackend(),
        ClockGBackend(snapshot_interval=400),
    ]
    drivers = {}
    for backend in systems:
        started = time.perf_counter()
        driver = WorkloadDriver(backend, seed=7)
        driver.apply(dataset.ops)
        driver.apply(stream.ops)
        driver.finish_load()
        drivers[backend.name] = driver
        print(
            f"loaded {backend.name:7s} in {time.perf_counter() - started:6.2f}s "
            f"  storage = {backend.storage_bytes():>9,} bytes"
        )

    # -- a moment in the past ------------------------------------------------
    t_evt = dataset.last_ts + len(stream.ops) // 2  # mid-stream instant
    person = dataset.person_ids[7]
    message = dataset.post_ids[11]
    print(f"\nasking about event-time {t_evt} (mid update stream)")

    for name, target in [("IS1", person), ("IS3", person), ("IS4", message),
                         ("IS5", message), ("IS7", message)]:
        answers = {}
        for backend in systems:
            t = backend.to_query_time(t_evt)
            started = time.perf_counter()
            result = q.run_query(name, backend, target, t)
            elapsed_ms = (time.perf_counter() - started) * 1000
            answers[backend.name] = (result.rows, elapsed_ms)
        rows = {n: r for n, (r, _ms) in answers.items()}
        agree = rows["aeong"] == rows["tgql"] == rows["clockg"]
        timing = "  ".join(
            f"{n}={ms:7.2f}ms" for n, (_r, ms) in answers.items()
        )
        print(f"{name}: agree={agree}  {timing}")
        assert agree, f"{name} answers diverged"

    # -- who was friends with whom, then vs now --------------------------------
    aeong = systems[0]
    then = q.is3_friends(aeong, person, aeong.to_query_time(t_evt))
    now = q.is3_friends(aeong, person, aeong.to_query_time(stream.last_ts))
    print(
        f"\n{person}: {len(then)} friendships at t={t_evt}, "
        f"{len(now)} now (stream deletes/creates KNOWS edges)"
    )

    # -- storage comparison (the Figure 5(a) shape) ------------------------------
    print("\nstorage comparison (same data, three designs):")
    aeong_bytes = systems[0].storage_bytes()
    for backend in systems:
        ratio = backend.storage_bytes() / aeong_bytes
        print(f"  {backend.name:7s} {backend.storage_bytes():>9,} bytes "
              f"({ratio:4.1f}x AeonG)")


if __name__ == "__main__":
    main()
