"""An interactive shell for the temporal query language.

Run as ``python -m repro`` (optionally with ``--data DIR`` to open a
saved snapshot).  Queries execute against an embedded engine; results
print as aligned tables.  Dot-commands drive the engine itself:

========  =====================================================
command   effect
========  =====================================================
``.help``     list commands
``.now``      print the engine's next commit timestamp
``.gc``       run one garbage-collection (migration) epoch
``.storage``  print the storage report
``.metrics``  print operational counters (JSON; ``.metrics read_path``
              for one section)
``.explain Q``  print the operator tree for statement ``Q``
``.profile Q``  execute ``Q`` and print the per-operator profile
``.index L P``  create a label(+property) index
``.save DIR``   snapshot the engine to a directory
``.quit``     exit
========  =====================================================

Subcommands (``python -m repro <sub> ...`` / ``aeong <sub> ...``):
``verify DIR`` runs the offline integrity check, ``metrics DIR``
exports a saved database's metrics (Prometheus text, ``--json`` for
the registry dict), ``serve DIR`` starts the TCP serving layer over a
durable engine (see ``docs/SERVING.md``) — as a replica of another
node with ``--replica-of HOST:PORT``, semi-sync with
``--sync-replication``, and with a Prometheus endpoint via
``--metrics-port N`` (see ``docs/REPLICATION.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Iterable, Optional, TextIO

from repro.core.engine import AeonG
from repro.errors import ReproError

PROMPT = "aeong> "


def format_table(rows: list[dict[str, Any]]) -> str:
    """Render result rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    rendered = [
        {column: _render_cell(row.get(column)) for column in columns}
        for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered))
        for column in columns
    }
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    body = [
        " | ".join(row[column].ljust(widths[column]) for column in columns)
        for row in rendered
    ]
    footer = f"({len(rows)} row{'s' if len(rows) != 1 else ''})"
    return "\n".join([header, separator, *body, footer])


def _render_cell(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        return value
    return repr(value)


class Shell:
    """One interactive session over an engine."""

    def __init__(self, engine: AeonG, out: TextIO) -> None:
        self.engine = engine
        self.out = out
        self.running = True

    def handle(self, line: str) -> None:
        """Process one input line (query or dot-command)."""
        line = line.strip()
        if not line:
            return
        if line.startswith("."):
            self._dot_command(line)
            return
        try:
            rows = self.engine.execute(line)
        except ReproError as exc:
            print(f"error: {exc}", file=self.out)
            return
        print(format_table(rows), file=self.out)

    def _dot_command(self, line: str) -> None:
        parts = line.split()
        command, args = parts[0], parts[1:]
        if command == ".help":
            print(_help_text(), file=self.out)
        elif command in (".explain", ".profile"):
            rest = line.split(None, 1)
            if len(rest) < 2 or not rest[1].strip():
                print(f"usage: {command} STATEMENT", file=self.out)
                return
            statement = rest[1].strip()
            try:
                if command == ".explain":
                    for plan_line in self.engine.explain_tree(statement):
                        print(plan_line, file=self.out)
                else:
                    profile = self.engine.profile(statement)
                    print(format_table(profile.table()), file=self.out)
            except ReproError as exc:
                print(f"error: {exc}", file=self.out)
        elif command == ".now":
            print(self.engine.now(), file=self.out)
        elif command == ".gc":
            reclaimed = self.engine.collect_garbage()
            print(f"reclaimed {reclaimed} undo deltas", file=self.out)
        elif command == ".storage":
            print(self.engine.storage_report(), file=self.out)
        elif command == ".metrics":
            import json

            metrics = self.engine.metrics()
            if args:
                section = metrics.get(args[0])
                if section is None:
                    print(
                        f"unknown metrics section {args[0]}; one of: "
                        + " ".join(sorted(metrics)),
                        file=self.out,
                    )
                    return
                metrics = {args[0]: section}
            print(json.dumps(metrics, indent=2, default=str), file=self.out)
        elif command == ".index":
            if not args:
                print("usage: .index LABEL [PROPERTY]", file=self.out)
                return
            try:
                if len(args) == 1:
                    self.engine.create_label_index(args[0])
                else:
                    self.engine.create_label_property_index(args[0], args[1])
                print("index created", file=self.out)
            except ReproError as exc:
                print(f"error: {exc}", file=self.out)
        elif command == ".save":
            if not args:
                print("usage: .save DIRECTORY", file=self.out)
                return
            try:
                self.engine.save(args[0])
                print(f"saved to {args[0]}", file=self.out)
            except ReproError as exc:
                print(f"error: {exc}", file=self.out)
        elif command in (".quit", ".exit"):
            self.running = False
        else:
            print(f"unknown command {command}; try .help", file=self.out)


def _help_text() -> str:
    return (
        "queries: any statement of the temporal query language, e.g.\n"
        "  CREATE (n:Person {name: 'Jack'})\n"
        "  MATCH (n:Person) RETURN n.name\n"
        "  MATCH (n:Person) TT SNAPSHOT 5 RETURN n\n"
        "  EXPLAIN MATCH (n:Person) RETURN n.name\n"
        "  PROFILE MATCH (n) TT SNAPSHOT 5 RETURN n\n"
        "commands: .help .now .gc .storage .metrics [SECTION] "
        ".explain Q .profile Q .index L [P] .save DIR .quit"
    )


def run(
    lines: Iterable[str],
    engine: Optional[AeonG] = None,
    out: TextIO = sys.stdout,
    interactive: bool = False,
) -> AeonG:
    """Feed ``lines`` to a shell; returns the engine (for tests)."""
    shell = Shell(engine if engine is not None else AeonG(), out)
    for line in lines:
        if interactive:
            print(f"{PROMPT}{line.rstrip()}", file=out)
        shell.handle(line)
        if not shell.running:
            break
    return shell.engine


def _open_for_verify(path: str) -> AeonG:
    """Open a closed database directory for verification.

    Accepts either an engine snapshot (``save()`` layout, ``meta.bin``
    present) or a durability directory (WAL + optional checkpoint, the
    ``durability_dir`` layout) — whichever the path turns out to be.
    """
    from pathlib import Path

    directory = Path(path)
    if not directory.is_dir():
        raise ReproError(f"{path} is not a database directory")
    if (directory / "meta.bin").exists():
        return AeonG.load(directory)
    return AeonG.open(directory)


def _verify_main(argv: list[str]) -> int:
    """``aeong verify`` — offline integrity check (fsck) of a database.

    Exit status: 0 when the store verifies clean (warnings allowed),
    1 when error findings remain, 2 when the database cannot be opened.
    """
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro verify",
        description=(
            "Verify (and optionally repair) the history store of a saved "
            "AeonG database: record checksums, interval tiling, anchor "
            "replay, anchor cadence, and the current-store seam."
        ),
    )
    parser.add_argument(
        "path", help="snapshot, durability, or (with --backup) archive "
        "directory"
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the full IntegrityReport as JSON",
    )
    parser.add_argument(
        "--repair", action="store_true",
        help="repair what can be repaired and write the snapshot back "
        "(snapshot directories only)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures (exit 1)",
    )
    parser.add_argument(
        "--backup", action="store_true", dest="as_backup",
        help="PATH is a backup archive: check its manifest, checksums, "
        "and WAL segment structure, then restore to a scratch "
        "directory and run the integrity scrubber over the result",
    )
    options = parser.parse_args(argv)
    if options.as_backup:
        return _verify_backup(options)
    try:
        engine = _open_for_verify(options.path)
    except ReproError as exc:
        print(f"error: cannot open {options.path}: {exc}", file=sys.stderr)
        return 2
    try:
        engine.scrubber.auto_repair = options.repair
        report = engine.scrub_full()
        if options.repair:
            from pathlib import Path

            if (Path(options.path) / "meta.bin").exists():
                engine.save(options.path)
            else:
                print(
                    "note: --repair on a durability directory fixes the "
                    "open engine only; checkpoint to persist",
                    file=sys.stderr,
                )
        if options.as_json:
            print(json.dumps(report.as_dict(), indent=2))
        else:
            summary = report.as_dict()
            print(
                f"checked {summary['gids_checked']} objects, "
                f"{summary['records_checked']} records "
                f"({summary['checksums_verified']} checksummed, "
                f"{summary['legacy_records']} legacy)"
            )
            for finding in report.findings:
                repair = f" [{finding.repair}]" if finding.repair else ""
                print(
                    f"{finding.severity}: {finding.code} "
                    f"{finding.object_kind} gid={finding.gid} "
                    f"tt=[{finding.tt_start},{finding.tt_end}) "
                    f"{finding.detail}{repair}"
                )
            verdict = "clean" if report.ok else "FAILED"
            print(
                f"verify {verdict}: {len(report.errors())} error(s), "
                f"{len(report.warnings())} warning(s), "
                f"{summary['repairs_applied']} repair(s) applied"
            )
        if not report.ok:
            return 1
        if options.strict and report.warnings():
            return 1
        return 0
    finally:
        engine.close()


def _verify_backup(options) -> int:
    """``aeong verify --backup DEST`` — fsck a backup archive in place.

    Checks the manifest checksum, every archived file's size and
    crc32, and the WAL segments' frame structure; then restores the
    archive to a scratch directory and runs the full integrity
    scrubber over the result, so a backup is proven restorable without
    touching the operator's data directories.  Exit status matches
    ``verify``: 0 clean, 1 findings, 2 archive unreadable.
    """
    import json
    import shutil
    import tempfile

    from repro.backup import restore_backup, verify_backup

    try:
        manifest, findings = verify_backup(options.path)
    except ReproError as exc:
        print(
            f"error: cannot read backup {options.path}: {exc}",
            file=sys.stderr,
        )
        return 2
    for finding in findings:
        print(
            f"{finding['severity']}: {finding['code']} "
            f"{finding['name']} {finding['detail']}"
        )
    if findings:
        print(f"verify FAILED: {len(findings)} archive error(s)")
        return 1
    scratch = tempfile.mkdtemp(prefix="aeong-verify-backup-")
    target = f"{scratch}/restored"
    try:
        restore_backup(options.path, target)
        engine = AeonG.open(target)
        try:
            report = engine.scrub_full()
            summary = report.as_dict()
        finally:
            engine.close()
    except ReproError as exc:
        print(f"error: backup does not restore: {exc}", file=sys.stderr)
        return 2
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    if options.as_json:
        print(
            json.dumps(
                {"manifest": manifest, "scrub": summary}, indent=2
            )
        )
    else:
        print(
            f"archive ok: watermark {manifest['watermark']}, "
            f"{len(manifest['files'])} file(s), "
            f"{len(manifest['segments'])} WAL segment(s), "
            f"{manifest['backups']} backup run(s)"
        )
        verdict = "clean" if report.ok else "FAILED"
        print(
            f"restored scrub {verdict}: {len(report.errors())} error(s), "
            f"{len(report.warnings())} warning(s)"
        )
    if not report.ok:
        return 1
    if options.strict and report.warnings():
        return 1
    return 0


def _backup_main(argv: list[str]) -> int:
    """``aeong backup DIR DEST`` — online backup of a durability dir.

    Exit status: 0 on success, 1 when the backup fails, 2 when the
    source is not a durability directory.
    """
    import json

    from repro.backup import create_backup

    parser = argparse.ArgumentParser(
        prog="python -m repro backup",
        description=(
            "Capture an online, checksummed backup of a running (or "
            "stopped) engine's durability directory: checkpoint copy + "
            "WAL suffix + CRC-verified MANIFEST.  With --incremental, "
            "append the WAL delta since the archive's watermark."
        ),
    )
    parser.add_argument("source", help="the engine's durability directory")
    parser.add_argument("dest", help="archive directory to create/extend")
    parser.add_argument(
        "--incremental", action="store_true",
        help="extend an existing archive instead of creating a new one",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the BackupReport as JSON",
    )
    options = parser.parse_args(argv)
    from pathlib import Path

    if not (Path(options.source) / "engine.wal").exists():
        print(
            f"error: {options.source} has no engine.wal — not a "
            "durability directory",
            file=sys.stderr,
        )
        return 2
    try:
        report = create_backup(
            options.source, options.dest, incremental=options.incremental
        )
    except ReproError as exc:
        print(f"error: backup failed: {exc}", file=sys.stderr)
        return 1
    if options.as_json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        kind = "incremental" if report.incremental else "full"
        print(
            f"{kind} backup complete: watermark {report.watermark}, "
            f"{report.files_copied} file(s), {report.bytes_copied} bytes, "
            f"{report.wal_records_archived} WAL record(s) archived"
        )
    return 0


def _restore_main(argv: list[str]) -> int:
    """``aeong restore DEST DIR [--as-of TS]`` — restore an archive.

    Exit status: 0 on success, 1 when the restore fails (damaged
    archive, timestamp outside coverage, target exists), 2 when the
    archive cannot be read.
    """
    import json

    from repro.backup import read_manifest, restore_backup

    parser = argparse.ArgumentParser(
        prog="python -m repro restore",
        description=(
            "Restore a backup archive into a fresh durability "
            "directory, optionally at a past commit timestamp "
            "(point-in-time recovery: newest checkpoint at or below "
            "TS, archived WAL replayed up to TS)."
        ),
    )
    parser.add_argument("archive", help="backup archive directory")
    parser.add_argument("target", help="durability directory to create")
    parser.add_argument(
        "--as-of", type=int, default=None, metavar="TS", dest="as_of",
        help="restore the state as of commit timestamp TS "
        "(default: the archive watermark)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the RestoreReport as JSON",
    )
    options = parser.parse_args(argv)
    try:
        read_manifest(options.archive)
    except ReproError as exc:
        print(
            f"error: cannot read backup {options.archive}: {exc}",
            file=sys.stderr,
        )
        return 2
    try:
        report = restore_backup(
            options.archive, options.target, as_of=options.as_of
        )
    except ReproError as exc:
        print(f"error: restore failed: {exc}", file=sys.stderr)
        return 1
    if options.as_json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(
            f"restored to {options.target} as of ts {report.as_of}: "
            f"checkpoint fence {report.checkpoint_fence}, "
            f"{report.records_replayed} WAL record(s) replayed, "
            f"{report.bytes_restored} bytes"
        )
    return 0


def _metrics_main(argv: list[str]) -> int:
    """``aeong metrics`` — export a saved database's metrics.

    Prints the Prometheus text exposition by default, or the full
    registry snapshot (counters, histograms, every ``metrics()``
    section) as JSON with ``--json``.  Exit status 2 when the database
    cannot be opened.
    """
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description=(
            "Export the metrics registry of a saved AeonG database "
            "(Prometheus text format, or JSON with --json)."
        ),
    )
    parser.add_argument("path", help="snapshot or durability directory")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the registry snapshot as JSON",
    )
    options = parser.parse_args(argv)
    try:
        engine = _open_for_verify(options.path)
    except ReproError as exc:
        print(f"error: cannot open {options.path}: {exc}", file=sys.stderr)
        return 2
    try:
        if options.as_json:
            snapshot = engine.observability.registry.as_dict()
            print(json.dumps(snapshot, indent=2, default=str))
        else:
            print(engine.metrics_text(), end="")
        return 0
    finally:
        engine.close()


def _serve_main(argv: list[str]) -> int:
    """``aeong serve`` — run the TCP serving layer over a database.

    Opens (or creates) a durable engine at ``DIR`` — replaying its WAL
    and printing the recovery summary — binds the asyncio server, and
    serves until SIGTERM/SIGINT triggers a graceful drain.  Protocol
    and operational behavior are specified in ``docs/SERVING.md``.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Serve an AeonG database over TCP (length-prefixed JSON "
            "protocol) until SIGTERM/SIGINT drains it."
        ),
    )
    parser.add_argument("path", help="durability directory (created if new)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks a free port and prints it)",
    )
    parser.add_argument(
        "--max-connections", type=int, default=64,
        help="connections past this are shed with a retryable error",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=5.0,
        help="seconds a drain waits for in-flight sessions",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also serve GET /metrics (Prometheus text) over HTTP on "
        "this port (0 picks a free port and prints it)",
    )
    replication = parser.add_argument_group(
        "replication (docs/REPLICATION.md)"
    )
    replication.add_argument(
        "--replica-of", metavar="HOST:PORT", default=None,
        help="start as a replica streaming the WAL of the primary at "
        "HOST:PORT; serves reads, rejects writes with NOT_PRIMARY",
    )
    replication.add_argument(
        "--replica-id", default="replica-1",
        help="this replica's identity on the primary (default %(default)s)",
    )
    replication.add_argument(
        "--lease-timeout", type=float, default=2.0, metavar="SECONDS",
        help="replica promotes itself after this long without a "
        "successful fetch (default %(default)s)",
    )
    replication.add_argument(
        "--poll-interval", type=float, default=0.2, metavar="SECONDS",
        help="replica long-poll interval against the primary "
        "(default %(default)s)",
    )
    replication.add_argument(
        "--no-auto-promote", action="store_true",
        help="on lease expiry, keep retrying instead of promoting",
    )
    replication.add_argument(
        "--sync-replication", action="store_true",
        help="primary holds each commit ack until a replica applied it "
        "(semi-synchronous; no-op while no replica is registered)",
    )
    options = parser.parse_args(argv)
    from repro.server.app import ServerConfig, serve

    try:
        serve(
            options.path,
            config=ServerConfig(
                host=options.host,
                port=options.port,
                max_connections=options.max_connections,
                drain_grace=options.drain_grace,
            ),
            replica_of=options.replica_of,
            replica_id=options.replica_id,
            lease_timeout=options.lease_timeout,
            poll_interval=options.poll_interval,
            auto_promote=not options.no_auto_promote,
            sync_replication=options.sync_replication,
            metrics_port=options.metrics_port,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "verify":
        return _verify_main(argv[1:])
    if argv and argv[0] == "metrics":
        return _metrics_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "backup":
        return _backup_main(argv[1:])
    if argv and argv[0] == "restore":
        return _restore_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Interactive shell for the AeonG temporal graph database",
    )
    parser.add_argument(
        "--data", metavar="DIR", help="open an engine snapshot directory"
    )
    parser.add_argument(
        "--query", "-q", action="append", default=[],
        help="execute one statement and exit (repeatable)",
    )
    parser.add_argument(
        "--no-temporal", action="store_true",
        help="run the vanilla (TGDB-noT) configuration",
    )
    options = parser.parse_args(argv)
    try:
        if options.data:
            engine = AeonG.load(options.data)
        else:
            engine = AeonG(temporal=not options.no_temporal)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if options.query:
        run(options.query, engine)
        return 0
    print("AeonG temporal graph shell — .help for help, .quit to exit")
    shell = Shell(engine, sys.stdout)
    try:
        while shell.running:
            try:
                line = input(PROMPT)
            except EOFError:
                break
            shell.handle(line)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
