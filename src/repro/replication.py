"""Primary → replica WAL-shipping replication with lease-based failover.

Documented in ``docs/REPLICATION.md`` (topology, lease and fencing
rules, the failover walkthrough).

Topology is single-primary, N replicas, pull-based: each replica runs a
:class:`ReplicaRunner` thread that long-polls the primary's serving
layer (``repl_fetch`` over the existing length-prefixed protocol) for
engine-WAL records past its applied watermark, verifies each record's
checksum envelope, and applies it through the timestamp-safe replay
path (:meth:`AeonG.apply_replicated`, built on
``TransactionManager.begin_replay``).  Every fetch doubles as a
heartbeat and a cumulative acknowledgement, so:

* the primary knows each replica's **applied watermark** — the
  replication *fence* that stops checkpoints from truncating WAL
  records a registered replica still needs, and the condition
  synchronous commits (``sync_commit=True``) wait on;
* the replica knows the primary is alive — when no fetch succeeds for
  ``lease_timeout`` seconds the lease is expired and the replica
  **promotes itself**: it bumps the cluster epoch, seals history at
  its fencing token (= last applied commit timestamp), and starts
  accepting writes.

Fencing: every replication message carries the sender's epoch.  A
zombie primary — one that kept serving after its lease expired — ships
records under the old epoch; receivers reject them with
:class:`~repro.errors.ReplicationFencedError` instead of forking
history.  A replica whose watermark runs *ahead* of its primary's is
diverged (:class:`~repro.errors.ReplicationDivergedError`) and must be
resynced from a fresh copy.

Snapshot bootstrap: resync is no longer terminal.  A replica that hits
``REPL_RESYNC`` (it fell behind a WAL truncation) or ``REPL_DIVERGED``
issues ``repl_snapshot``: the primary prepares an online backup of its
durability directory (:mod:`repro.backup`) under ``repl-snapshot/``,
serves its ``MANIFEST`` plus checksummed chunks, and the replica
streams the archive (resumable at the failed offset after a
disconnect), restores it, adopts the restored state in place
(:meth:`AeonG.adopt_snapshot_state`), and rejoins the WAL stream at
the snapshot watermark.  Only a primary with no durability directory
still surfaces the old terminal condition.

Record envelope (the PR 3 checksum discipline, applied to the wire)::

    0x01 | u32 crc32(body) | body        body = serde({"ts", "ops"})

The stream's failpoint sites are ``repl.stream.write`` (evaluated on
the primary while building a fetch response; ``torn-write`` damages
the final envelope so the replica's checksum catches it) and
``repl.stream.read`` (evaluated by the runner before decoding;
``short-read`` truncates the batch mid-envelope).  Both are covered by
the crash matrix in ``tests/test_fault_matrix.py``.
"""

from __future__ import annotations

import base64
import os
import shutil
import struct
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.common.serde import decode_value, encode_value
from repro.errors import (
    CorruptionError,
    FaultInjected,
    ProtocolError,
    ReplicationDivergedError,
    ReplicationFencedError,
    ReplicationResyncRequired,
    ReproError,
    ServerError,
    StorageError,
)
from repro import faults
from repro.faults import (
    FAILPOINTS,
    MODE_CORRUPT,
    MODE_CRASH,
    MODE_DELAY,
    MODE_DISCONNECT,
    MODE_ERROR,
    MODE_SHORT_READ,
    MODE_TORN_WRITE,
    SimulatedCrash,
    corrupt_bytes,
    torn_prefix,
)
from repro.resilience import RetryPolicy

#: The replication stream's failpoint sites (armable like any storage
#: site; exercised by the fault matrix).
SITE_STREAM_READ = "repl.stream.read"
SITE_STREAM_WRITE = "repl.stream.write"
#: The snapshot-bootstrap stream's sites: ``repl.snapshot.write`` fires
#: on the primary per served chunk, ``repl.snapshot.read`` on the
#: replica per fetched chunk (``torn-write``/``corrupt``/``short-read``
#: damage a chunk so its checksum forces a re-fetch; ``disconnect``
#: tears the connection and the fetch resumes at the same offset).
SITE_SNAPSHOT_READ = "repl.snapshot.read"
SITE_SNAPSHOT_WRITE = "repl.snapshot.write"
FAILPOINTS.register(
    SITE_STREAM_READ, SITE_STREAM_WRITE,
    SITE_SNAPSHOT_READ, SITE_SNAPSHOT_WRITE,
)

#: Directory (under the primary's durability dir) holding the snapshot
#: archive served to resyncing replicas.
SNAPSHOT_DIRNAME = "repl-snapshot"
#: Raw bytes per snapshot chunk.  Base64 inflates 4/3x on the wire, so
#: this stays far inside the protocol's 4 MiB frame limit.
SNAPSHOT_CHUNK_BYTES = 1 << 20
#: Consecutive failures fetching one chunk before the whole resync
#: attempt is abandoned (it retries from scratch on the next loop).
SNAPSHOT_CHUNK_RETRIES = 8

#: Envelope version byte (mirrors the history store's checksum
#: envelope from the integrity layer).
ENVELOPE_VERSION = 0x01

_CRC = struct.Struct(">I")

#: Retry schedule for a runner's reconnect attempts between lease checks.
RUNNER_POLICY = RetryPolicy(max_attempts=3, base_delay=0.02, max_delay=0.2)


# -- record envelope --------------------------------------------------------


def encode_record(commit_ts: int, ops: list[tuple]) -> bytes:
    """One WAL record in its checksummed wire envelope."""
    body = encode_value({"ts": commit_ts, "ops": [list(op) for op in ops]})
    return (
        bytes([ENVELOPE_VERSION]) + _CRC.pack(zlib.crc32(body)) + body
    )


def decode_record(blob: bytes) -> tuple[int, list[tuple]]:
    """Verify and unwrap one envelope; raises
    :class:`~repro.errors.CorruptionError` on any damage — a torn or
    bit-flipped record must never be applied."""
    if len(blob) < 1 + _CRC.size:
        raise CorruptionError(
            f"replication envelope truncated ({len(blob)} bytes)"
        )
    if blob[0] != ENVELOPE_VERSION:
        raise CorruptionError(
            f"unknown replication envelope version {blob[0]:#x}"
        )
    (crc,) = _CRC.unpack_from(blob, 1)
    body = blob[1 + _CRC.size:]
    if zlib.crc32(body) != crc:
        raise CorruptionError("replication record failed its checksum")
    try:
        record = decode_value(body)
        return record["ts"], [tuple(op) for op in record["ops"]]
    except CorruptionError:
        raise
    except Exception as exc:
        raise CorruptionError(
            f"replication record has a valid checksum but an "
            f"undecodable payload: {exc}"
        ) from exc


def pack_records(records: list[tuple[int, list[tuple]]]) -> list[str]:
    """Envelope + base64 a batch for the JSON wire protocol."""
    return [
        base64.b64encode(encode_record(ts, ops)).decode("ascii")
        for ts, ops in records
    ]


def unpack_record(blob_b64: str) -> tuple[int, list[tuple]]:
    """Decode one wire-form record (base64 → envelope → payload)."""
    try:
        blob = base64.b64decode(blob_b64.encode("ascii"), validate=True)
    except Exception as exc:
        raise CorruptionError(
            f"replication record is not valid base64: {exc}"
        ) from exc
    return decode_record(blob)


# -- configuration ----------------------------------------------------------


@dataclass
class ReplicationConfig:
    """Tunables for one node's replication behaviour."""

    #: ``"primary"`` (standalone nodes are primaries with no replicas)
    #: or ``"replica"``.
    role: str = "primary"
    #: Stable identity this node registers under when it is a replica.
    replica_id: str = "replica-1"
    #: ``(host, port)`` of the primary (replicas only).
    primary_host: Optional[str] = None
    primary_port: Optional[int] = None
    #: Long-poll window the replica asks the primary to hold a fetch
    #: open for when no records are pending.
    poll_interval: float = 0.2
    #: Seconds without a successful fetch before the primary's lease is
    #: considered expired and the replica may promote itself.
    lease_timeout: float = 2.0
    #: Whether lease expiry triggers self-promotion (False = the
    #: replica keeps retrying until an operator sends ``promote``).
    auto_promote: bool = True
    #: Primary: acknowledge a commit only after a replica has applied
    #: it (zero acknowledged-write loss across failover).
    sync_commit: bool = False
    #: How long a synchronous commit waits for a replica ack before
    #: raising :class:`~repro.errors.ReplicationTimeout`.
    sync_timeout: float = 5.0
    #: Records per fetch response.
    fetch_batch: int = 512
    #: Recent records kept in memory on the primary so steady-state
    #: fetches never re-scan the WAL file.
    ring_size: int = 4096

    def __post_init__(self) -> None:
        if self.role not in ("primary", "replica"):
            raise ValueError(f"role must be primary|replica, got {self.role!r}")
        if self.role == "replica" and (
            self.primary_host is None or self.primary_port is None
        ):
            raise ValueError("replica role requires primary_host/primary_port")
        if self.lease_timeout <= 0 or self.poll_interval < 0:
            raise ValueError("lease_timeout must be > 0, poll_interval >= 0")
        if self.fetch_batch < 1 or self.ring_size < 1:
            raise ValueError("fetch_batch and ring_size must be >= 1")


@dataclass
class ReplicaInfo:
    """The primary's view of one registered replica."""

    replica_id: str
    watermark: int = 0
    epoch: int = 1
    last_seen: float = 0.0
    fetches: int = 0


# -- shared node state ------------------------------------------------------


class ReplicationState:
    """One node's replication role, epoch, fence, and peer bookkeeping.

    Attached to every engine as ``engine.replication`` (standalone
    engines are primaries with no registered replicas, so all of this
    is dormant until a replica attaches or the node is configured as a
    replica).  Thread-safe: the commit path, the serving layer's
    executor threads, and the replica runner all touch it.
    """

    def __init__(
        self,
        config: Optional[ReplicationConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else ReplicationConfig()
        self.clock = clock
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.role = self.config.role
        #: Cluster epoch; bumped by every promotion.  Replication
        #: messages from an older epoch are fenced.
        self.epoch = 1
        #: Fencing token: commits at or below this timestamp are sealed
        #: history (set to the applied watermark at promotion).
        self.fence_ts = 0
        #: Primary: registered replicas by id.
        self.replicas: dict[str, ReplicaInfo] = {}
        #: Recent committed records ``(commit_ts, ops)`` — the fast
        #: path for fetches; older ranges fall back to the WAL file.
        self._ring: deque[tuple[int, list[tuple]]] = deque(
            maxlen=self.config.ring_size
        )
        #: Replica: the primary's watermark as of the last fetch.
        self.primary_watermark = 0
        #: Engine back-reference (set by the engine) for WAL fallback
        #: scans and watermark reads.
        self.engine = None
        self.counters = {
            "records_shipped": 0,
            "batches_shipped": 0,
            "ring_batches": 0,
            "records_applied": 0,
            "batches_applied": 0,
            "apply_skipped": 0,
            "checksum_failures": 0,
            "stream_faults": 0,
            "fenced_rejections": 0,
            "divergence_detected": 0,
            "resyncs_required": 0,
            "promotions": 0,
            "sync_commit_waits": 0,
            "sync_commit_timeouts": 0,
            "lease_expiries": 0,
            # snapshot-bootstrap (resync) counters; the primary side
            # counts served/shipped, the replica side fetched/resumed.
            "resyncs_started": 0,
            "resyncs_completed": 0,
            "resync_failures": 0,
            "snapshots_served": 0,
            "snapshot_chunks_served": 0,
            "snapshot_bytes_shipped": 0,
            "snapshot_chunks_fetched": 0,
            "snapshot_chunks_resumed": 0,
            "snapshot_bytes_fetched": 0,
        }
        #: Serializes snapshot preparation on the primary (concurrent
        #: ``repl_snapshot`` manifest requests share one archive).
        self.snapshot_lock = threading.Lock()

    # -- role ----------------------------------------------------------

    @property
    def is_replica(self) -> bool:
        return self.role == "replica"

    def watermark(self) -> int:
        """This node's applied watermark: the newest commit timestamp
        visible to readers (``oracle.peek() - 1``)."""
        if self.engine is None:
            return 0
        return self.engine.manager.oracle.peek() - 1

    def promote(self) -> dict[str, Any]:
        """Replica → primary: bump the epoch and seal history at the
        fencing token (the applied watermark).  Idempotent-ish: calling
        it on a primary only reports the current state."""
        with self._cond:
            if self.role != "primary":
                self.role = "primary"
                self.epoch += 1
                self.fence_ts = self.watermark()
                self.counters["promotions"] += 1
                self._cond.notify_all()
            return {
                "role": self.role,
                "epoch": self.epoch,
                "fence_ts": self.fence_ts,
                "watermark": self.watermark(),
            }

    def adopt_epoch(self, epoch: int) -> None:
        """A fetch response revealed a newer cluster epoch (our primary
        was itself promoted); follow it."""
        with self._cond:
            if epoch > self.epoch:
                self.epoch = epoch

    # -- primary: commit log + replica bookkeeping ---------------------

    def note_commit(self, commit_ts: int, ops: list[tuple]) -> None:
        """Record one committed transaction for shipping (called by the
        engine's commit path, after the WAL append)."""
        self.note_commit_batch([(commit_ts, ops)])

    def note_commit_batch(
        self, records: list[tuple[int, list[tuple]]]
    ) -> None:
        """Record a whole durable group-commit batch for shipping.

        ``records`` must already be in commit-timestamp order (the
        group-commit writer's queue order) — the ring is the shipping
        stream's source of truth and fetchers assume monotonic
        timestamps.  One ``notify_all`` covers the whole batch, so
        semi-sync committers and long-poll fetchers wake once per
        *batch*, not once per record.
        """
        if not records:
            return
        with self._cond:
            self._ring.extend(records)
            self.counters["ring_batches"] = (
                self.counters.get("ring_batches", 0) + 1
            )
            self._cond.notify_all()

    def note_applied(self) -> None:
        """A replicated record was applied locally (replica side);
        wakes snapshot readers waiting on the watermark."""
        with self._cond:
            self._cond.notify_all()

    def register_replica(self, replica_id: str, watermark: int,
                         epoch: int) -> ReplicaInfo:
        with self._cond:
            info = self.replicas.get(replica_id)
            if info is None:
                info = ReplicaInfo(replica_id=replica_id)
                self.replicas[replica_id] = info
            info.watermark = max(info.watermark, watermark)
            info.epoch = epoch
            info.last_seen = self.clock()
            return info

    def ack(self, replica_id: str, watermark: int, epoch: int) -> None:
        """A fetch arrived: heartbeat + cumulative apply ack."""
        with self._cond:
            info = self.replicas.get(replica_id)
            if info is None:
                info = ReplicaInfo(replica_id=replica_id)
                self.replicas[replica_id] = info
            info.watermark = max(info.watermark, watermark)
            info.epoch = epoch
            info.last_seen = self.clock()
            info.fetches += 1
            self._cond.notify_all()

    def wal_retain_ts(self) -> Optional[int]:
        """The replication fence against checkpoint truncation.

        ``None`` when no replica is registered (checkpoints may
        truncate freely); otherwise the first commit timestamp that
        must survive truncation — one past the slowest registered
        replica's acknowledged watermark.
        """
        with self._lock:
            if not self.replicas:
                return None
            return min(i.watermark for i in self.replicas.values()) + 1

    def wait_replicated(self, commit_ts: int, timeout: float) -> bool:
        """Synchronous-commit wait: block until some replica's applied
        watermark reaches ``commit_ts`` (semi-sync, any-one-replica).
        Returns False on timeout."""
        deadline = self.clock() + timeout
        with self._cond:
            self.counters["sync_commit_waits"] += 1
            while True:
                if any(
                    i.watermark >= commit_ts for i in self.replicas.values()
                ):
                    return True
                remaining = deadline - self.clock()
                if remaining <= 0:
                    self.counters["sync_commit_timeouts"] += 1
                    return False
                self._cond.wait(min(remaining, 0.05))

    def records_from(
        self, from_ts: int, limit: int, wait: float = 0.0
    ) -> list[tuple[int, list[tuple]]]:
        """Committed records with ``commit_ts >= from_ts``, oldest
        first, at most ``limit``.

        Served from the in-memory ring when it covers the range,
        falling back to a WAL-file scan for older ranges (e.g. a
        replica resuming after a primary restart).  With ``wait`` > 0
        and nothing pending, blocks up to that long for a new commit —
        the long-poll half of the replica's heartbeat.  Raises
        :class:`~repro.errors.ReplicationResyncRequired` when the WAL
        has been truncated past ``from_ts``.
        """
        if from_ts <= self._truncation_fence():
            # Never serve records past a truncated gap: a fetch below
            # the fence would silently skip the dropped range.
            self.counters["resyncs_required"] += 1
            raise ReplicationResyncRequired(
                f"records from commit timestamp {from_ts} are no longer "
                f"available (truncation fence {self._truncation_fence()});"
                " bootstrap this replica from a copy of the primary's "
                "data directory"
            )
        deadline = self.clock() + wait
        while True:
            with self._cond:
                ring = list(self._ring)
            if ring and ring[0][0] <= from_ts:
                out = [(ts, ops) for ts, ops in ring if ts >= from_ts]
                if out:
                    return out[:limit]
            else:
                # The ring does not cover the requested range (replica
                # far behind, or primary freshly restarted with an
                # empty ring): fall back to a WAL-file scan.
                wal_records = (
                    self.engine.wal_records_from(from_ts)
                    if self.engine is not None
                    else None
                )
                if wal_records:
                    return wal_records[:limit]
                out = [(ts, ops) for ts, ops in ring if ts >= from_ts]
                if out:
                    return out[:limit]
            remaining = deadline - self.clock()
            if remaining <= 0:
                return []
            with self._cond:
                self._cond.wait(min(remaining, 0.05))

    def _truncation_fence(self) -> int:
        if self.engine is None:
            return 0
        return self.engine.wal_truncation_fence()

    def reset_after_bootstrap(self) -> None:
        """Drop state tied to the pre-bootstrap timeline (called after
        :meth:`AeonG.adopt_snapshot_state`): the in-memory ring may
        hold records from the discarded history, and serving them to a
        downstream peer would fork it again."""
        with self._cond:
            self._ring.clear()
            self._cond.notify_all()

    # -- metrics -------------------------------------------------------

    def resync_metrics(self, registry=None) -> dict[str, Any]:
        """The ``resync`` metrics section: snapshot-bootstrap counters
        plus the resync duration histogram from ``registry``."""
        with self._lock:
            out = {
                key: value
                for key, value in self.counters.items()
                if key.startswith(("resync", "snapshot"))
            }
        if registry is not None:
            out["duration_seconds"] = registry.histogram(
                "resync.seconds"
            ).summary()
        return out

    def metrics(self) -> dict[str, Any]:
        with self._lock:
            watermark = self.watermark()
            replicas = {
                rid: {
                    "watermark": info.watermark,
                    "epoch": info.epoch,
                    "lag": max(0, watermark - info.watermark),
                    "fetches": info.fetches,
                    "seconds_since_seen": (
                        self.clock() - info.last_seen
                        if info.last_seen
                        else None
                    ),
                }
                for rid, info in self.replicas.items()
            }
            lag = (
                max(0, self.primary_watermark - watermark)
                if self.role == "replica"
                else (
                    max(r["lag"] for r in replicas.values())
                    if replicas
                    else 0
                )
            )
            return {
                "role": self.role,
                "epoch": self.epoch,
                "fence_ts": self.fence_ts,
                "watermark": watermark,
                "lag": lag,
                "replicas": replicas,
                **self.counters,
            }


# -- the replica's pull loop ------------------------------------------------


class ReplicaRunner:
    """The replica-side replication thread.

    Long-polls the primary for WAL records, verifies and applies them,
    and watches the lease: when no fetch has succeeded for
    ``lease_timeout`` seconds, the primary is presumed dead and (with
    ``auto_promote``) the replica promotes itself.  The runner then
    exits; the serving layer consults ``engine.replication.role`` per
    request, so the promoted node starts accepting writes immediately.
    """

    def __init__(
        self,
        engine,
        config: ReplicationConfig,
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        if config.role != "replica":
            raise ValueError("ReplicaRunner requires a replica-role config")
        self.engine = engine
        self.config = config
        self.state: ReplicationState = engine.replication
        self.policy = policy or RUNNER_POLICY
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._client = None
        #: Why the loop ended: ``None`` (still running / clean stop),
        #: ``"promoted"``, ``"fenced"``, ``"diverged"``, ``"resync"``.
        #: The latter two are now reached only when the primary cannot
        #: serve bootstrap snapshots (no durability dir) — otherwise
        #: the runner self-heals via ``repl_snapshot`` and keeps going.
        self.stopped_reason: Optional[str] = None
        self.last_error: Optional[str] = None
        #: Clock reading of the last verified snapshot chunk — resync
        #: progress counts as proof of primary liveness for the lease.
        self._resync_progress = 0.0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="aeong-replica", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
        self._close_client()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _close_client(self) -> None:
        client = self._client
        self._client = None
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    # -- the loop ------------------------------------------------------

    def _connect(self):
        from repro.server.client import Client

        client = Client(
            self.config.primary_host,
            self.config.primary_port,
            policy=self.policy,
            connect_timeout=max(0.2, self.config.lease_timeout / 2),
            request_timeout=max(1.0, self.config.poll_interval * 4 + 2.0),
        )
        client.connect()
        client.request(
            {
                "op": "repl_register",
                "replica_id": self.config.replica_id,
                "watermark": self.state.watermark(),
                "epoch": self.state.epoch,
            }
        )
        return client

    def _run(self) -> None:
        last_ok = self.state.clock()
        attempt = 0
        while not self._stop.is_set():
            if self.state.role != "replica":
                self.stopped_reason = self.stopped_reason or "promoted"
                return
            try:
                if self._client is None:
                    self._client = self._connect()
                response = self._client.request(
                    {
                        "op": "repl_fetch",
                        "replica_id": self.config.replica_id,
                        "from_ts": self.state.watermark() + 1,
                        "ack": self.state.watermark(),
                        "epoch": self.state.epoch,
                        "wait": self.config.poll_interval,
                        "limit": self.config.fetch_batch,
                    }
                )
            except ServerError as exc:
                if exc.code == "REPL_FENCED":
                    self.state.counters["fenced_rejections"] += 1
                    self.stopped_reason = "fenced"
                    return
                if exc.code in ("REPL_DIVERGED", "REPL_RESYNC"):
                    if exc.code == "REPL_DIVERGED":
                        self.state.counters["divergence_detected"] += 1
                    else:
                        self.state.counters["resyncs_required"] += 1
                    outcome = self._try_resync()
                    if outcome == "healed":
                        attempt = 0
                        last_ok = self.state.clock()
                        continue
                    if outcome == "unsupported":
                        self.stopped_reason = (
                            "diverged" if exc.code == "REPL_DIVERGED"
                            else "resync"
                        )
                        return
                    # Transient resync failure (primary down mid-stream,
                    # injected chunk faults): chunk progress proves the
                    # primary was alive, so credit it against the lease.
                    last_ok = max(last_ok, self._resync_progress)
                    last_ok, attempt = self._transient(exc, last_ok, attempt)
                    continue
                last_ok, attempt = self._transient(exc, last_ok, attempt)
                continue
            except (ConnectionError, OSError, ProtocolError) as exc:
                last_ok, attempt = self._transient(exc, last_ok, attempt)
                continue
            attempt = 0
            last_ok = self.state.clock()
            try:
                self._ingest(response)
            except CorruptionError as exc:
                # A torn or damaged batch: nothing was applied past the
                # damage; the next fetch re-requests from the watermark.
                self.state.counters["checksum_failures"] += 1
                self.last_error = repr(exc)
            except FaultInjected as exc:
                self.state.counters["stream_faults"] += 1
                self.last_error = repr(exc)
            except ReplicationDivergedError as exc:
                outcome = self._try_resync()
                if outcome == "healed":
                    attempt = 0
                    last_ok = self.state.clock()
                    continue
                if outcome == "unsupported":
                    self.stopped_reason = "diverged"
                    return
                last_ok = max(last_ok, self._resync_progress)
                last_ok, attempt = self._transient(exc, last_ok, attempt)
        self.stopped_reason = self.stopped_reason or "stopped"

    def _transient(self, exc: BaseException, last_ok: float,
                   attempt: int) -> tuple[float, int]:
        """A fetch failed for a retryable reason: reconnect later, and
        check the lease on the way."""
        self.last_error = repr(exc)
        self._close_client()
        now = self.state.clock()
        if now - last_ok >= self.config.lease_timeout:
            self.state.counters["lease_expiries"] += 1
            if self.config.auto_promote:
                self.state.promote()
                self.stopped_reason = "promoted"
                # Runner exits via the role check at the top of _run.
                return last_ok, attempt
            last_ok = now  # re-arm the lease so the counter is per-expiry
        attempt += 1
        delay = self.policy.delay(min(attempt, self.policy.max_attempts))
        self._stop.wait(delay)
        return last_ok, attempt

    # -- snapshot bootstrap (replica side) -----------------------------

    def _try_resync(self) -> str:
        """Bootstrap this replica from a primary snapshot.

        Returns ``"healed"`` (state adopted, rejoin the stream at the
        snapshot watermark), ``"unsupported"`` (the primary cannot
        serve snapshots — the caller surfaces the pre-snapshot terminal
        ``resync``/``diverged`` condition), or ``"failed"`` (transient:
        the caller backs off and the loop retries, so a primary killed
        mid-resync is survived once it comes back).
        """
        state = self.state
        state.counters["resyncs_started"] += 1
        started = state.clock()
        try:
            if not self._resync():
                return "unsupported"
        except Exception as exc:
            state.counters["resync_failures"] += 1
            self.last_error = repr(exc)
            self._close_client()
            return "failed"
        state.counters["resyncs_completed"] += 1
        self.engine.observability.registry.histogram(
            "resync.seconds"
        ).observe(state.clock() - started)
        return "healed"

    def _resync(self) -> bool:
        """Fetch → restore → adopt.  ``False`` means the primary has no
        snapshot to offer (terminal); exceptions are transient."""
        import tempfile

        from repro.backup import restore_backup

        engine = self.engine
        durable = engine._durability_dir
        scratch: Optional[Path] = None
        if durable is not None:
            archive = Path(durable) / "resync.archive.tmp"
            restore_dir = Path(durable) / "resync.restore.tmp"
        else:
            scratch = Path(tempfile.mkdtemp(prefix="aeong-resync-"))
            archive = scratch / "archive"
            restore_dir = scratch / "restore"
        try:
            try:
                self._fetch_snapshot(archive)
            except ServerError as exc:
                if exc.code in ("REPL_RESYNC", "REPL_DIVERGED"):
                    # The primary itself says it cannot serve a
                    # snapshot (no durability dir): the old dead end.
                    return False
                raise
            for stale in (restore_dir,
                          restore_dir.with_name(restore_dir.name + ".tmp")):
                if stale.exists():
                    shutil.rmtree(stale)
            restore_backup(
                archive, restore_dir, storage_io=engine._storage_io
            )
            self._bootstrap(restore_dir)
            return True
        finally:
            shutil.rmtree(archive, ignore_errors=True)
            shutil.rmtree(restore_dir, ignore_errors=True)
            if scratch is not None:
                shutil.rmtree(scratch, ignore_errors=True)

    def _fetch_snapshot(self, archive: Path) -> dict[str, Any]:
        """Stream the primary's snapshot archive into ``archive``,
        chunk by chunk, verifying every chunk's crc32 and resuming at
        the failed offset after a disconnect.  The local ``MANIFEST``
        is written last — its presence marks the copy complete, the
        same commit-point discipline as :func:`repro.backup.create_backup`."""
        from repro.backup import write_manifest

        if self._client is None:
            self._client = self._connect()
        response = self._client.request(
            {
                "op": "repl_snapshot",
                "replica_id": self.config.replica_id,
                "epoch": self.state.epoch,
            }
        )
        epoch = response.get("epoch", self.state.epoch)
        if epoch > self.state.epoch:
            self.state.adopt_epoch(epoch)
        manifest = response["manifest"]
        snapshot_id = response["snapshot_id"]
        chunk_bytes = int(response.get("chunk_bytes", SNAPSHOT_CHUNK_BYTES))
        if archive.exists():
            shutil.rmtree(archive)
        archive.mkdir(parents=True)
        root = archive.resolve()
        for entry in manifest["files"]:
            target = (archive / entry["name"]).resolve()
            if not str(target).startswith(str(root) + os.sep):
                raise ProtocolError(
                    f"snapshot file name {entry['name']!r} escapes the "
                    "archive directory"
                )
            self._fetch_file(archive, snapshot_id, entry, chunk_bytes)
        write_manifest(archive, manifest)
        return manifest

    def _fetch_file(
        self,
        archive: Path,
        snapshot_id: str,
        entry: dict[str, Any],
        chunk_bytes: int,
    ) -> None:
        """Fetch one archived file.  Each chunk survives up to
        :data:`SNAPSHOT_CHUNK_RETRIES` consecutive failures (connection
        drops resume at the same offset; checksum mismatches re-request
        the chunk) before the whole resync attempt is abandoned."""
        name = entry["name"]
        size = int(entry["size"])
        path = archive / name
        path.parent.mkdir(parents=True, exist_ok=True)
        buffer = bytearray()
        failures = 0

        def _retryable(exc: BaseException) -> None:
            nonlocal failures
            failures += 1
            self.last_error = repr(exc)
            if failures > SNAPSHOT_CHUNK_RETRIES:
                raise exc
            self._stop.wait(
                self.policy.delay(min(failures, self.policy.max_attempts))
            )

        while True:
            if self._stop.is_set():
                raise StorageError("resync interrupted by runner stop")
            try:
                if self._client is None:
                    self._client = self._connect()
                response = self._client.request(
                    {
                        "op": "repl_snapshot",
                        "snapshot_id": snapshot_id,
                        "file": name,
                        "offset": len(buffer),
                        "length": chunk_bytes,
                    }
                )
            except ServerError as exc:
                if exc.code == "IO_ERROR":
                    # Injected repl.snapshot.write error: chunk retry.
                    self.state.counters["stream_faults"] += 1
                    _retryable(exc)
                    continue
                raise
            except (ConnectionError, OSError, ProtocolError) as exc:
                self._close_client()
                self.state.counters["snapshot_chunks_resumed"] += 1
                _retryable(exc)
                continue
            data = base64.b64decode(
                (response.get("data") or "").encode("ascii")
            )
            mode = FAILPOINTS.hit(SITE_SNAPSHOT_READ)
            if mode == MODE_CRASH:
                raise SimulatedCrash(SITE_SNAPSHOT_READ)
            if mode == MODE_ERROR:
                self.state.counters["stream_faults"] += 1
                _retryable(
                    FaultInjected(
                        f"injected I/O error at {SITE_SNAPSHOT_READ}"
                    )
                )
                continue
            if mode == MODE_DELAY:
                time.sleep(faults.FAULT_DELAY_SECONDS)
            elif mode == MODE_DISCONNECT:
                self._close_client()
                self.state.counters["snapshot_chunks_resumed"] += 1
                _retryable(
                    ConnectionResetError(
                        f"injected disconnect at {SITE_SNAPSHOT_READ}"
                    )
                )
                continue
            elif mode in (MODE_SHORT_READ, MODE_TORN_WRITE):
                data = torn_prefix(data)
            elif mode == MODE_CORRUPT:
                data = corrupt_bytes(data)
            if size == 0:
                break
            if not data or zlib.crc32(data) != response.get("crc32"):
                self.state.counters["checksum_failures"] += 1
                _retryable(
                    CorruptionError(
                        f"snapshot chunk for {name!r} at offset "
                        f"{len(buffer)} failed its checksum"
                    )
                )
                continue
            buffer += data
            failures = 0
            self.state.counters["snapshot_chunks_fetched"] += 1
            self.state.counters["snapshot_bytes_fetched"] += len(data)
            self._resync_progress = self.state.clock()
            if len(buffer) >= size:
                break
        if len(buffer) != size or zlib.crc32(bytes(buffer)) != entry["crc32"]:
            raise CorruptionError(
                f"fetched snapshot file {name!r} does not match its "
                "manifest checksum"
            )
        path.write_bytes(bytes(buffer))

    def _bootstrap(self, restore_dir: Path) -> None:
        """Replace this replica's state with the restored snapshot.

        Durable replicas swap their durability directory's WAL and
        checkpoint for the restored ones *before* reopening: a crash
        mid-swap leaves a directory that recovers to a prefix of the
        snapshot (or empty) and simply resyncs again on the next run —
        never a fork.  In-memory replicas adopt the restored engine's
        state and drop the scratch directory.
        """
        from repro.core.durability import (
            CHECKPOINT_DIRNAME,
            CHECKPOINT_OLD_DIRNAME,
            CHECKPOINT_TMP_DIRNAME,
            WAL_FILENAME,
        )

        engine = self.engine
        durable = engine._durability_dir
        kwargs = dict(
            temporal=engine.temporal,
            model=engine.model,
            anchor_interval=engine.anchor_policy.interval,
            gc_interval_transactions=engine._gc_interval,
            enforce_vt_constraints=engine.enforce_vt_constraints,
            durability_mode=engine.durability_mode,
        )
        from repro.core.engine import AeonG

        if durable is not None:
            durable = Path(durable)
            engine.detach_wal()
            for stale_name in (
                WAL_FILENAME,
                CHECKPOINT_DIRNAME,
                CHECKPOINT_TMP_DIRNAME,
                CHECKPOINT_OLD_DIRNAME,
                SNAPSHOT_DIRNAME,
            ):
                stale = durable / stale_name
                if stale.is_dir():
                    shutil.rmtree(stale)
                elif stale.exists():
                    stale.unlink()
            for item in list(restore_dir.iterdir()):
                os.replace(item, durable / item.name)
            donor = AeonG.open(durable, **kwargs)
            engine.adopt_snapshot_state(donor)
        else:
            donor = AeonG.open(restore_dir, **kwargs)
            engine.adopt_snapshot_state(donor)
            # The scratch directory is deleted by the caller: stop
            # journaling into it and stay an in-memory engine.
            engine.detach_wal()
            engine._durability_dir = None

    def _ingest(self, response: dict[str, Any]) -> None:
        """Verify and apply one fetch response."""
        mode = FAILPOINTS.check(SITE_STREAM_READ)
        if mode == MODE_DELAY:
            time.sleep(faults.FAULT_DELAY_SECONDS)
        elif mode == MODE_DISCONNECT:
            self._close_client()
            raise FaultInjected(
                f"injected disconnect at {SITE_STREAM_READ}"
            )
        records = response.get("records") or []
        if mode in (MODE_SHORT_READ, MODE_TORN_WRITE) and records:
            # The "connection died mid-batch" shape: the tail envelope
            # arrives truncated and must fail its checksum.
            damaged = base64.b64encode(
                torn_prefix(base64.b64decode(records[-1]))
            ).decode("ascii")
            records = records[:-1] + [damaged]
        epoch = response.get("epoch", self.state.epoch)
        if epoch > self.state.epoch:
            self.state.adopt_epoch(epoch)
        watermark = self.state.watermark()
        primary_watermark = int(response.get("watermark", 0))
        if primary_watermark < watermark:
            self.state.counters["divergence_detected"] += 1
            raise ReplicationDivergedError(
                f"replica watermark {watermark} is ahead of the "
                f"primary's {primary_watermark}; resync required"
            )
        self.state.primary_watermark = primary_watermark
        applied = 0
        for blob in records:
            commit_ts, ops = unpack_record(blob)  # CorruptionError stops here
            if self.engine.apply_replicated(commit_ts, ops):
                applied += 1
            else:
                self.state.counters["apply_skipped"] += 1
        if records:
            self.state.counters["batches_applied"] += 1
            self.state.counters["records_applied"] += applied


# -- the primary's fetch handler (shared by the serving layer) --------------


def build_fetch_response(
    engine,
    replica_id: str,
    from_ts: int,
    ack: int,
    epoch: int,
    wait: float,
    limit: int,
) -> dict[str, Any]:
    """Serve one ``repl_fetch``: fence, divergence-check, ack, collect.

    Runs on the serving layer's executor (it may block in the
    long-poll).  The ``repl.stream.write`` failpoint is evaluated here:
    ``error`` raises :class:`~repro.errors.FaultInjected`, ``delay``
    stalls the ship, ``disconnect`` tears the connection, and
    ``torn-write`` truncates the final envelope so the replica's
    checksum verification catches the damage and re-fetches.
    """
    state = engine.replication
    mode = FAILPOINTS.check(SITE_STREAM_WRITE)
    if mode == MODE_DELAY:
        time.sleep(faults.FAULT_DELAY_SECONDS)
    elif mode == MODE_DISCONNECT:
        state.counters["stream_faults"] += 1
        raise ConnectionResetError(
            f"injected disconnect at {SITE_STREAM_WRITE}"
        )
    if epoch > state.epoch:
        # The requester has seen a newer epoch than ours: we are the
        # stale node (a zombie primary being fetched from).  Refuse.
        state.counters["fenced_rejections"] += 1
        raise ReplicationFencedError(
            f"node is at epoch {state.epoch} but replica {replica_id!r} "
            f"reports epoch {epoch}; this primary has been superseded"
        )
    watermark = state.watermark()
    if ack > watermark:
        state.counters["divergence_detected"] += 1
        raise ReplicationDivergedError(
            f"replica {replica_id!r} acknowledges watermark {ack} but the "
            f"primary's is {watermark}; the replica holds unshipped "
            "history and must be resynced"
        )
    state.ack(replica_id, ack, epoch)
    records = state.records_from(from_ts, limit, wait=wait)
    envelopes = pack_records(records)
    if mode == MODE_TORN_WRITE and envelopes:
        state.counters["stream_faults"] += 1
        envelopes[-1] = base64.b64encode(
            torn_prefix(base64.b64decode(envelopes[-1]))
        ).decode("ascii")
    state.counters["batches_shipped"] += 1
    state.counters["records_shipped"] += len(records)
    return {
        "records": envelopes,
        "watermark": state.watermark(),
        "epoch": state.epoch,
        "fence_ts": state.fence_ts,
    }


# -- snapshot bootstrap (primary side) --------------------------------------


def _ensure_snapshot(engine) -> tuple[Any, dict[str, Any]]:
    """Prepare (or reuse) the snapshot archive served to resyncing
    replicas, under ``durability_dir/repl-snapshot``.

    Reused while its watermark still meets the WAL truncation fence —
    a replica bootstrapped from it can rejoin the stream at
    ``watermark + 1``.  A later checkpoint that truncated past it
    forces a rebuild.  Raises
    :class:`~repro.errors.ReplicationResyncRequired` on a primary with
    no durability directory: such a node has nothing to snapshot, and
    the replica's runner surfaces the old terminal condition.
    """
    from repro.backup import create_backup, read_manifest

    state = engine.replication
    directory = engine._durability_dir
    if directory is None or engine._wal is None:
        raise ReplicationResyncRequired(
            "this primary has no durability directory and cannot serve "
            "bootstrap snapshots; reseed the replica from a copy of "
            "the primary's data"
        )
    snapshot = directory / SNAPSHOT_DIRNAME
    with state.snapshot_lock:
        manifest: Optional[dict[str, Any]] = None
        try:
            manifest = read_manifest(snapshot)
        except ReproError:
            manifest = None
        fence = engine.wal_truncation_fence()
        if manifest is None or manifest["watermark"] < fence:
            if snapshot.exists():
                shutil.rmtree(snapshot)
            create_backup(
                directory, snapshot, storage_io=engine._storage_io
            )
            manifest = read_manifest(snapshot)
        return snapshot, manifest


def serve_snapshot_request(engine, request: dict) -> dict[str, Any]:
    """Serve one ``repl_snapshot``: a manifest request (no ``file``
    key) prepares/reuses the archive and describes it; a chunk request
    returns up to :data:`SNAPSHOT_CHUNK_BYTES` of one archived file
    with a per-chunk crc32, so the replica verifies every chunk and
    resumes at the failed offset after a disconnect.

    The ``repl.snapshot.write`` failpoint fires here per request:
    ``error`` raises :class:`~repro.errors.FaultInjected` (the replica
    retries the chunk), ``disconnect`` tears the connection (the
    replica reconnects and resumes), and ``torn-write``/``corrupt``
    damage the chunk *after* its checksum is computed, so the
    replica's verification catches it.
    """
    state = engine.replication
    mode = FAILPOINTS.check(SITE_SNAPSHOT_WRITE)
    if mode == MODE_DELAY:
        time.sleep(faults.FAULT_DELAY_SECONDS)
    elif mode == MODE_DISCONNECT:
        state.counters["stream_faults"] += 1
        raise ConnectionResetError(
            f"injected disconnect at {SITE_SNAPSHOT_WRITE}"
        )
    name = request.get("file")
    if name is None:
        _snapshot, manifest = _ensure_snapshot(engine)
        state.counters["snapshots_served"] += 1
        return {
            "snapshot_id": f"snap-{manifest['watermark']}",
            "manifest": manifest,
            "watermark": state.watermark(),
            "epoch": state.epoch,
            "chunk_bytes": SNAPSHOT_CHUNK_BYTES,
        }
    from repro.backup import read_manifest

    if engine._durability_dir is None:
        raise ReplicationResyncRequired(
            "this primary has no durability directory and cannot serve "
            "bootstrap snapshots"
        )
    snapshot = engine._durability_dir / SNAPSHOT_DIRNAME
    try:
        manifest = read_manifest(snapshot)
    except ReproError as exc:
        raise StorageError(
            f"snapshot archive unavailable: {exc}; restart the bootstrap"
        ) from exc
    snapshot_id = request.get("snapshot_id")
    if snapshot_id != f"snap-{manifest['watermark']}":
        # A newer snapshot replaced the one this replica was streaming:
        # a non-retryable storage error makes the replica abandon the
        # attempt and restart with a fresh manifest.
        raise StorageError(
            f"snapshot {snapshot_id!r} is no longer available (current "
            f"is snap-{manifest['watermark']}); restart the bootstrap"
        )
    if not isinstance(name, str) or name not in {
        entry["name"] for entry in manifest["files"]
    }:
        # Also the path-traversal guard: only manifest-listed names
        # are ever opened.
        raise ProtocolError(f"unknown snapshot file {name!r}")
    offset = int(request.get("offset", 0))
    length = int(request.get("length", SNAPSHOT_CHUNK_BYTES))
    if offset < 0 or length < 1:
        raise ProtocolError("snapshot chunk offset/length out of range")
    length = min(length, SNAPSHOT_CHUNK_BYTES)
    data = (snapshot / name).read_bytes()
    chunk = data[offset:offset + length]
    crc = zlib.crc32(chunk)
    eof = offset + len(chunk) >= len(data)
    if chunk and mode == MODE_TORN_WRITE:
        state.counters["stream_faults"] += 1
        chunk = torn_prefix(chunk)
    elif chunk and mode == MODE_CORRUPT:
        chunk = corrupt_bytes(chunk)
    state.counters["snapshot_chunks_served"] += 1
    state.counters["snapshot_bytes_shipped"] += len(chunk)
    return {
        "file": name,
        "offset": offset,
        "data": base64.b64encode(chunk).decode("ascii"),
        "crc32": crc,
        "size": len(data),
        "eof": eof,
    }


def apply_pushed_records(
    engine, epoch: int, records: list[str]
) -> dict[str, Any]:
    """Serve one ``repl_apply`` (push-style ingestion).

    The fencing chokepoint: records pushed under a stale epoch — a
    zombie primary's late commits — are rejected with
    :class:`~repro.errors.ReplicationFencedError`, and records at or
    below the fencing token are sealed history and refused even under
    the current epoch.
    """
    state = engine.replication
    if epoch < state.epoch:
        state.counters["fenced_rejections"] += 1
        raise ReplicationFencedError(
            f"records from epoch {epoch} rejected: cluster is at epoch "
            f"{state.epoch} (fencing token {state.fence_ts})"
        )
    if state.role == "primary" and state.epoch == epoch:
        state.counters["fenced_rejections"] += 1
        raise ReplicationFencedError(
            f"this node is the primary at epoch {state.epoch}; it does "
            "not accept pushed records"
        )
    applied = 0
    skipped = 0
    for blob in records:
        commit_ts, ops = unpack_record(blob)
        if commit_ts <= state.fence_ts:
            state.counters["fenced_rejections"] += 1
            raise ReplicationFencedError(
                f"commit timestamp {commit_ts} is at or below the fencing "
                f"token {state.fence_ts}; sealed history is immutable"
            )
        if engine.apply_replicated(commit_ts, ops):
            applied += 1
        else:
            skipped += 1
    state.counters["records_applied"] += applied
    state.counters["apply_skipped"] += skipped
    return {
        "applied": applied,
        "skipped": skipped,
        "watermark": state.watermark(),
        "epoch": state.epoch,
    }


__all__ = [
    "SITE_STREAM_READ",
    "SITE_STREAM_WRITE",
    "SITE_SNAPSHOT_READ",
    "SITE_SNAPSHOT_WRITE",
    "SNAPSHOT_DIRNAME",
    "SNAPSHOT_CHUNK_BYTES",
    "ENVELOPE_VERSION",
    "ReplicationConfig",
    "ReplicationState",
    "ReplicaInfo",
    "ReplicaRunner",
    "encode_record",
    "decode_record",
    "pack_records",
    "unpack_record",
    "build_fetch_response",
    "serve_snapshot_request",
    "apply_pushed_records",
]
