"""Deterministic fault injection for the storage stack.

Documented in ``docs/API.md`` ("Fault injection") — the failpoint
catalog, failure modes, and the crash-matrix workflow live there.

Crash safety cannot be asserted, only demonstrated: every I/O boundary
in the storage stack (WAL appends, fsyncs, truncations, checkpoint file
writes, renames) is a *failpoint site* registered here, and tests arm a
site with a failure mode to simulate a fault at exactly that point.
The crash-matrix harness (``tests/test_fault_matrix.py``) iterates every
registered site, crashes there, reopens the engine, and asserts the
committed prefix survived — RocksDB's FaultInjectionTestFS and SQLite's
test VFS play the same role in those systems.

Failure modes
-------------

``error``
    The operation fails cleanly with :class:`~repro.errors.FaultInjected`
    (a ``StorageError``): simulates ``EIO``/``ENOSPC``.  Callers may
    handle or propagate it; engine state must stay consistent.
``crash``
    :class:`SimulatedCrash` is raised *before* the operation takes any
    durable effect.  ``SimulatedCrash`` derives from ``BaseException``
    so no ordinary ``except Exception`` handler can accidentally
    swallow the simulated death of the process.
``torn-write``
    Half of the payload reaches the file, then :class:`SimulatedCrash`
    is raised — a write torn mid-sector.
``partial-fsync``
    Bytes written since the last successful fsync are dropped (the
    "lost OS buffer"), then :class:`SimulatedCrash` is raised.  Only
    meaningful at sync sites.
``corrupt``
    Silent bit rot: the payload is deterministically damaged
    (:func:`corrupt_bytes` flips one bit, or substitutes a byte for
    empty payloads) and the operation *succeeds* — no exception, no
    crash.  On write sites the damaged bytes land on disk; on read
    sites (``kv.sstable.decode``, ``history.fetch``) the data read is
    damaged before decoding.  This is the failure checksums exist to
    catch: the caller learns nothing until an integrity check fires.

Socket-level modes (the serving layer's network chaos; interpreted by
the framing helpers in :mod:`repro.server.protocol` at the
``server.conn.read`` / ``server.conn.write`` sites):

``delay``
    The I/O completes, but only after :data:`FAULT_DELAY_SECONDS` of
    injected latency — a congested or GC-pausing peer.  Also honoured
    by :meth:`StorageIO.append` / :meth:`StorageIO.sync`, where it
    models a slow device (used to prove durability I/O stays outside
    the engine's commit critical section).
``disconnect``
    The connection is torn down abruptly before the I/O happens
    (``ConnectionResetError``) — a peer crash or middlebox reset.
``short-read``
    On a read site: the frame header arrives, half the body arrives,
    then the connection dies — the receiver sees a truncated frame.
``torn-write``
    On a socket write site: half the encoded frame reaches the wire,
    then the connection dies — the peer sees torn bytes.  (The same
    mode name keeps its half-payload meaning at storage sites.)

Activation
----------

Programmatic::

    from repro.faults import FAILPOINTS
    with FAILPOINTS.active("engine.wal.append", "crash", nth=3):
        ...  # the 3rd append dies

or via the environment (picked up at import time)::

    REPRO_FAILPOINTS="engine.wal.append=crash:3;kv.wal.sync=error"

:class:`StorageIO` is the injectable file abstraction the disk-touching
modules route through; it owns the fsync-vs-flush durability discipline
(``durability_mode``) and implements write-temp → fsync → atomic-rename
for whole files.
"""

from __future__ import annotations

import io as io_module
import os
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Optional

from repro.errors import FaultInjected

MODE_ERROR = "error"
MODE_CRASH = "crash"
MODE_TORN_WRITE = "torn-write"
MODE_PARTIAL_FSYNC = "partial-fsync"
MODE_CORRUPT = "corrupt"
MODE_DELAY = "delay"
MODE_DISCONNECT = "disconnect"
MODE_SHORT_READ = "short-read"

MODES = (
    MODE_ERROR,
    MODE_CRASH,
    MODE_TORN_WRITE,
    MODE_PARTIAL_FSYNC,
    MODE_CORRUPT,
    MODE_DELAY,
    MODE_DISCONNECT,
    MODE_SHORT_READ,
)

#: Injected latency applied by the ``delay`` mode (socket sites).
#: Module-level so chaos tests can tune it.
FAULT_DELAY_SECONDS = 0.05

_ENV_VAR = "REPRO_FAILPOINTS"


class SimulatedCrash(BaseException):
    """The process "died" at a failpoint.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so that
    recovery-path ``except Exception`` blocks cannot swallow it — a
    real crash is not handleable either.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"simulated crash at failpoint {site!r}")
        self.site = site


@dataclass
class _Armed:
    """One armed failpoint: fires on hits ``nth .. nth+times-1``."""

    mode: str
    nth: int = 1
    times: Optional[int] = 1  # None = fire forever once reached
    hits: int = 0
    fired: int = 0

    def evaluate(self) -> Optional[str]:
        self.hits += 1
        if self.hits < self.nth:
            return None
        if self.times is not None and self.fired >= self.times:
            return None
        self.fired += 1
        return self.mode


@dataclass
class SiteStats:
    """Observability for one registered site."""

    hits: int = 0
    fired: int = 0


class FailpointRegistry:
    """Process-wide named failpoint sites.

    Modules *register* their sites at import time (so the crash matrix
    can enumerate every I/O boundary even when nothing is armed), and
    tests *activate* a site with a failure mode.  Thread-safe: the GC
    thread and query threads hit sites concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sites: dict[str, SiteStats] = {}
        self._armed: dict[str, _Armed] = {}

    # -- site registration ---------------------------------------------

    def register(self, *names: str) -> None:
        """Declare failpoint sites (idempotent)."""
        with self._lock:
            for name in names:
                self._sites.setdefault(name, SiteStats())

    def sites(self) -> tuple[str, ...]:
        """Every registered site name, sorted."""
        with self._lock:
            return tuple(sorted(self._sites))

    def stats(self, site: str) -> SiteStats:
        with self._lock:
            return self._sites.get(site, SiteStats())

    # -- arming --------------------------------------------------------

    def activate(
        self,
        site: str,
        mode: str,
        nth: int = 1,
        times: Optional[int] = 1,
    ) -> None:
        """Arm ``site``: fire ``mode`` on the ``nth`` hit (and the next
        ``times - 1`` hits after that; ``times=None`` fires forever)."""
        if mode not in MODES:
            raise ValueError(f"unknown failpoint mode {mode!r}")
        if nth < 1:
            raise ValueError("nth must be >= 1")
        with self._lock:
            self._sites.setdefault(site, SiteStats())
            self._armed[site] = _Armed(mode=mode, nth=nth, times=times)

    def deactivate(self, site: str) -> None:
        with self._lock:
            self._armed.pop(site, None)

    def clear(self) -> None:
        """Disarm every site (registrations are kept)."""
        with self._lock:
            self._armed.clear()

    def armed(self) -> dict[str, str]:
        """``{site: mode}`` for every armed site."""
        with self._lock:
            return {site: arm.mode for site, arm in self._armed.items()}

    @contextmanager
    def active(
        self,
        site: str,
        mode: str,
        nth: int = 1,
        times: Optional[int] = 1,
    ):
        """Scoped activation: arm on entry, disarm on exit."""
        self.activate(site, mode, nth=nth, times=times)
        try:
            yield self
        finally:
            self.deactivate(site)

    # -- the hot path --------------------------------------------------

    def hit(self, site: str) -> Optional[str]:
        """Evaluate one pass through ``site``.

        Returns the armed mode when the failpoint fires, else ``None``.
        Callers with no mode-specific partial behaviour should use
        :meth:`check` instead, which raises for them.
        """
        with self._lock:
            stats = self._sites.setdefault(site, SiteStats())
            stats.hits += 1
            arm = self._armed.get(site)
            if arm is None:
                return None
            mode = arm.evaluate()
            if mode is not None:
                stats.fired += 1
            return mode

    def check(self, site: str) -> Optional[str]:
        """Hit ``site`` and raise for the simple modes.

        ``error`` raises :class:`~repro.errors.FaultInjected`; ``crash``
        raises :class:`SimulatedCrash`.  ``torn-write``,
        ``partial-fsync`` and ``corrupt`` are returned for the caller
        to apply their partial or silent effect.
        """
        mode = self.hit(site)
        if mode == MODE_ERROR:
            raise FaultInjected(f"injected I/O error at failpoint {site!r}")
        if mode == MODE_CRASH:
            raise SimulatedCrash(site)
        return mode

    # -- environment activation ----------------------------------------

    def load_env(self, env=None) -> int:
        """Arm failpoints from ``REPRO_FAILPOINTS``.

        Format: ``site=mode[:nth[:times]]`` entries separated by ``;``
        or ``,`` — e.g. ``engine.wal.append=crash:3``.  Returns the
        number of failpoints armed; malformed entries raise
        ``ValueError`` (silently ignoring a typo'd fault spec would
        defeat the point of deterministic injection).
        """
        spec = (env if env is not None else os.environ).get(_ENV_VAR, "")
        count = 0
        for entry in spec.replace(",", ";").split(";"):
            entry = entry.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise ValueError(f"malformed {_ENV_VAR} entry {entry!r}")
            site, _, rest = entry.partition("=")
            parts = rest.split(":")
            mode = parts[0]
            nth = int(parts[1]) if len(parts) > 1 else 1
            times = int(parts[2]) if len(parts) > 2 else 1
            self.activate(site.strip(), mode, nth=nth, times=times)
            count += 1
        return count


#: The process-wide registry every storage module registers with.
FAILPOINTS = FailpointRegistry()
FAILPOINTS.load_env()


def torn_prefix(data: bytes) -> bytes:
    """The half-written payload a ``torn-write`` leaves behind."""
    return data[: len(data) // 2]


def corrupt_bytes(data: bytes, seed: int = 0) -> bytes:
    """Deterministically damage ``data`` (the ``corrupt`` mode's rot).

    Flips one bit at a position derived from the payload's own CRC (so
    the same input is always damaged the same way — reruns of a failing
    test reproduce it exactly), choosing a bit that is guaranteed to
    change the byte.  Empty input becomes a single junk byte, modelling
    a truncated-then-scribbled sector.  ``seed`` varies the position
    for tests that need several distinct corruptions of one payload.
    """
    if not data:
        return b"\xff"
    fingerprint = zlib.crc32(data) ^ (seed * 0x9E3779B1 & 0xFFFFFFFF)
    position = fingerprint % len(data)
    bit = (fingerprint >> 8) % 8
    damaged = bytearray(data)
    damaged[position] ^= 1 << bit
    return bytes(damaged)


class StorageIO:
    """The file abstraction all disk-touching code routes through.

    Centralises two things: the configured durability discipline
    (``durability_mode="fsync"`` syncs every write to the device;
    ``"flush"`` stops at the OS buffer, the fast default matching the
    seed behaviour) and failpoint evaluation, so every physical I/O is
    injectable.
    """

    def __init__(
        self,
        durability_mode: str = "flush",
        registry: Optional[FailpointRegistry] = None,
    ) -> None:
        if durability_mode not in ("fsync", "flush"):
            raise ValueError(
                f"durability_mode must be 'fsync' or 'flush', "
                f"got {durability_mode!r}"
            )
        self.durability_mode = durability_mode
        self.registry = registry if registry is not None else FAILPOINTS

    @property
    def fsync_enabled(self) -> bool:
        return self.durability_mode == "fsync"

    # -- streaming appends ---------------------------------------------

    def append(self, handle: BinaryIO, data: bytes, site: str) -> None:
        """Append ``data`` to an open file; injectable.

        ``crash`` fires before any byte is written; ``torn-write``
        flushes half the payload and then crashes.
        """
        mode = self.registry.check(site)
        if mode == MODE_TORN_WRITE:
            handle.write(torn_prefix(data))
            handle.flush()
            raise SimulatedCrash(site)
        if mode == MODE_CORRUPT:
            data = corrupt_bytes(data)  # silent bit rot: no exception
        if mode == MODE_DELAY:
            time.sleep(FAULT_DELAY_SECONDS)  # a slow device / stalled I/O
        handle.write(data)
        handle.flush()

    def sync(self, handle: BinaryIO, site: str, synced_size: int = 0) -> int:
        """fsync an open file (no-op in ``flush`` mode); injectable.

        Returns the new durable size.  ``partial-fsync`` simulates the
        loss of the OS write buffer: the file is cut back halfway
        between the last durable size and the current end, then the
        crash is raised.
        """
        handle.flush()
        size = handle.tell()
        mode = self.registry.check(site)
        if mode == MODE_PARTIAL_FSYNC:
            keep = synced_size + (size - synced_size) // 2
            handle.truncate(keep)
            raise SimulatedCrash(site)
        if mode == MODE_DELAY:
            time.sleep(FAULT_DELAY_SECONDS)  # a slow fsync
        if self.fsync_enabled:
            try:
                os.fsync(handle.fileno())
            except (OSError, ValueError, io_module.UnsupportedOperation):
                pass  # in-memory buffers have no file descriptor
        return size

    # -- whole files ---------------------------------------------------

    def write_file(self, path, data: bytes, site: str) -> None:
        """Atomically replace ``path`` with ``data``.

        Write-temp → flush/fsync → rename, so a crash at any instant
        leaves either the old complete file or the new complete file —
        never a torn one.  The failpoint covers the temp write (a crash
        there leaves only a stray ``.tmp``, which readers ignore).
        """
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        mode = self.registry.check(site)
        if mode == MODE_TORN_WRITE:
            tmp.write_bytes(torn_prefix(data))
            raise SimulatedCrash(site)
        if mode == MODE_CORRUPT:
            data = corrupt_bytes(data)  # silent bit rot: no exception
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.fsync_enabled:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        self.fsync_dir(path.parent)

    def rename(self, src, dst, site: str) -> None:
        """Atomic rename; ``crash``/``error`` injectable before the
        rename happens."""
        self.registry.check(site)
        os.replace(src, dst)
        self.fsync_dir(Path(dst).parent)

    def fsync_dir(self, directory) -> None:
        """Make a rename/creation durable (fsync the directory entry)."""
        if not self.fsync_enabled:
            return
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


#: Default I/O used by components not owned by an engine.
DEFAULT_IO = StorageIO()

__all__ = [
    "FAILPOINTS",
    "DEFAULT_IO",
    "FailpointRegistry",
    "StorageIO",
    "SimulatedCrash",
    "SiteStats",
    "MODE_ERROR",
    "MODE_CRASH",
    "MODE_TORN_WRITE",
    "MODE_PARTIAL_FSYNC",
    "MODE_CORRUPT",
    "MODE_DELAY",
    "MODE_DISCONNECT",
    "MODE_SHORT_READ",
    "MODES",
    "FAULT_DELAY_SECONDS",
    "torn_prefix",
    "corrupt_bytes",
]
