"""Online backup, incremental WAL archiving, and point-in-time restore.

Documented in ``docs/OPERATIONS.md`` (the operator runbook: backup
schedule, restore-to-timestamp, replica resync, failover).

An archive is a directory with a CRC-self-verified ``MANIFEST`` as its
commit point::

    DEST/
      MANIFEST                  JSON; every file's size + crc32, the
                                archive watermark, a self-checksum
      checkpoint-<fence>/       verbatim copy of one engine checkpoint
      wal/segment-000001.wal    raw engine-WAL frames (the kvstore WAL
      wal/segment-000002.wal    framing: u32 len | u32 crc | payload)

Backups are **online and fuzzy**: :func:`create_backup` copies the
source's checkpoint and WAL byte-for-byte while writers run, cutting
the WAL capture at the last intact frame.  The copy is consistent
without quiescing the engine because of the durability layer's own
invariant — every committed transaction is either inside the current
checkpoint (``commit_ts < fence``) or still in the WAL file — so a
checkpoint plus any WAL suffix captured *after* it is gap-free.  A
concurrent checkpoint *swap* (``checkpoint.install`` landing mid-walk)
is detected by re-reading ``meta.bin`` after the walk and retrying the
attempt.  The whole archive is staged in ``DEST.tmp`` and atomically
renamed into place, so a crashed backup never leaves a torn ``DEST``.

``--incremental`` appends a new WAL segment holding only the records
past the previous watermark (byte-sliced at frame boundaries — frames
are self-delimiting and checksummed, so segments concatenate) and, when
the source has checkpointed since, a new ``checkpoint-<fence>/`` copy.
Old segments and checkpoints are retained: every incremental *widens*
the range of timestamps :func:`restore_backup` can reproduce.

Restore picks the newest checkpoint whose fence covers ``as_of``, then
replays archived frames with ``commit_ts <= as_of`` — true
point-in-time recovery: the restored engine's temporal answers at
``as_of`` match the source's.

Failpoint sites (crash matrix: ``tests/test_fault_matrix.py``):
``backup.copy`` (every archive file write), ``backup.manifest`` (the
commit point), ``restore.replay`` (every restored WAL frame).
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Optional

from repro.common.serde import decode_value, encode_value
from repro.core.durability import CHECKPOINT_DIRNAME, WAL_FILENAME
from repro.errors import CorruptionError, StorageError
from repro.faults import DEFAULT_IO, FAILPOINTS, StorageIO
from repro.kvstore.wal import _HEADER

SITE_BACKUP_COPY = "backup.copy"
SITE_BACKUP_MANIFEST = "backup.manifest"
SITE_RESTORE_REPLAY = "restore.replay"
FAILPOINTS.register(SITE_BACKUP_COPY, SITE_BACKUP_MANIFEST,
                    SITE_RESTORE_REPLAY)

MANIFEST_FILENAME = "MANIFEST"
WAL_DIRNAME = "wal"
ARCHIVE_FORMAT_VERSION = 1

#: Attempts at a consistent fuzzy capture before giving up (each retry
#: means a concurrent checkpoint swapped mid-walk — rare by design).
CAPTURE_ATTEMPTS = 5


# -- metrics ----------------------------------------------------------------

_METRICS_LOCK = threading.Lock()
_BACKUP_COUNTERS: dict[str, Any] = {}
_RESTORE_COUNTERS: dict[str, Any] = {}


def reset_metrics() -> None:
    """Zero the module-level counters (test isolation)."""
    with _METRICS_LOCK:
        _BACKUP_COUNTERS.clear()
        _BACKUP_COUNTERS.update(
            backups_completed=0,
            full_backups=0,
            incremental_backups=0,
            capture_retries=0,
            files_copied=0,
            bytes_copied=0,
            wal_records_archived=0,
            verify_runs=0,
            verify_findings=0,
            last_backup_unix=0.0,
            last_backup_watermark=0,
        )
        _RESTORE_COUNTERS.clear()
        _RESTORE_COUNTERS.update(
            restores_completed=0,
            point_in_time_restores=0,
            records_replayed=0,
            records_beyond_as_of=0,
            records_in_checkpoint=0,
            bytes_restored=0,
        )


reset_metrics()


def _bump(counters: dict[str, Any], **deltas: Any) -> None:
    with _METRICS_LOCK:
        for key, delta in deltas.items():
            counters[key] += delta


def backup_metrics() -> dict[str, Any]:
    """The ``backup`` metrics section (registry / Prometheus /
    ``aeong metrics``), including the snapshot-age gauge."""
    with _METRICS_LOCK:
        out = dict(_BACKUP_COUNTERS)
    last = out["last_backup_unix"]
    out["snapshot_age_seconds"] = (
        max(0.0, time.time() - last) if last else None
    )
    return out


def restore_metrics() -> dict[str, Any]:
    """The ``restore`` metrics section."""
    with _METRICS_LOCK:
        return dict(_RESTORE_COUNTERS)


# -- raw engine-WAL frames --------------------------------------------------


def scan_wal_bytes(data: bytes) -> list[tuple[int, list, int, int]]:
    """Parse raw engine-WAL bytes into ``[(ts, ops, start, end)]``.

    Stops at the first torn, checksum-failing, or undecodable frame —
    which for an online capture is exactly the fuzzy cut point (a
    record mid-append when the bytes were read).  Never opens the file
    through :class:`~repro.kvstore.wal.WriteAheadLog` (whose
    constructor would create/extend the source file).
    """
    from repro.kvstore.wal import _decode_batch

    records: list[tuple[int, list, int, int]] = []
    pos = 0
    size = len(data)
    while pos + _HEADER.size <= size:
        length, crc = _HEADER.unpack_from(data, pos)
        start = pos + _HEADER.size
        end = start + length
        if end > size:
            break  # torn tail
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            for _key, blob in _decode_batch(payload):
                if blob is None:
                    continue
                record = decode_value(blob)
                records.append(
                    (record["ts"],
                     [list(op) for op in record["ops"]], pos, end)
                )
        except Exception:
            break
        pos = end
    return records


def _frame_record(ts: int, ops: list) -> bytes:
    """Re-frame one logical record as a standalone WAL frame.

    The live log may pack several commits into one group-commit frame,
    in which case every record returned by :func:`scan_wal_bytes`
    carries the *whole frame's* byte extent — slicing raw bytes per
    record would archive (and on restore, replay) a shared frame once
    per record, and a point-in-time cut could not land between two
    records of one frame.  Archive segments and restored logs are
    therefore *record*-granular: each selected record is re-encoded as
    its own checksummed single-record frame.
    """
    from repro.kvstore.wal import _encode_batch

    payload = _encode_batch(
        [(b"txn", encode_value({"ts": ts, "ops": [list(op) for op in ops]}))]
    )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


# -- manifest ---------------------------------------------------------------


def _manifest_bytes(doc: dict[str, Any]) -> bytes:
    """Serialize a manifest with its self-checksum (crc32 over the
    canonical JSON of everything *except* the checksum field)."""
    body = {k: v for k, v in doc.items() if k != "crc32"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    body["crc32"] = zlib.crc32(canonical.encode("utf-8"))
    return (json.dumps(body, indent=2, sort_keys=True) + "\n").encode("utf-8")


def write_manifest(
    directory, doc: dict[str, Any], storage_io: Optional[StorageIO] = None
) -> None:
    """Atomically install an archive's ``MANIFEST`` (the commit point;
    ``backup.manifest`` failpoint site)."""
    io = storage_io if storage_io is not None else DEFAULT_IO
    io.write_file(
        Path(directory) / MANIFEST_FILENAME,
        _manifest_bytes(doc),
        SITE_BACKUP_MANIFEST,
    )


def read_manifest(directory) -> dict[str, Any]:
    """Load and self-verify an archive's manifest.

    Raises :class:`~repro.errors.StorageError` when absent and
    :class:`~repro.errors.CorruptionError` on any damage — a backup
    whose manifest fails its own checksum must never be restored from.
    """
    path = Path(directory) / MANIFEST_FILENAME
    if not path.exists():
        raise StorageError(f"no backup manifest at {path}")
    try:
        doc = json.loads(path.read_text("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CorruptionError(
            f"backup manifest at {path} is not valid JSON: {exc}"
        ) from exc
    stored = doc.get("crc32")
    body = {k: v for k, v in doc.items() if k != "crc32"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    if stored != zlib.crc32(canonical.encode("utf-8")):
        raise CorruptionError(
            f"backup manifest at {path} failed its self-checksum"
        )
    if doc.get("format") != ARCHIVE_FORMAT_VERSION:
        raise StorageError(
            f"unsupported backup archive format {doc.get('format')!r}"
        )
    return doc


def _merge_coverage(
    intervals: list, new: list
) -> list[list[int]]:
    """Union of restorable as-of intervals, merged when overlapping or
    adjacent.  Backups taken less often than the source checkpoints
    leave *gaps* — timestamps whose commits were truncated out of the
    WAL before any backup archived them; restore refuses those."""
    merged: list[list[int]] = []
    for lo, hi in sorted([list(i) for i in intervals] + [list(new)]):
        if merged and lo <= merged[-1][1] + 1:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    return merged


def _coverage_for(manifest: dict[str, Any], as_of: int):
    """The coverage interval containing ``as_of``, or ``None``."""
    for lo, hi in manifest.get(
        "coverage", [[0, manifest["watermark"]]]
    ):
        if lo <= as_of <= hi:
            return (lo, hi)
    return None


# -- fuzzy source capture ---------------------------------------------------


def _capture_source(source: Path) -> tuple[list, int, bytes, list]:
    """One consistent fuzzy read of a live durability directory.

    Returns ``(checkpoint_files, fence, wal_bytes, wal_records)`` where
    ``checkpoint_files`` is ``[(relative_name, bytes)]``, ``fence`` is
    the checkpoint's ``next_timestamp`` (0 without a checkpoint), and
    ``wal_bytes`` is the WAL cut at the last intact frame.  Retries
    when a concurrent checkpoint install swapped the directory
    mid-walk (detected by comparing ``meta.bin`` before and after).
    """
    ckpt = source / CHECKPOINT_DIRNAME
    meta_path = ckpt / "meta.bin"
    for attempt in range(CAPTURE_ATTEMPTS):
        if attempt:
            _bump(_BACKUP_COUNTERS, capture_retries=1)
        try:
            files: list[tuple[str, bytes]] = []
            fence = 0
            meta_before = (
                meta_path.read_bytes() if meta_path.exists() else None
            )
            if meta_before is not None:
                for path in sorted(
                    p for p in ckpt.rglob("*") if p.is_file()
                ):
                    if path.suffix == ".tmp":
                        continue  # aborted atomic write; never valid
                    files.append(
                        (path.relative_to(ckpt).as_posix(),
                         path.read_bytes())
                    )
                fence = decode_value(meta_before)["next_timestamp"]
            wal_path = source / WAL_FILENAME
            wal_bytes = wal_path.read_bytes() if wal_path.exists() else b""
            # Checkpoint *after* WAL: if the checkpoint swapped while
            # we walked it, the copied files may mix two checkpoints —
            # retry the whole capture.  (A swap after the WAL read only
            # makes the WAL a longer suffix, which stays gap-free.)
            meta_after = (
                meta_path.read_bytes() if meta_path.exists() else None
            )
            if meta_before != meta_after:
                continue
        except FileNotFoundError:
            continue  # a file vanished mid-swap; retry
        records = scan_wal_bytes(wal_bytes)
        valid = records[-1][3] if records else 0
        return files, fence, wal_bytes[:valid], records
    raise StorageError(
        f"source checkpoint at {ckpt} kept changing across "
        f"{CAPTURE_ATTEMPTS} capture attempts; is a checkpoint loop "
        "running faster than the backup can read?"
    )


# -- backup -----------------------------------------------------------------


@dataclass
class BackupReport:
    """What one :func:`create_backup` call captured."""

    destination: str
    incremental: bool
    watermark: int
    checkpoint_fence: int
    checkpoint_copied: bool
    files_copied: int
    bytes_copied: int
    wal_records_archived: int
    segments: int

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)


def _file_entry(name: str, data: bytes) -> dict[str, Any]:
    return {"name": name, "size": len(data), "crc32": zlib.crc32(data)}


def _copy_into(
    io: StorageIO, root: Path, name: str, data: bytes
) -> None:
    """One archive file, atomically, through the ``backup.copy``
    failpoint.  The manifest records the checksum of the *source*
    bytes, so ``corrupt``-mode damage here is caught by verify."""
    path = root / name
    path.parent.mkdir(parents=True, exist_ok=True)
    io.write_file(path, data, SITE_BACKUP_COPY)


def create_backup(
    source,
    dest,
    incremental: bool = False,
    storage_io: Optional[StorageIO] = None,
) -> BackupReport:
    """Capture a live durability directory into an archive at ``dest``.

    Full mode requires ``dest`` not to exist: the archive is staged in
    ``DEST.tmp`` and atomically renamed, so ``dest`` is either absent
    or manifest-complete — never torn.  Incremental mode extends an
    existing archive: new files land first and the manifest rewrite is
    the atomic commit point (a crash in between leaves the previous
    manifest, which ignores the orphaned files).
    """
    io = storage_io if storage_io is not None else DEFAULT_IO
    source = Path(source)
    dest = Path(dest)
    if not source.is_dir():
        raise StorageError(f"backup source {source} is not a directory")
    if incremental:
        return _incremental_backup(source, dest, io)
    if dest.exists():
        raise StorageError(
            f"backup destination {dest} already exists "
            "(use --incremental to extend an archive)"
        )
    staging = dest.with_name(dest.name + ".tmp")
    if staging.exists():
        shutil.rmtree(staging)  # a previous backup crashed mid-stage
    try:
        report = _full_backup_into(source, dest, staging, io)
    except Exception:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    # SimulatedCrash (BaseException) deliberately skips the cleanup: a
    # real crash leaves the stale staging dir too, and the next run
    # removes it above.
    os.replace(staging, dest)
    io.fsync_dir(dest.parent)
    return report


def _full_backup_into(
    source: Path, dest: Path, staging: Path, io: StorageIO
) -> BackupReport:
    files_ckpt, fence, wal_bytes, records = _capture_source(source)
    staging.mkdir(parents=True)
    manifest_files: list[dict[str, Any]] = []
    checkpoints: list[dict[str, Any]] = []
    bytes_copied = 0
    if files_ckpt:
        ckpt_dir = f"checkpoint-{fence}"
        for rel, data in files_ckpt:
            name = f"{ckpt_dir}/{rel}"
            _copy_into(io, staging, name, data)
            manifest_files.append(_file_entry(name, data))
            bytes_copied += len(data)
        checkpoints.append({"dir": ckpt_dir, "fence": fence})
    segments: list[dict[str, Any]] = []
    if wal_bytes:
        name = f"{WAL_DIRNAME}/segment-000001.wal"
        _copy_into(io, staging, name, wal_bytes)
        segments.append({
            "name": name,
            "first_ts": records[0][0],
            "last_ts": records[-1][0],
            "records": len(records),
            "size": len(wal_bytes),
            "crc32": zlib.crc32(wal_bytes),
        })
        manifest_files.append(_file_entry(name, wal_bytes))
        bytes_copied += len(wal_bytes)
    watermark = max(
        fence - 1 if fence else 0, records[-1][0] if records else 0
    )
    doc = {
        "format": ARCHIVE_FORMAT_VERSION,
        "watermark": watermark,
        # Restorable as-of intervals.  One capture covers exactly
        # [fence - 1, watermark]: the checkpoint cannot be un-applied
        # below its fence, and the WAL holds every commit above it.
        "coverage": [[fence - 1 if fence else 0, watermark]],
        "checkpoints": checkpoints,
        "segments": segments,
        "files": manifest_files,
        "backups": 1,
        "created_unix": time.time(),
    }
    write_manifest(staging, doc, io)
    _bump(
        _BACKUP_COUNTERS,
        backups_completed=1,
        full_backups=1,
        files_copied=len(manifest_files),
        bytes_copied=bytes_copied,
        wal_records_archived=len(records),
    )
    with _METRICS_LOCK:
        _BACKUP_COUNTERS["last_backup_unix"] = time.time()
        _BACKUP_COUNTERS["last_backup_watermark"] = watermark
    return BackupReport(
        destination=str(dest),
        incremental=False,
        watermark=watermark,
        checkpoint_fence=fence,
        checkpoint_copied=bool(files_ckpt),
        files_copied=len(manifest_files),
        bytes_copied=bytes_copied,
        wal_records_archived=len(records),
        segments=len(segments),
    )


def _incremental_backup(
    source: Path, dest: Path, io: StorageIO
) -> BackupReport:
    manifest = read_manifest(dest)  # damaged archive: refuse to extend
    prev_watermark = manifest["watermark"]
    files_ckpt, fence, wal_bytes, records = _capture_source(source)
    new_records = [r for r in records if r[0] > prev_watermark]

    files = list(manifest["files"])
    checkpoints = list(manifest["checkpoints"])
    segments = list(manifest["segments"])
    known_fences = {entry["fence"] for entry in checkpoints}
    bytes_copied = 0
    files_copied = 0
    checkpoint_copied = False
    if files_ckpt and fence not in known_fences:
        ckpt_dir = f"checkpoint-{fence}"
        for rel, data in files_ckpt:
            name = f"{ckpt_dir}/{rel}"
            _copy_into(io, dest, name, data)
            files.append(_file_entry(name, data))
            bytes_copied += len(data)
            files_copied += 1
        checkpoints.append({"dir": ckpt_dir, "fence": fence})
        checkpoint_copied = True
    new_segments = 0
    if new_records:
        blob = b"".join(
            _frame_record(ts, ops) for ts, ops, _start, _end in new_records
        )
        name = f"{WAL_DIRNAME}/segment-{len(segments) + 1:06d}.wal"
        _copy_into(io, dest, name, blob)
        segments.append({
            "name": name,
            "first_ts": new_records[0][0],
            "last_ts": new_records[-1][0],
            "records": len(new_records),
            "size": len(blob),
            "crc32": zlib.crc32(blob),
        })
        files.append(_file_entry(name, blob))
        bytes_copied += len(blob)
        files_copied += 1
        new_segments = 1
    watermark = max(
        prev_watermark,
        fence - 1 if fence else 0,
        new_records[-1][0] if new_records else 0,
    )
    coverage = _merge_coverage(
        manifest.get("coverage", [[0, prev_watermark]]),
        [fence - 1 if fence else 0, watermark],
    )
    doc = {
        "format": ARCHIVE_FORMAT_VERSION,
        "watermark": watermark,
        "coverage": coverage,
        "checkpoints": checkpoints,
        "segments": segments,
        "files": files,
        "backups": manifest.get("backups", 1) + 1,
        "created_unix": time.time(),
    }
    write_manifest(dest, doc, io)  # the atomic commit point
    _bump(
        _BACKUP_COUNTERS,
        backups_completed=1,
        incremental_backups=1,
        files_copied=files_copied,
        bytes_copied=bytes_copied,
        wal_records_archived=len(new_records),
    )
    with _METRICS_LOCK:
        _BACKUP_COUNTERS["last_backup_unix"] = time.time()
        _BACKUP_COUNTERS["last_backup_watermark"] = watermark
    return BackupReport(
        destination=str(dest),
        incremental=True,
        watermark=watermark,
        checkpoint_fence=fence,
        checkpoint_copied=checkpoint_copied,
        files_copied=files_copied,
        bytes_copied=bytes_copied,
        wal_records_archived=len(new_records),
        segments=new_segments,
    )


# -- verify -----------------------------------------------------------------


def verify_backup(directory) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Fsck an archive without restoring it.

    Returns ``(manifest, findings)``; each finding is a dict with
    ``severity`` (``"error"``), ``code``, ``name``, ``detail``.  The
    manifest itself failing its checksum raises
    :class:`~repro.errors.CorruptionError` (there is nothing
    trustworthy to report against).
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    findings: list[dict[str, Any]] = []

    def _finding(code: str, name: str, detail: str) -> None:
        findings.append({
            "severity": "error", "code": code, "name": name,
            "detail": detail,
        })

    missing: set[str] = set()
    for entry in manifest["files"]:
        path = directory / entry["name"]
        if not path.exists():
            missing.add(entry["name"])
            _finding("missing-file", entry["name"],
                     "listed in the manifest but absent")
            continue
        data = path.read_bytes()
        if len(data) != entry["size"]:
            _finding(
                "size-mismatch", entry["name"],
                f"manifest says {entry['size']} bytes, found {len(data)}",
            )
        elif zlib.crc32(data) != entry["crc32"]:
            _finding("checksum-mismatch", entry["name"],
                     "file bytes fail the manifest crc32")
    for seg in manifest["segments"]:
        if seg["name"] in missing:
            continue
        path = directory / seg["name"]
        if not path.exists():
            continue
        parsed = scan_wal_bytes(path.read_bytes())
        if len(parsed) != seg["records"]:
            _finding(
                "segment-structure", seg["name"],
                f"manifest says {seg['records']} records, "
                f"parsed {len(parsed)}",
            )
        elif parsed and (
            parsed[0][0] != seg["first_ts"]
            or parsed[-1][0] != seg["last_ts"]
        ):
            _finding(
                "segment-range", seg["name"],
                f"manifest range [{seg['first_ts']},{seg['last_ts']}] "
                f"but frames span [{parsed[0][0]},{parsed[-1][0]}]",
            )
    _bump(_BACKUP_COUNTERS, verify_runs=1, verify_findings=len(findings))
    return manifest, findings


# -- restore ----------------------------------------------------------------


@dataclass
class RestoreReport:
    """What one :func:`restore_backup` call rebuilt."""

    target: str
    as_of: int
    watermark: int
    checkpoint_dir: Optional[str]
    checkpoint_fence: int
    records_replayed: int
    records_beyond_as_of: int
    records_in_checkpoint: int
    bytes_restored: int

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)


def restore_backup(
    backup_dir,
    target,
    as_of: Optional[int] = None,
    storage_io: Optional[StorageIO] = None,
) -> RestoreReport:
    """Rebuild a durability directory at ``target`` from an archive.

    With ``as_of`` the restored state is exactly the source's at that
    commit timestamp: the newest archived checkpoint with
    ``fence <= as_of + 1`` seeds the directory and archived WAL frames
    with ``commit_ts <= as_of`` are replayed on top (frames below the
    chosen fence are already inside the checkpoint and are skipped;
    overlapping segments deduplicate by timestamp).  The target is
    staged in ``TARGET.tmp`` and atomically renamed, mirroring the
    backup side's never-torn discipline.  Open the result with
    :meth:`AeonG.open`.
    """
    io = storage_io if storage_io is not None else DEFAULT_IO
    backup_dir = Path(backup_dir)
    target = Path(target)
    manifest, findings = verify_backup(backup_dir)
    errors = [f for f in findings if f["severity"] == "error"]
    if errors:
        first = errors[0]
        raise CorruptionError(
            f"backup archive at {backup_dir} fails verification "
            f"({len(errors)} error(s); first: {first['code']} "
            f"{first['name']}: {first['detail']}); refusing to restore"
        )
    watermark = manifest["watermark"]
    if as_of is None:
        as_of = watermark
    if as_of > watermark:
        raise StorageError(
            f"--as-of {as_of} is beyond the archive watermark "
            f"{watermark}; take a newer backup first"
        )
    if _coverage_for(manifest, as_of) is None:
        ranges = ", ".join(
            f"[{lo}, {hi}]" for lo, hi in manifest.get("coverage", [])
        )
        raise StorageError(
            f"--as-of {as_of} is not restorable from this archive "
            f"(covered intervals: {ranges}); commits around it were "
            "checkpoint-truncated before any backup archived them"
        )
    chosen = None
    for entry in sorted(manifest["checkpoints"], key=lambda c: c["fence"]):
        if entry["fence"] <= as_of + 1:
            chosen = entry
    fence = chosen["fence"] if chosen else 0

    if target.exists():
        if any(target.iterdir()):
            raise StorageError(
                f"restore target {target} exists and is not empty"
            )
        target.rmdir()
    staging = target.with_name(target.name + ".tmp")
    if staging.exists():
        shutil.rmtree(staging)  # a previous restore crashed mid-stage
    staging.mkdir(parents=True)
    bytes_restored = 0
    try:
        if chosen is not None:
            prefix = chosen["dir"] + "/"
            for entry in manifest["files"]:
                if not entry["name"].startswith(prefix):
                    continue
                rel = entry["name"][len(prefix):]
                data = (backup_dir / entry["name"]).read_bytes()
                out = staging / CHECKPOINT_DIRNAME / rel
                out.parent.mkdir(parents=True, exist_ok=True)
                out.write_bytes(data)
                bytes_restored += len(data)
        replayed = 0
        beyond = 0
        in_checkpoint = 0
        emitted = fence - 1  # dedup floor across overlapping segments
        with open(staging / WAL_FILENAME, "ab") as handle:
            for seg in manifest["segments"]:
                data = (backup_dir / seg["name"]).read_bytes()
                for ts, ops, _start, _end in scan_wal_bytes(data):
                    if ts > as_of:
                        beyond += 1
                        continue
                    if ts <= emitted:
                        if ts < fence:
                            in_checkpoint += 1
                        continue
                    # Record-granular re-framing: see _frame_record —
                    # a raw byte slice could carry a whole shared
                    # group-commit frame per record.
                    frame = _frame_record(ts, ops)
                    io.append(handle, frame, SITE_RESTORE_REPLAY)
                    emitted = ts
                    replayed += 1
                    bytes_restored += len(frame)
            io.sync(handle, SITE_RESTORE_REPLAY)
    except Exception:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    # As in create_backup, SimulatedCrash bypasses the cleanup — the
    # stale TARGET.tmp models real crash residue and the next restore
    # removes it.
    os.replace(staging, target)
    io.fsync_dir(target.parent)
    _bump(
        _RESTORE_COUNTERS,
        restores_completed=1,
        point_in_time_restores=1 if as_of != watermark else 0,
        records_replayed=replayed,
        records_beyond_as_of=beyond,
        records_in_checkpoint=in_checkpoint,
        bytes_restored=bytes_restored,
    )
    return RestoreReport(
        target=str(target),
        as_of=as_of,
        watermark=watermark,
        checkpoint_dir=chosen["dir"] if chosen else None,
        checkpoint_fence=fence,
        records_replayed=replayed,
        records_beyond_as_of=beyond,
        records_in_checkpoint=in_checkpoint,
        bytes_restored=bytes_restored,
    )


__all__ = [
    "SITE_BACKUP_COPY",
    "SITE_BACKUP_MANIFEST",
    "SITE_RESTORE_REPLAY",
    "MANIFEST_FILENAME",
    "WAL_DIRNAME",
    "ARCHIVE_FORMAT_VERSION",
    "BackupReport",
    "RestoreReport",
    "create_backup",
    "restore_backup",
    "verify_backup",
    "read_manifest",
    "write_manifest",
    "scan_wal_bytes",
    "backup_metrics",
    "restore_metrics",
    "reset_metrics",
]
