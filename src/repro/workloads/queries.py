"""The LDBC interactive short reads the paper evaluates.

IS1, IS3, IS4, IS5 and IS7, implemented against the backend protocol
so the same query code runs on AeonG, T-GQL and Clock-G (IS2 and IS6
are excluded for the same reason as in the paper).  Each query comes
in a time-point (``TT SNAPSHOT``) and a time-slice (``TT BETWEEN``)
variant; the non-temporal shape matches the official definitions:

- **IS1** — a person's profile (plus their city);
- **IS3** — a person's friends with the friendship's creationDate;
- **IS4** — a message's content and creationDate;
- **IS5** — a message's creator;
- **IS7** — the replies to a message, each with its author.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.baselines.interface import TemporalBackend


@dataclass(frozen=True)
class QueryResult:
    """Uniform result wrapper: rows of plain dicts."""

    rows: tuple[dict, ...]

    def __len__(self) -> int:
        return len(self.rows)


def is1_profile(
    backend: TemporalBackend, person: str, t: int, t2: Optional[int] = None
) -> QueryResult:
    """IS1: person profile (+ city name via IS_LOCATED_IN)."""
    if t2 is None:
        states = [backend.vertex_at(person, t)]
        cities = backend.neighbors_at(person, t, "out", "IS_LOCATED_IN")
    else:
        states = backend.vertex_between(person, t, t2)
        cities = backend.neighbors_between(person, t, t2, "out", "IS_LOCATED_IN")
    city = cities[0].neighbor_properties.get("name") if cities else None
    rows = tuple(
        {
            "firstName": state.get("firstName"),
            "lastName": state.get("lastName"),
            "birthday": state.get("birthday"),
            "locationIP": state.get("locationIP"),
            "browserUsed": state.get("browserUsed"),
            "gender": state.get("gender"),
            "city": city,
        }
        for state in states
        if state is not None
    )
    return QueryResult(rows)


def is3_friends(
    backend: TemporalBackend, person: str, t: int, t2: Optional[int] = None
) -> QueryResult:
    """IS3: friends with friendship creation date, newest first."""
    if t2 is None:
        hits = backend.neighbors_at(person, t, "both", "KNOWS")
    else:
        hits = backend.neighbors_between(person, t, t2, "both", "KNOWS")
    rows = sorted(
        (
            {
                "friend": hit.neighbor_ext_id,
                "firstName": hit.neighbor_properties.get("firstName"),
                "lastName": hit.neighbor_properties.get("lastName"),
                "friendshipDate": hit.edge_properties.get("creationDate"),
            }
            for hit in hits
        ),
        key=lambda row: (-(row["friendshipDate"] or 0), row["friend"]),
    )
    return QueryResult(tuple(rows))


def is4_message(
    backend: TemporalBackend, message: str, t: int, t2: Optional[int] = None
) -> QueryResult:
    """IS4: message content and creation date."""
    if t2 is None:
        states = [backend.vertex_at(message, t)]
    else:
        states = backend.vertex_between(message, t, t2)
    rows = tuple(
        {
            "content": state.get("content"),
            "creationDate": state.get("creationDate"),
            "length": state.get("length"),
        }
        for state in states
        if state is not None
    )
    return QueryResult(rows)


def is5_creator(
    backend: TemporalBackend, message: str, t: int, t2: Optional[int] = None
) -> QueryResult:
    """IS5: the creator of a message."""
    if t2 is None:
        hits = backend.neighbors_at(message, t, "out", "HAS_CREATOR")
    else:
        hits = backend.neighbors_between(message, t, t2, "out", "HAS_CREATOR")
    rows = tuple(
        {
            "person": hit.neighbor_ext_id,
            "firstName": hit.neighbor_properties.get("firstName"),
            "lastName": hit.neighbor_properties.get("lastName"),
        }
        for hit in hits
    )
    return QueryResult(rows)


def is7_replies(
    backend: TemporalBackend, message: str, t: int, t2: Optional[int] = None
) -> QueryResult:
    """IS7: replies to a message, each with its author (2 hops)."""
    if t2 is None:
        replies = backend.neighbors_at(message, t, "in", "REPLY_OF")
    else:
        replies = backend.neighbors_between(message, t, t2, "in", "REPLY_OF")
    rows = []
    for reply in replies:
        if t2 is None:
            authors = backend.neighbors_at(
                reply.neighbor_ext_id, t, "out", "HAS_CREATOR"
            )
        else:
            authors = backend.neighbors_between(
                reply.neighbor_ext_id, t, t2, "out", "HAS_CREATOR"
            )
        author = authors[0] if authors else None
        rows.append(
            {
                "comment": reply.neighbor_ext_id,
                "content": reply.neighbor_properties.get("content"),
                "author": author.neighbor_ext_id if author else None,
                "authorFirstName": (
                    author.neighbor_properties.get("firstName") if author else None
                ),
            }
        )
    rows.sort(key=lambda row: row["comment"])
    return QueryResult(tuple(rows))


#: Query registry used by benchmarks: name -> (function, target kind).
#: Target kind selects which external-id pool to draw from.
IS_QUERIES: dict[str, tuple[Callable[..., QueryResult], str]] = {
    "IS1": (is1_profile, "person"),
    "IS3": (is3_friends, "person"),
    "IS4": (is4_message, "message"),
    "IS5": (is5_creator, "message"),
    "IS7": (is7_replies, "message"),
}


def run_query(
    name: str,
    backend: TemporalBackend,
    target: str,
    t: int,
    t2: Optional[int] = None,
) -> QueryResult:
    """Dispatch one IS query by name."""
    func, _kind = IS_QUERIES[name]
    return func(backend, target, t, t2)
