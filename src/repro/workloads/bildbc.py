"""Bi-LDBC: timestamped graph-operation streams over the LDBC graph.

The paper extends SF1 LDBC "with a series of timestamped graph
operations that simulate real-life temporal social networks", varying
the stream size over {1M, 2M, 3M, 4M}.  The mix below mirrors that
description — property updates of existing entities and relationships
dominate, with a share of inserts (new persons / posts / comments /
likes) and a small share of deletes.

The stream continues the dataset's logical clock, so query instants
drawn "uniformly within the time span" cover load + update history.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.interface import (
    ADD_EDGE,
    ADD_VERTEX,
    DELETE_EDGE,
    GraphOp,
    UPDATE_EDGE,
    UPDATE_VERTEX,
)
from repro.workloads.ldbc import LdbcDataset, _BROWSERS, _LANGUAGES

#: Operation-mix shares (sum to 1): the stream is update-heavy like a
#: living social network.
UPDATE_VERTEX_SHARE = 0.55
UPDATE_EDGE_SHARE = 0.10
INSERT_SHARE = 0.30
DELETE_SHARE = 0.05


@dataclass
class BiLdbcStream:
    """The generated operation stream plus id bookkeeping."""

    ops: list[GraphOp] = field(default_factory=list)
    first_ts: int = 0
    last_ts: int = 0
    new_person_ids: list[str] = field(default_factory=list)


def generate_operations(
    dataset: LdbcDataset, count: int, seed: int = 7
) -> BiLdbcStream:
    """Produce ``count`` timestamped operations over ``dataset``."""
    rng = random.Random(seed)
    stream = BiLdbcStream(first_ts=dataset.last_ts + 1)
    ts = dataset.last_ts

    persons = list(dataset.person_ids)
    posts = list(dataset.post_ids)
    comments = list(dataset.comment_ids)
    # Updatable relationship pool: KNOWS/LIKES edges carry properties.
    knows_edges = [
        op.ext_id
        for op in dataset.ops
        if op.kind == ADD_EDGE and op.label in ("KNOWS", "LIKES")
    ]
    deletable_edges = list(knows_edges)
    next_person = len(persons)
    next_post = len(posts)
    next_comment = len(comments)
    next_edge = len(dataset.edge_ids) + count  # avoid collisions

    for _ in range(count):
        ts += 1
        roll = rng.random()
        if roll < UPDATE_VERTEX_SHARE:
            stream.ops.append(_update_vertex(rng, ts, persons, posts, comments))
        elif roll < UPDATE_VERTEX_SHARE + UPDATE_EDGE_SHARE and knows_edges:
            edge = rng.choice(knows_edges)
            stream.ops.append(
                GraphOp(
                    UPDATE_EDGE,
                    ts,
                    edge,
                    prop="weight",
                    value=rng.randrange(1, 100),
                )
            )
        elif roll < UPDATE_VERTEX_SHARE + UPDATE_EDGE_SHARE + INSERT_SHARE:
            kind = rng.random()
            if kind < 0.2:
                ext_id = f"person:{next_person}"
                next_person += 1
                persons.append(ext_id)
                stream.new_person_ids.append(ext_id)
                stream.ops.append(
                    GraphOp(
                        ADD_VERTEX,
                        ts,
                        ext_id,
                        label="Person",
                        properties={
                            "firstName": "New",
                            "lastName": f"Arrival{next_person}",
                            "gender": rng.choice(["male", "female"]),
                            "birthday": 19800101,
                            "browserUsed": rng.choice(_BROWSERS),
                            "locationIP": "10.0.0.1",
                            "creationDate": ts,
                        },
                    )
                )
            elif kind < 0.5:
                ext_id = f"post:{next_post}"
                next_post += 1
                posts.append(ext_id)
                content = "fresh post " + "z" * rng.randrange(10, 60)
                stream.ops.append(
                    GraphOp(
                        ADD_VERTEX,
                        ts,
                        ext_id,
                        label="Post",
                        properties={
                            "content": content,
                            "length": len(content),
                            "language": rng.choice(_LANGUAGES),
                            "browserUsed": rng.choice(_BROWSERS),
                            "creationDate": ts,
                        },
                    )
                )
            elif kind < 0.8:
                ext_id = f"comment:{next_comment}"
                next_comment += 1
                comments.append(ext_id)
                content = "fresh comment " + "w" * rng.randrange(5, 40)
                stream.ops.append(
                    GraphOp(
                        ADD_VERTEX,
                        ts,
                        ext_id,
                        label="Comment",
                        properties={
                            "content": content,
                            "length": len(content),
                            "browserUsed": rng.choice(_BROWSERS),
                            "creationDate": ts,
                        },
                    )
                )
            else:
                ext_id = f"e{next_edge}"
                next_edge += 1
                edge_type = rng.choice(["KNOWS", "LIKES"])
                src = rng.choice(persons)
                dst = (
                    rng.choice(persons)
                    if edge_type == "KNOWS"
                    else rng.choice(posts + comments)
                )
                if src == dst:
                    dst = persons[0] if src != persons[0] else persons[1]
                knows_edges.append(ext_id)
                deletable_edges.append(ext_id)
                stream.ops.append(
                    GraphOp(
                        ADD_EDGE,
                        ts,
                        ext_id,
                        label=edge_type,
                        src=src,
                        dst=dst,
                        properties={"creationDate": ts},
                    )
                )
        elif deletable_edges:
            index = rng.randrange(len(deletable_edges))
            ext_id = deletable_edges.pop(index)
            if ext_id in knows_edges:
                knows_edges.remove(ext_id)
            stream.ops.append(GraphOp(DELETE_EDGE, ts, ext_id))
        else:
            stream.ops.append(_update_vertex(rng, ts, persons, posts, comments))
    stream.last_ts = ts
    return stream


def _update_vertex(rng, ts: int, persons, posts, comments) -> GraphOp:
    roll = rng.random()
    if roll < 0.5:
        return GraphOp(
            UPDATE_VERTEX,
            ts,
            rng.choice(persons),
            prop=rng.choice(["browserUsed", "locationIP"]),
            value=rng.choice(_BROWSERS)
            if rng.random() < 0.5
            else f"10.{rng.randrange(256)}.0.{rng.randrange(256)}",
        )
    if roll < 0.8:
        return GraphOp(
            UPDATE_VERTEX,
            ts,
            rng.choice(posts),
            prop="length",
            value=rng.randrange(10, 200),
        )
    return GraphOp(
        UPDATE_VERTEX,
        ts,
        rng.choice(comments),
        prop="length",
        value=rng.randrange(5, 120),
    )
