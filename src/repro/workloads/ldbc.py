"""An LDBC Social Network Benchmark-like dataset generator.

Reproduces the SNB interactive schema at configurable scale: Person,
Place, Tag, Forum, Post and Comment vertices with the edge types the
IS queries traverse (KNOWS, IS_LOCATED_IN, HAS_CREATOR, REPLY_OF,
LIKES, HAS_MODERATOR, CONTAINER_OF, HAS_TAG, HAS_INTEREST).  The paper
uses the official generator at scale factor 1 (3.18M vertices); this
generator keeps the same shape — power-law-ish friendship degrees,
message trees rooted at posts, forum containment — at laptop scale,
controlled by ``persons``.

Everything is deterministic under ``seed``: ids, degrees, and the
event timeline (one logical tick per created object, so creation
timestamps are totally ordered like the official dataset's).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.interface import (
    ADD_EDGE,
    ADD_VERTEX,
    GraphOp,
)

_FIRST_NAMES = [
    "Jack", "Jill", "Wei", "Chen", "Amara", "Ines", "Yusuf", "Maria",
    "Ivan", "Sofia", "Ken", "Aiko", "Omar", "Lena", "Raj", "Priya",
]
_LAST_NAMES = [
    "Smith", "Garcia", "Mueller", "Tanaka", "Kumar", "Okafor", "Rossi",
    "Novak", "Silva", "Petrov", "Yamamoto", "Johansson",
]
_BROWSERS = ["Firefox", "Chrome", "Safari", "Opera", "Edge"]
_LANGUAGES = ["en", "zh", "es", "de", "ja", "pt"]
_CITIES = [
    "Beijing", "Mumbai", "Lagos", "Berlin", "Toronto", "Lima", "Osaka",
    "Nairobi", "Prague", "Bogota", "Hanoi", "Dublin", "Tunis", "Quito",
]
_TAG_STEMS = [
    "music", "sports", "politics", "films", "travel", "cooking",
    "science", "history", "art", "games",
]


@dataclass
class LdbcDataset:
    """The generated graph plus bookkeeping the op streams need."""

    ops: list[GraphOp] = field(default_factory=list)
    person_ids: list[str] = field(default_factory=list)
    post_ids: list[str] = field(default_factory=list)
    comment_ids: list[str] = field(default_factory=list)
    forum_ids: list[str] = field(default_factory=list)
    edge_ids: list[str] = field(default_factory=list)
    last_ts: int = 0

    @property
    def message_ids(self) -> list[str]:
        return self.post_ids + self.comment_ids

    @property
    def vertex_count(self) -> int:
        return sum(1 for op in self.ops if op.kind == ADD_VERTEX)

    @property
    def edge_count(self) -> int:
        return sum(1 for op in self.ops if op.kind == ADD_EDGE)


def generate(persons: int = 100, seed: int = 42) -> LdbcDataset:
    """Generate an SNB-like graph with ``persons`` Person vertices.

    Derived sizes follow SF1's rough proportions: ~3 posts and ~5
    comments per person, one forum per three persons, a fixed pool of
    places and tags.
    """
    if persons < 2:
        raise ValueError("need at least 2 persons")
    rng = random.Random(seed)
    data = LdbcDataset()
    clock = _Clock()

    cities = [f"place:{i}" for i in range(len(_CITIES))]
    for ext_id, name in zip(cities, _CITIES):
        _vertex(data, clock, ext_id, "Place", {"name": name, "type": "city"})

    tags = [f"tag:{i}" for i in range(40)]
    for index, ext_id in enumerate(tags):
        stem = _TAG_STEMS[index % len(_TAG_STEMS)]
        _vertex(data, clock, ext_id, "Tag", {"name": f"{stem}-{index}"})

    person_ids = [f"person:{i}" for i in range(persons)]
    for index, ext_id in enumerate(person_ids):
        _vertex(
            data,
            clock,
            ext_id,
            "Person",
            {
                "firstName": rng.choice(_FIRST_NAMES),
                "lastName": rng.choice(_LAST_NAMES),
                "gender": rng.choice(["male", "female"]),
                "birthday": 19600101 + rng.randrange(40) * 10000,
                "browserUsed": rng.choice(_BROWSERS),
                "locationIP": f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(256)}",
                "creationDate": clock.now,
            },
        )
        _edge(data, clock, "IS_LOCATED_IN", ext_id, rng.choice(cities))
        for tag in rng.sample(tags, k=rng.randrange(1, 4)):
            _edge(data, clock, "HAS_INTEREST", ext_id, tag)
    data.person_ids = person_ids

    # Friendship: preferential attachment for a power-law-ish degree.
    targets: list[str] = list(person_ids[:2])
    known: set[tuple[str, str]] = set()
    for index in range(2, persons):
        source = person_ids[index]
        degree = min(index, 1 + int(rng.paretovariate(1.6)))
        for _ in range(degree):
            other = rng.choice(targets)
            pair = tuple(sorted((source, other)))
            if other == source or pair in known:
                continue
            known.add(pair)
            _edge(
                data,
                clock,
                "KNOWS",
                source,
                other,
                {"creationDate": clock.now},
            )
            targets.append(other)
        targets.append(source)

    forums = [f"forum:{i}" for i in range(max(1, persons // 3))]
    for index, ext_id in enumerate(forums):
        moderator = rng.choice(person_ids)
        _vertex(
            data,
            clock,
            ext_id,
            "Forum",
            {"title": f"Forum {index}", "creationDate": clock.now},
        )
        _edge(data, clock, "HAS_MODERATOR", ext_id, moderator)
    data.forum_ids = forums

    post_ids = [f"post:{i}" for i in range(persons * 3)]
    for index, ext_id in enumerate(post_ids):
        author = rng.choice(person_ids)
        content = f"post content {index} " + "x" * rng.randrange(10, 80)
        _vertex(
            data,
            clock,
            ext_id,
            "Post",
            {
                "content": content,
                "length": len(content),
                "language": rng.choice(_LANGUAGES),
                "browserUsed": rng.choice(_BROWSERS),
                "creationDate": clock.now,
            },
        )
        _edge(data, clock, "HAS_CREATOR", ext_id, author)
        _edge(data, clock, "CONTAINER_OF", rng.choice(forums), ext_id)
        for tag in rng.sample(tags, k=rng.randrange(0, 3)):
            _edge(data, clock, "HAS_TAG", ext_id, tag)
    data.post_ids = post_ids

    comment_ids = [f"comment:{i}" for i in range(persons * 5)]
    for index, ext_id in enumerate(comment_ids):
        author = rng.choice(person_ids)
        # Replies attach to a post or an *earlier* comment (a tree).
        if index == 0 or rng.random() < 0.6:
            parent = rng.choice(post_ids)
        else:
            parent = comment_ids[rng.randrange(index)]
        content = f"comment {index} " + "y" * rng.randrange(5, 50)
        _vertex(
            data,
            clock,
            ext_id,
            "Comment",
            {
                "content": content,
                "length": len(content),
                "browserUsed": rng.choice(_BROWSERS),
                "creationDate": clock.now,
            },
        )
        _edge(data, clock, "HAS_CREATOR", ext_id, author)
        _edge(data, clock, "REPLY_OF", ext_id, parent)
    data.comment_ids = comment_ids

    for _ in range(persons * 2):  # likes
        person = rng.choice(person_ids)
        message = rng.choice(post_ids + comment_ids)
        _edge(
            data,
            clock,
            "LIKES",
            person,
            message,
            {"creationDate": clock.now},
        )

    data.last_ts = clock.now
    return data


class _Clock:
    """One logical tick per generated object."""

    def __init__(self) -> None:
        self.now = 0

    def tick(self) -> int:
        self.now += 1
        return self.now


def _vertex(data: LdbcDataset, clock: _Clock, ext_id: str, label: str, props: dict) -> None:
    data.ops.append(
        GraphOp(ADD_VERTEX, clock.tick(), ext_id, label=label, properties=props)
    )


def _edge(
    data: LdbcDataset,
    clock: _Clock,
    edge_type: str,
    src: str,
    dst: str,
    props: dict | None = None,
) -> None:
    ext_id = f"e{len(data.edge_ids)}"
    data.edge_ids.append(ext_id)
    data.ops.append(
        GraphOp(
            ADD_EDGE,
            clock.tick(),
            ext_id,
            label=edge_type,
            src=src,
            dst=dst,
            properties=props or {},
        )
    )
