"""Workload generators and query mixes used by the evaluation.

Four datasets mirror the paper's Table 1 at configurable scale:

- :mod:`repro.workloads.ldbc` — an LDBC SNB-like social network
  (persons, forums, posts, comments, tags, places and their edges);
- :mod:`repro.workloads.bildbc` — Bi-LDBC: timestamped graph-operation
  streams over the LDBC graph (updates + inserts + deletes);
- :mod:`repro.workloads.tpcds` — a TPC-DS-like retail graph whose
  customer attributes evolve heavily (the anchor-interval sweep);
- :mod:`repro.workloads.ecommerce` — a RetailRocket-like event stream
  over five months (views / add-to-cart / transactions).

:mod:`repro.workloads.queries` implements the five LDBC interactive
short reads the paper evaluates (IS1, IS3, IS4, IS5, IS7) on top of
the backend protocol, and :mod:`repro.workloads.driver` loads datasets
into backends and measures queries.
"""

from repro.workloads.driver import WorkloadDriver

__all__ = ["WorkloadDriver"]
