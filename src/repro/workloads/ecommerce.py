"""A RetailRocket-like e-commerce event workload.

The paper's real dataset records customer activity on an e-commerce
site over ~5 months (May–September 2015): item views, add-to-cart
events and transactions, plus evolving item properties.  The original
dump is a Kaggle download; this generator produces the synthetic
equivalent — the same event-type mix over a user–item graph, split
into months so Figure 6(c,d)'s "1-month … 5-month" datasets can be
constructed by truncating the stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.interface import (
    ADD_EDGE,
    ADD_VERTEX,
    GraphOp,
    UPDATE_VERTEX,
)

#: Event-type mix of the RetailRocket dump (views dominate; the item
#: properties files are weekly re-dumps, so a large share of "update"
#: operations re-assert unchanged values).
VIEW_SHARE = 0.45
ADDTOCART_SHARE = 0.08
TRANSACTION_SHARE = 0.04
ITEM_UPDATE_SHARE = 0.43

#: Probability that an item-property operation re-asserts the current
#: value (the weekly-dump effect).  Change-only systems store nothing
#: for these; log/model-based systems store them all.  The share rises
#: month over month as the catalog stabilizes — fresh catalogs see real
#: price/category churn, mature ones mostly re-dump unchanged rows —
#: which is what makes stored bytes grow more slowly than operations
#: (the paper's Figure 6(c) observation).
REDUNDANT_UPDATE_BASE = 0.30
REDUNDANT_UPDATE_MONTHLY_RISE = 0.12

_CATEGORIES = ["phones", "laptops", "toys", "garden", "books", "audio"]


@dataclass
class EcommerceDataset:
    ops: list[GraphOp] = field(default_factory=list)
    user_ids: list[str] = field(default_factory=list)
    item_ids: list[str] = field(default_factory=list)
    #: event-time boundary at the end of each month (index 0 = month 1)
    month_boundaries: list[int] = field(default_factory=list)
    load_ts: int = 0
    last_ts: int = 0

    def ops_for_months(self, months: int) -> list[GraphOp]:
        """The load + the first ``months`` months of events."""
        if not 1 <= months <= len(self.month_boundaries):
            raise ValueError(f"months must be in 1..{len(self.month_boundaries)}")
        boundary = self.month_boundaries[months - 1]
        return [op for op in self.ops if op.ts <= boundary]


def generate(
    users: int = 100,
    items: int = 80,
    events_per_month: int = 500,
    months: int = 5,
    seed: int = 23,
) -> EcommerceDataset:
    """Users + items, then ``months`` months of timestamped events."""
    rng = random.Random(seed)
    data = EcommerceDataset()
    ts = 0

    data.user_ids = [f"user:{i}" for i in range(users)]
    for index, ext_id in enumerate(data.user_ids):
        ts += 1
        data.ops.append(
            GraphOp(
                ADD_VERTEX,
                ts,
                ext_id,
                label="User",
                properties={
                    "visitorId": index,
                    "cookie": f"{rng.getrandbits(64):016x}",
                    "firstSeen": ts,
                },
            )
        )
    data.item_ids = [f"item:{i}" for i in range(items)]
    for index, ext_id in enumerate(data.item_ids):
        ts += 1
        # RetailRocket items carry dozens of (hashed) properties; a
        # rich static property map per item reproduces that ratio of
        # bulk catalog data to per-event data.
        properties = {
            "itemId": index,
            "categoryid": rng.choice(_CATEGORIES),
            "price": rng.randrange(5, 2000),
            "available": True,
        }
        for prop_index in range(12):
            properties[f"p{prop_index}"] = (
                f"{rng.getrandbits(48):012x}_{rng.randrange(10 ** 6)}"
            )
        data.ops.append(
            GraphOp(ADD_VERTEX, ts, ext_id, label="Item", properties=properties)
        )
    data.load_ts = ts

    # Track current item properties so weekly re-dumps can re-assert
    # unchanged values, like the real item_properties files do.
    item_state: dict[str, dict] = {}
    for op in data.ops:
        if op.kind == ADD_VERTEX and op.label == "Item":
            item_state[op.ext_id] = dict(op.properties)

    event_seq = 0
    for month in range(months):
        redundant_share = min(
            0.9, REDUNDANT_UPDATE_BASE + REDUNDANT_UPDATE_MONTHLY_RISE * month
        )
        for _ in range(events_per_month):
            ts += 1
            roll = rng.random()
            if roll < ITEM_UPDATE_SHARE:
                item = rng.choice(data.item_ids)
                prop = rng.choice(["price", "available", "categoryid"])
                if rng.random() < redundant_share:
                    value = item_state[item][prop]  # weekly re-dump
                elif prop == "price":
                    value = rng.randrange(5, 2000)
                elif prop == "available":
                    value = rng.random() < 0.8
                else:
                    value = rng.choice(_CATEGORIES)
                item_state[item][prop] = value
                data.ops.append(
                    GraphOp(UPDATE_VERTEX, ts, item, prop=prop, value=value)
                )
                continue
            if roll < ITEM_UPDATE_SHARE + VIEW_SHARE:
                event_type = "VIEWED"
            elif roll < ITEM_UPDATE_SHARE + VIEW_SHARE + ADDTOCART_SHARE:
                event_type = "ADDED_TO_CART"
            else:
                event_type = "BOUGHT"
            data.ops.append(
                GraphOp(
                    ADD_EDGE,
                    ts,
                    f"event:{event_seq}",
                    label=event_type,
                    src=rng.choice(data.user_ids),
                    dst=rng.choice(data.item_ids),
                    properties={"ts": ts},
                )
            )
            event_seq += 1
        data.month_boundaries.append(ts)
    data.last_ts = ts
    return data
