"""A TPC-DS-like retail evolution workload.

The paper uses TPC-DS's six years of data evolution (customers,
stores, items, transactions) mainly for the anchor-interval sweep of
Figure 6(a), noting "the customer information varies a lot and thus
enables us to find the golden state".  This generator reproduces that
property: a small retail graph whose customer attributes are updated
heavily and *unevenly* (a zipf-ish concentration), building the deep
per-object version chains anchors exist for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.interface import (
    ADD_EDGE,
    ADD_VERTEX,
    GraphOp,
    UPDATE_VERTEX,
)

_CITIES = ["Springfield", "Shelbyville", "Ogden", "Salem", "Fairview"]
_CATEGORIES = ["grocery", "electronics", "apparel", "home", "sports"]


@dataclass
class TpcdsDataset:
    ops: list[GraphOp] = field(default_factory=list)
    customer_ids: list[str] = field(default_factory=list)
    store_ids: list[str] = field(default_factory=list)
    item_ids: list[str] = field(default_factory=list)
    first_update_ts: int = 0
    last_ts: int = 0


def generate(
    customers: int = 50,
    stores: int = 5,
    items: int = 100,
    updates: int = 2000,
    seed: int = 11,
) -> TpcdsDataset:
    """Initial retail graph + a heavy attribute-update stream.

    Updates concentrate on a few hot customers (rank-weighted), so
    some objects accumulate hundreds of versions — the regime where
    the anchor interval ``u`` matters.
    """
    rng = random.Random(seed)
    data = TpcdsDataset()
    ts = 0

    data.store_ids = [f"store:{i}" for i in range(stores)]
    for index, ext_id in enumerate(data.store_ids):
        ts += 1
        data.ops.append(
            GraphOp(
                ADD_VERTEX,
                ts,
                ext_id,
                label="Store",
                properties={
                    "name": f"Store {index}",
                    "city": rng.choice(_CITIES),
                    "floorSpace": rng.randrange(1000, 9000),
                },
            )
        )

    data.item_ids = [f"item:{i}" for i in range(items)]
    for index, ext_id in enumerate(data.item_ids):
        ts += 1
        data.ops.append(
            GraphOp(
                ADD_VERTEX,
                ts,
                ext_id,
                label="Item",
                properties={
                    "name": f"Item {index}",
                    "category": rng.choice(_CATEGORIES),
                    "price": rng.randrange(1, 500),
                },
            )
        )

    data.customer_ids = [f"customer:{i}" for i in range(customers)]
    for index, ext_id in enumerate(data.customer_ids):
        ts += 1
        data.ops.append(
            GraphOp(
                ADD_VERTEX,
                ts,
                ext_id,
                label="Customer",
                properties={
                    "name": f"Customer {index}",
                    "city": rng.choice(_CITIES),
                    "balance": rng.randrange(0, 10_000),
                    "preferredStore": rng.choice(data.store_ids),
                    "creditRating": rng.choice(["low", "good", "high"]),
                },
            )
        )

    edge_seq = 0
    for customer in data.customer_ids:
        for _ in range(rng.randrange(1, 4)):
            ts += 1
            data.ops.append(
                GraphOp(
                    ADD_EDGE,
                    ts,
                    f"sale:{edge_seq}",
                    label="PURCHASED",
                    src=customer,
                    dst=rng.choice(data.item_ids),
                    properties={"quantity": rng.randrange(1, 5), "ts": ts},
                )
            )
            edge_seq += 1

    data.first_update_ts = ts + 1
    # Rank-weighted hot set: customer i drawn with weight 1/(i+1).
    weights = [1.0 / (i + 1) for i in range(customers)]
    for _ in range(updates):
        ts += 1
        customer = rng.choices(data.customer_ids, weights=weights, k=1)[0]
        prop = rng.choice(["balance", "city", "creditRating"])
        if prop == "balance":
            value = rng.randrange(0, 10_000)
        elif prop == "city":
            value = rng.choice(_CITIES)
        else:
            value = rng.choice(["low", "good", "high"])
        data.ops.append(GraphOp(UPDATE_VERTEX, ts, customer, prop=prop, value=value))
    data.last_ts = ts
    return data
