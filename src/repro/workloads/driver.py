"""Loads workloads into backends and measures temporal queries.

The driver is the glue every benchmark uses: apply an operation stream
to any :class:`~repro.baselines.interface.TemporalBackend`, pick query
instants "uniformly chosen within the time span of the datasets" (the
paper's methodology, avoiding bias toward instants near snapshots),
run IS/Q1/Q2 queries, and collect latency + storage numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.baselines.interface import GraphOp, TemporalBackend
from repro.core.stats import LatencyRecorder
from repro.workloads import queries as q


@dataclass
class MeasuredRun:
    """Latencies and result sizes of one query batch."""

    query: str
    backend: str
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    result_rows: int = 0

    @property
    def mean_us(self) -> float:
        return self.latency.mean_us


class WorkloadDriver:
    """Applies streams and runs measured query batches."""

    def __init__(self, backend: TemporalBackend, seed: int = 1234) -> None:
        self.backend = backend
        self.rng = random.Random(seed)
        self.ops_applied = 0
        self.first_event_ts: Optional[int] = None
        self.last_event_ts = 0

    # -- loading -----------------------------------------------------------

    def apply(self, ops: Sequence[GraphOp]) -> int:
        """Apply an operation stream, tracking the event-time span."""
        for op in ops:
            self.backend.apply(op)
            if self.first_event_ts is None:
                self.first_event_ts = op.ts
            self.last_event_ts = max(self.last_event_ts, op.ts)
            self.ops_applied += 1
        return self.ops_applied

    def finish_load(self) -> None:
        """Flush deferred work (GC/migration, pending snapshots)."""
        self.backend.flush()

    # -- query-time selection ------------------------------------------------

    def uniform_instant(self) -> int:
        """An event-time instant uniform over the loaded span."""
        low = self.first_event_ts if self.first_event_ts is not None else 0
        return self.rng.randint(low, max(low, self.last_event_ts))

    def uniform_slice(self, width_fraction: float = 0.1) -> tuple[int, int]:
        """A random slice covering ``width_fraction`` of the span."""
        low = self.first_event_ts if self.first_event_ts is not None else 0
        span = max(1, self.last_event_ts - low)
        width = max(1, int(span * width_fraction))
        start = self.rng.randint(low, max(low, self.last_event_ts - width))
        return start, start + width

    # -- measured batches ------------------------------------------------------

    def run_is_queries(
        self,
        name: str,
        targets: Sequence[str],
        repetitions: int,
        time_slice: bool = False,
        slice_width: float = 0.1,
    ) -> MeasuredRun:
        """Run one IS query ``repetitions`` times at random instants."""
        run = MeasuredRun(query=name, backend=self.backend.name)
        for _ in range(repetitions):
            target = self.rng.choice(targets)
            if time_slice:
                e1, e2 = self.uniform_slice(slice_width)
                t1 = self.backend.to_query_time(e1)
                t2 = self.backend.to_query_time(e2)
                if t2 < t1:
                    t1, t2 = t2, t1
                with run.latency.measure():
                    result = q.run_query(name, self.backend, target, t1, t2)
            else:
                t = self.backend.to_query_time(self.uniform_instant())
                with run.latency.measure():
                    result = q.run_query(name, self.backend, target, t)
            run.result_rows += len(result)
        return run

    def run_vertex_lookups(
        self,
        targets: Sequence[str],
        repetitions: int,
        time_slice: bool = False,
        slice_width: float = 0.1,
    ) -> MeasuredRun:
        """The E-commerce Q1: retrieve a vertex by key at/over a time."""
        run = MeasuredRun(query="Q1", backend=self.backend.name)
        for _ in range(repetitions):
            target = self.rng.choice(targets)
            if time_slice:
                e1, e2 = self.uniform_slice(slice_width)
                t1 = self.backend.to_query_time(e1)
                t2 = self.backend.to_query_time(e2)
                with run.latency.measure():
                    states = self.backend.vertex_between(target, t1, t2)
                run.result_rows += len(states)
            else:
                t = self.backend.to_query_time(self.uniform_instant())
                with run.latency.measure():
                    state = self.backend.vertex_at(target, t)
                run.result_rows += 1 if state is not None else 0
        return run

    def run_pattern_lookups(
        self,
        targets: Sequence[str],
        repetitions: int,
        time_slice: bool = False,
        slice_width: float = 0.1,
        direction: str = "out",
    ) -> MeasuredRun:
        """The E-commerce Q2: neighbours of a vertex at/over a time."""
        run = MeasuredRun(query="Q2", backend=self.backend.name)
        for _ in range(repetitions):
            target = self.rng.choice(targets)
            if time_slice:
                e1, e2 = self.uniform_slice(slice_width)
                t1 = self.backend.to_query_time(e1)
                t2 = self.backend.to_query_time(e2)
                with run.latency.measure():
                    hits = self.backend.neighbors_between(
                        target, t1, t2, direction
                    )
            else:
                t = self.backend.to_query_time(self.uniform_instant())
                with run.latency.measure():
                    hits = self.backend.neighbors_at(target, t, direction)
            run.result_rows += len(hits)
        return run
