"""Abstract syntax tree of the query language.

Plain dataclasses; the parser builds them, the translator rewrites
valid-time predicates, the planner lowers them to physical operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


# -- expressions -------------------------------------------------------------


class Expression:
    """Marker base class for expression nodes."""


@dataclass(frozen=True)
class Literal(Expression):
    value: Any


@dataclass(frozen=True)
class Parameter(Expression):
    name: str


@dataclass(frozen=True)
class Variable(Expression):
    name: str


@dataclass(frozen=True)
class PropertyAccess(Expression):
    variable: str
    name: str


@dataclass(frozen=True)
class Comparison(Expression):
    op: str  # '=', '<>', '<', '<=', '>', '>='
    left: Expression
    right: Expression


@dataclass(frozen=True)
class Arithmetic(Expression):
    op: str  # '+', '-', '*', '/', '%'
    left: Expression
    right: Expression


@dataclass(frozen=True)
class BooleanOp(Expression):
    op: str  # 'AND', 'OR'
    left: Expression
    right: Expression


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class InList(Expression):
    needle: Expression
    haystack: tuple[Expression, ...]


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: str  # lower-cased
    args: tuple[Expression, ...]
    star: bool = False  # count(*)


@dataclass(frozen=True)
class PeriodLiteral(Expression):
    """``PERIOD(start, end)`` — a valid-time interval expression."""

    start: Expression
    end: Expression


@dataclass(frozen=True)
class VTPredicate(Expression):
    """``<var>.VT <ALLEN-OP> <point-or-period>`` before translation."""

    variable: str
    op: str  # 'CONTAINS', 'OVERLAPS', 'BEFORE', ... (upper-case)
    argument: Expression  # a point expression or PeriodLiteral


# -- patterns -------------------------------------------------------------------


@dataclass(frozen=True)
class NodePattern:
    variable: Optional[str]
    labels: tuple[str, ...] = ()
    properties: tuple[tuple[str, Expression], ...] = ()


@dataclass(frozen=True)
class RelPattern:
    variable: Optional[str]
    types: tuple[str, ...] = ()
    properties: tuple[tuple[str, Expression], ...] = ()
    direction: str = "out"  # 'out', 'in', 'both'
    #: variable-length bounds; (None, None) = plain single hop
    min_hops: Optional[int] = None
    max_hops: Optional[int] = None

    @property
    def is_variable_length(self) -> bool:
        return self.min_hops is not None


@dataclass(frozen=True)
class PathPattern:
    """Alternating nodes and relationships: n0 r0 n1 r1 n2 ..."""

    nodes: tuple[NodePattern, ...]
    rels: tuple[RelPattern, ...]


# -- clauses -------------------------------------------------------------------


@dataclass(frozen=True)
class MatchClause:
    patterns: tuple[PathPattern, ...]
    optional: bool = False


@dataclass(frozen=True)
class WhereClause:
    predicate: Expression


@dataclass(frozen=True)
class TTClause:
    """``TT SNAPSHOT e`` or ``TT BETWEEN e1 AND e2``."""

    kind: str  # 'snapshot' | 'between'
    t1: Expression
    t2: Optional[Expression] = None


@dataclass(frozen=True)
class CreateNode:
    pattern: NodePattern
    valid_time: Optional[PeriodLiteral] = None


@dataclass(frozen=True)
class CreateEdge:
    from_var: str
    to_var: str
    rel: RelPattern
    valid_time: Optional[PeriodLiteral] = None


@dataclass(frozen=True)
class CreateClause:
    items: tuple[Any, ...]  # CreateNode | CreateEdge


@dataclass(frozen=True)
class SetItem:
    target: PropertyAccess
    value: Expression


@dataclass(frozen=True)
class SetClause:
    items: tuple[SetItem, ...]


@dataclass(frozen=True)
class DeleteClause:
    variables: tuple[str, ...]
    detach: bool = False


@dataclass(frozen=True)
class ReturnItem:
    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class ReturnClause:
    items: tuple[ReturnItem, ...]
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    skip: Optional[Expression] = None
    limit: Optional[Expression] = None


@dataclass(frozen=True)
class WithClause:
    """``WITH items [WHERE predicate]`` — a pipeline stage boundary.

    Projects (and possibly aggregates/orders/limits) the frames, then
    the following stage continues with only the projected names bound.
    """

    items: tuple[ReturnItem, ...]
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    skip: Optional[Expression] = None
    limit: Optional[Expression] = None
    where: Optional[Expression] = None


@dataclass(frozen=True)
class UnwindClause:
    """``UNWIND expr AS name`` — one frame per list element."""

    expression: Expression
    alias: str


@dataclass(frozen=True)
class Stage:
    """One pipeline segment: reads, writes, and an optional WITH.

    ``reading`` holds the MATCH/UNWIND clauses in source order (their
    interleaving matters: ``MATCH … UNWIND n.xs AS x`` needs ``n``
    bound first); ``matches`` is the filtered convenience view.
    """

    reading: tuple[Any, ...] = ()  # MatchClause | UnwindClause, ordered
    where: Optional[WhereClause] = None
    creates: tuple[CreateClause, ...] = ()
    sets: tuple[SetClause, ...] = ()
    deletes: tuple[DeleteClause, ...] = ()
    with_clause: Optional[WithClause] = None

    @property
    def matches(self) -> tuple["MatchClause", ...]:
        return tuple(c for c in self.reading if isinstance(c, MatchClause))

    @property
    def unwinds(self) -> tuple["UnwindClause", ...]:
        return tuple(c for c in self.reading if isinstance(c, UnwindClause))

    @property
    def is_write(self) -> bool:
        return bool(self.creates or self.sets or self.deletes)


@dataclass(frozen=True)
class Query:
    """One full statement: WITH-separated stages plus a final RETURN."""

    stages: tuple[Stage, ...] = ()
    tt: Optional[TTClause] = None
    returns: Optional[ReturnClause] = None

    @property
    def is_write(self) -> bool:
        return any(stage.is_write for stage in self.stages)

    # Convenience accessors for the single-stage common case (used by
    # tests and the translator).
    @property
    def matches(self) -> tuple[MatchClause, ...]:
        return self.stages[0].matches if self.stages else ()

    @property
    def where(self) -> Optional[WhereClause]:
        return self.stages[0].where if self.stages else None

    @property
    def creates(self) -> tuple[CreateClause, ...]:
        return self.stages[0].creates if self.stages else ()

    @property
    def sets(self) -> tuple[SetClause, ...]:
        return self.stages[0].sets if self.stages else ()

    @property
    def deletes(self) -> tuple[DeleteClause, ...]:
        return self.stages[0].deletes if self.stages else ()
