"""Valid-time predicate translation (paper section 6, "Parser").

AeonG "translates valid-time operators into equivalent non-temporal
operators" inside the parser visitor; transaction-time operators pass
through to the temporal execution engine.  This module is that
translator: every :class:`~repro.query.ast.VTPredicate` is rewritten
into comparisons over the reserved valid-time properties, so the rest
of the pipeline never sees valid time as anything special.

The interval endpoints are accessed through the builtin functions
``vt_start(x)`` / ``vt_end(x)`` (the latter defaults to ∞ when the
object has an open valid time), and a point argument ``p`` is treated
as the unit period ``[p, p+1)`` — exact under integer timestamps.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import PlanningError
from repro.query import ast


def translate_query(query: ast.Query) -> ast.Query:
    """Rewrite every VT predicate in every WHERE (stage and WITH)."""
    new_stages = []
    changed = False
    for stage in query.stages:
        new_stage = stage
        if stage.where is not None:
            rewritten = _rewrite(stage.where.predicate)
            if rewritten is not stage.where.predicate:
                new_stage = replace(new_stage, where=ast.WhereClause(rewritten))
        if stage.with_clause is not None and stage.with_clause.where is not None:
            rewritten = _rewrite(stage.with_clause.where)
            if rewritten is not stage.with_clause.where:
                new_stage = replace(
                    new_stage,
                    with_clause=replace(stage.with_clause, where=rewritten),
                )
        if new_stage is not stage:
            changed = True
        new_stages.append(new_stage)
    if not changed:
        return query
    return replace(query, stages=tuple(new_stages))


def _rewrite(expr: ast.Expression) -> ast.Expression:
    if isinstance(expr, ast.VTPredicate):
        return translate_vt_predicate(expr)
    if isinstance(expr, ast.BooleanOp):
        left = _rewrite(expr.left)
        right = _rewrite(expr.right)
        if left is expr.left and right is expr.right:
            return expr
        return ast.BooleanOp(expr.op, left, right)
    if isinstance(expr, ast.Not):
        operand = _rewrite(expr.operand)
        return expr if operand is expr.operand else ast.Not(operand)
    return expr


def translate_vt_predicate(pred: ast.VTPredicate) -> ast.Expression:
    """Rewrite one ``x.VT <OP> <arg>`` into property comparisons."""
    start = ast.FunctionCall("vt_start", (ast.Variable(pred.variable),))
    end = ast.FunctionCall("vt_end", (ast.Variable(pred.variable),))
    if isinstance(pred.argument, ast.PeriodLiteral):
        a, b = pred.argument.start, pred.argument.end
    else:
        a = pred.argument
        b = ast.Arithmetic("+", pred.argument, ast.Literal(1))
    return _allen_to_comparisons(pred.op, start, end, a, b)


def _allen_to_comparisons(op, start, end, a, b) -> ast.Expression:
    cmp = ast.Comparison
    both = lambda x, y: ast.BooleanOp("AND", x, y)  # noqa: E731
    if op == "CONTAINS":  # SQL:2011 lax containment
        return both(cmp("<=", start, a), cmp("<=", b, end))
    if op == "OVERLAPS":  # SQL:2011 lax overlap (shares an instant)
        return both(cmp("<", start, b), cmp("<", a, end))
    if op == "BEFORE":
        return cmp("<", end, a)
    if op == "AFTER":
        return cmp(">", start, b)
    if op == "MEETS":
        return cmp("=", end, a)
    if op == "MET_BY":
        return cmp("=", start, b)
    if op == "STARTS":
        return both(cmp("=", start, a), cmp("<", end, b))
    if op == "STARTED_BY":
        return both(cmp("=", start, a), cmp(">", end, b))
    if op == "DURING":
        return both(cmp(">", start, a), cmp("<", end, b))
    if op == "FINISHES":
        return both(cmp("=", end, b), cmp(">", start, a))
    if op == "FINISHED_BY":
        return both(cmp("=", end, b), cmp("<", start, a))
    if op == "EQUALS":
        return both(cmp("=", start, a), cmp("=", end, b))
    if op == "OVERLAPPED_BY":  # mirror of lax OVERLAPS
        return both(cmp("<", a, end), cmp("<", start, b))
    raise PlanningError(f"unknown Allen operator {op!r}")
