"""Statement execution: plan, stream frames, project results.

The executor returns plain Python rows (``list[dict]``); vertex and
edge versions are rendered into dictionaries carrying their gid,
labels/type, properties, and transaction-time interval, so callers
never hold live storage objects.
"""

from __future__ import annotations

import re
from typing import Any, Iterator, Optional

from repro.core.temporal import TemporalCondition
from repro.errors import ExecutionError, PlanningError
from repro.graph.views import EdgeView, VertexView
from repro.query import ast
from repro.query.operators import ExecutionContext, Frame, evaluate
from repro.query.parser import parse
from repro.query.planner import Plan, plan_query

_AGGREGATES = {"count", "sum", "min", "max", "avg", "collect"}

# A leading EXPLAIN / PROFILE keyword routes to the profiler; the rest
# of the text is the statement it applies to.
_PROFILE_PREFIX = re.compile(r"^\s*(EXPLAIN|PROFILE)\b", re.IGNORECASE)


def statement_prefix(text: str) -> Optional[str]:
    """``"EXPLAIN"`` / ``"PROFILE"`` if ``text`` carries that prefix."""
    match = _PROFILE_PREFIX.match(text or "")
    return match.group(1).upper() if match else None


def execute_query(
    engine,
    txn,
    text: str,
    parameters: Optional[dict[str, Any]] = None,
) -> list[dict[str, Any]]:
    """Parse, plan and run one statement inside ``txn``.

    ``EXPLAIN <stmt>`` returns the operator tree as ``{"plan": line}``
    rows without executing anything; ``PROFILE <stmt>`` executes with
    per-operator instrumentation and returns the profile table (see
    ``repro.query.profiler``).

    Statement boundaries scope the engine's degraded-read flag: the
    flag is cleared here, and set again only if this statement's
    temporal reads fall back to current-only results while the
    history-store breaker is open — so ``engine.last_read_degraded``
    answers the question for the statement that just ran.  They also
    bound the slow-query log and the ``statement.seconds`` histogram
    (see ``repro.observability``).
    """
    prefixed = _PROFILE_PREFIX.match(text)
    if prefixed is not None:
        from repro.query.profiler import execute_profiled, explain_tree

        statement = text[prefixed.end():]
        if not statement.strip():
            raise ExecutionError(
                f"{prefixed.group(1).upper()} requires a statement"
            )
        if prefixed.group(1).upper() == "EXPLAIN":
            return [{"plan": line} for line in explain_tree(engine, statement)]
        profile = execute_profiled(engine, txn, statement, parameters)
        engine.observability.record_statement(
            text, profile.duration, len(profile.rows)
        )
        return profile.table()
    controller = getattr(engine, "resilience", None)
    if controller is not None:
        controller.clear_degraded_flag()
    obs = engine.observability
    started = obs.clock() if obs.enabled else 0.0
    with obs.tracer.span("query.statement"):
        query = parse(text)
        plan = plan_query(query, engine)
        cond = _temporal_condition(engine, plan, parameters)
        ctx = ExecutionContext(engine, txn, parameters, cond)
        frames: Iterator[Frame] = iter([{}])
        for op in plan.ops:
            frames = op.execute(ctx, frames)
        if plan.returns is None:
            for _ in frames:  # drain so writes actually run
                pass
            rows: list[dict[str, Any]] = []
        else:
            rows = _project(ctx, plan.returns, frames)
    if obs.enabled:
        obs.record_statement(text, obs.clock() - started, len(rows))
    return rows


def _temporal_condition(engine, plan: Plan, parameters) -> Optional[TemporalCondition]:
    if plan.tt is None:
        return None
    if not engine.temporal:
        raise ExecutionError(
            "temporal qualifiers require an engine with temporal=True"
        )
    ctx = ExecutionContext(engine, None, parameters, None)
    t1 = evaluate(plan.tt.t1, ctx, {})
    if not isinstance(t1, int):
        raise ExecutionError("TT bounds must evaluate to integer timestamps")
    if plan.tt.kind == "snapshot":
        return TemporalCondition.as_of(t1)
    t2 = evaluate(plan.tt.t2, ctx, {})
    if not isinstance(t2, int):
        raise ExecutionError("TT bounds must evaluate to integer timestamps")
    return TemporalCondition.between(t1, t2)


# -- projection ----------------------------------------------------------------


def _project(ctx, returns: ast.ReturnClause, frames) -> list[dict[str, Any]]:
    names = [_item_name(item, pos) for pos, item in enumerate(returns.items)]
    if len(set(names)) != len(names):
        raise PlanningError("duplicate column names in RETURN")
    if any(_has_aggregate(item.expression) for item in returns.items):
        rows = _aggregate_rows(ctx, returns, names, frames)
    else:
        rows = [
            {
                name: _render(evaluate(item.expression, ctx, frame))
                for name, item in zip(names, returns.items)
            }
            for frame in frames
        ]
    if returns.distinct:
        rows = _distinct(rows)
    if returns.order_by:
        rows = _order(ctx, returns.order_by, names, rows)
    if returns.skip is not None:
        rows = rows[_non_negative(ctx, returns.skip, "SKIP"):]
    if returns.limit is not None:
        rows = rows[: _non_negative(ctx, returns.limit, "LIMIT")]
    return rows


def _item_name(item: ast.ReturnItem, position: int) -> str:
    if item.alias is not None:
        return item.alias
    expr = item.expression
    if isinstance(expr, ast.Variable):
        return expr.name
    if isinstance(expr, ast.PropertyAccess):
        return f"{expr.variable}.{expr.name}"
    if isinstance(expr, ast.FunctionCall):
        inner = "*" if expr.star else ", ".join(
            _item_name(ast.ReturnItem(arg), 0) for arg in expr.args
        )
        return f"{expr.name}({inner})"
    return f"column{position}"


def _has_aggregate(expr: ast.Expression) -> bool:
    return isinstance(expr, ast.FunctionCall) and expr.name in _AGGREGATES


def _aggregate_rows(ctx, returns, names, frames) -> list[dict[str, Any]]:
    """Implicit grouping: non-aggregate items are the group key."""
    group_items = [
        (name, item)
        for name, item in zip(names, returns.items)
        if not _has_aggregate(item.expression)
    ]
    agg_items = [
        (name, item)
        for name, item in zip(names, returns.items)
        if _has_aggregate(item.expression)
    ]
    groups: dict[tuple, dict[str, Any]] = {}
    members: dict[tuple, list[Frame]] = {}
    for frame in frames:
        key_values = {
            name: _render(evaluate(item.expression, ctx, frame))
            for name, item in group_items
        }
        key = tuple(_hashable(key_values[name]) for name, _ in group_items)
        if key not in groups:
            groups[key] = key_values
            members[key] = []
        members[key].append(frame)
    rows = []
    for key, key_values in groups.items():
        row = dict(key_values)
        for name, item in agg_items:
            row[name] = _compute_aggregate(ctx, item.expression, members[key])
        rows.append(row)
    if not rows and not group_items:
        # Aggregates over an empty stream still produce one row.
        empty = {
            name: _compute_aggregate(ctx, item.expression, [])
            for name, item in agg_items
        }
        rows.append(empty)
    return rows


def _compute_aggregate(ctx, expr: ast.FunctionCall, frames: list[Frame]) -> Any:
    if expr.name == "count" and expr.star:
        return len(frames)
    if not expr.args:
        raise ExecutionError(f"{expr.name}() needs an argument")
    values = [
        value
        for frame in frames
        if (value := evaluate(expr.args[0], ctx, frame)) is not None
    ]
    if expr.name == "count":
        return len(values)
    if expr.name == "collect":
        return [_render(v) for v in values]
    if not values:
        return None
    if expr.name == "sum":
        return sum(values)
    if expr.name == "min":
        return min(values)
    if expr.name == "max":
        return max(values)
    if expr.name == "avg":
        return sum(values) / len(values)
    raise ExecutionError(f"unknown aggregate {expr.name}()")


def _distinct(rows: list[dict]) -> list[dict]:
    seen = set()
    result = []
    for row in rows:
        key = tuple(_hashable(row[name]) for name in row)
        if key not in seen:
            seen.add(key)
            result.append(row)
    return result


def _order(ctx, order_by, names, rows) -> list[dict]:
    # Stable multi-pass sort: apply items right-to-left; None sorts
    # last within each pass, like Cypher.
    result = list(rows)
    for item in reversed(order_by):
        result.sort(
            key=lambda row: (
                _order_value(ctx, item.expression, names, row) is None,
                _comparable(_order_value(ctx, item.expression, names, row)),
            ),
            reverse=item.descending,
        )
    return result


def _order_value(ctx, expr, names, row):
    if isinstance(expr, ast.Variable) and expr.name in names:
        return row[expr.name]
    if isinstance(expr, ast.PropertyAccess):
        column = f"{expr.variable}.{expr.name}"
        if column in names:
            return row[column]
        entity = row.get(expr.variable)
        if isinstance(entity, dict):
            return entity.get("properties", {}).get(expr.name)
    raise ExecutionError(
        "ORDER BY must reference a returned column or its alias"
    )


def _comparable(value):
    if value is None:
        return ""
    if isinstance(value, bool):
        return int(value)
    return value


def _non_negative(ctx, expr, what: str) -> int:
    value = evaluate(expr, ctx, {})
    if not isinstance(value, int) or value < 0:
        raise ExecutionError(f"{what} must be a non-negative integer")
    return value


# -- rendering -------------------------------------------------------------------


def _render(value: Any) -> Any:
    if isinstance(value, VertexView):
        return {
            "id": value.gid,
            "labels": sorted(value.labels),
            "properties": dict(value.properties),
            "tt": [value.tt_start, value.tt_end],
        }
    if isinstance(value, EdgeView):
        return {
            "id": value.gid,
            "type": value.edge_type,
            "from": value.from_gid,
            "to": value.to_gid,
            "properties": dict(value.properties),
            "tt": [value.tt_start, value.tt_end],
        }
    if isinstance(value, list):
        return [_render(item) for item in value]
    return value


def _hashable(value: Any):
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_hashable(item) for item in value)
    return value
