"""EXPLAIN / PROFILE: render plans, attribute cost per operator.

``EXPLAIN <query>`` renders the planner's operator tree without
executing anything.  ``PROFILE <query>`` executes the statement with
every physical operator wrapped in a
:class:`~repro.query.operators.ProfiledOperator`, which times each
pull and brackets it with a storage-counter snapshot — current-store
vs reclaimed-version hits, KV seeks and range scans, reconstruction
cache hits/misses, deltas replayed.  Because the plan is a linear
chain (each operator pulls exactly its predecessor), a wrapped
operator's accumulated time and counters are cumulative over its
subtree; subtracting the adjacent child's cumulative yields exact
*self* attribution with no double counting, and the profile totals
reconcile with the ``metrics()`` deltas for the same statement by
construction (both read the same counters).

Output format, worked examples, and the mapping from operator rows to
the paper's Algorithms 2–3 are documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.query import ast
from repro.query.executor import _item_name, _project, _temporal_condition
from repro.query.operators import ExecutionContext, ProfiledOperator
from repro.query.parser import parse
from repro.query.planner import Plan, plan_query

#: the storage counters PROFILE snapshots around every operator pull,
#: and the ``metrics()`` field each one mirrors (section.field)
PROFILE_COUNTERS = (
    ("current_hits", "operators.current_hits"),
    ("reclaimed_hits", "read_path.versions_served"),
    ("history_fetches", "read_path.fetches"),
    ("cache_hits", "read_path.cache_hits"),
    ("cache_misses", "read_path.cache_misses"),
    ("anchor_seeks", "read_path.anchor_seeks"),
    ("deltas_replayed", "read_path.deltas_replayed"),
    ("kv_seeks", "history_kv.seeks"),
    ("kv_range_scans", "history_kv.range_scans"),
    ("kv_gets", "history_kv.gets"),
)

COUNTER_LABELS = tuple(label for label, _ in PROFILE_COUNTERS)


def _counter_getters(engine) -> list[Callable[[], int]]:
    """Zero-argument readers for each counter, in PROFILE_COUNTERS order."""
    op_stats = engine.operators.stats
    read = engine.history.read_metrics
    kv = engine.history.kv.stats
    return [
        lambda: op_stats.current_hits,
        lambda: read.versions_served,
        lambda: read.fetches,
        lambda: read.cache_hits,
        lambda: read.cache_misses,
        lambda: read.anchor_seeks,
        lambda: read.deltas_replayed,
        lambda: kv.seeks,
        lambda: kv.range_scans,
        lambda: kv.gets,
    ]


# -- plan rendering (EXPLAIN) -------------------------------------------------


def _root_describe(plan: Plan) -> str:
    """The plan tree's root: the projection, or EmptyResult for writes."""
    returns = plan.returns
    if returns is None:
        return "EmptyResult"
    names = ", ".join(
        _item_name(item, pos) for pos, item in enumerate(returns.items)
    )
    modifiers = []
    if returns.distinct:
        modifiers.append("DISTINCT")
    if returns.order_by:
        modifiers.append("ORDER BY")
    if returns.skip is not None:
        modifiers.append("SKIP")
    if returns.limit is not None:
        modifiers.append("LIMIT")
    suffix = f" [{', '.join(modifiers)}]" if modifiers else ""
    return f"Produce({names}){suffix}"


def _temporal_describe(tt: ast.TTClause) -> str:
    kind = "SNAPSHOT" if tt.kind == "snapshot" else "BETWEEN"
    return f"Temporal(TT {kind})"


def plan_nodes(plan: Plan) -> list[str]:
    """Tree nodes root-first: projection, optional temporal qualifier,
    then the operator chain from its last operator down to ``Once``."""
    nodes = [_root_describe(plan)]
    if plan.tt is not None:
        nodes.append(_temporal_describe(plan.tt))
    nodes.extend(op.describe() for op in reversed(plan.ops))
    return nodes


def _nest(nodes: list[str]) -> list[str]:
    """Render a root-first node list as an indented tree."""
    lines = [nodes[0]]
    for depth, description in enumerate(nodes[1:]):
        lines.append("   " * depth + "└─ " + description)
    return lines


def explain_tree(engine, text: str) -> list[str]:
    """The operator tree for one statement, without executing it.

    Plans against the current schema (indexes change scan choices) —
    the side-effect-free half of the profiler.
    """
    plan = plan_query(parse(text), engine)
    return _nest(plan_nodes(plan))


# -- profiled execution (PROFILE) ---------------------------------------------


class OperatorProfile:
    """One operator's *self-attributed* share of a profiled run."""

    __slots__ = ("name", "rows", "time", "counters")

    def __init__(self, name: str, rows: int, time: float, counters: dict):
        self.name = name
        self.rows = rows
        self.time = time
        self.counters = counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<op {self.name} rows={self.rows} {self.time * 1e3:.3f}ms>"


class ProfileResult:
    """Everything ``PROFILE`` measured for one statement.

    ``operators`` is root-first (projection down to ``Once``), each
    carrying self-attributed rows/time/counters; ``totals`` are the
    statement-wide counter deltas and equal the per-operator sums (and
    the ``metrics()`` deltas) exactly.  ``rows`` is the statement's
    ordinary result.
    """

    def __init__(self, statement, plan, rows, operators, duration, totals):
        self.statement = statement
        self.plan = plan
        self.rows = rows
        self.operators = operators
        self.duration = duration
        self.totals = totals

    def table(self) -> list[dict[str, Any]]:
        """Rows for tabular display (CLI, ``PROFILE`` statement result):
        one per operator root-first, then a Total row."""
        rows = []
        for profile in self.operators:
            rows.append(
                {
                    "operator": profile.name,
                    "rows": profile.rows,
                    "time_ms": round(profile.time * 1e3, 3),
                    **profile.counters,
                }
            )
        rows.append(
            {
                "operator": "Total",
                "rows": len(self.rows),
                "time_ms": round(self.duration * 1e3, 3),
                **self.totals,
            }
        )
        return rows

    def tree(self) -> list[str]:
        """The EXPLAIN tree annotated with per-operator measurements."""
        profiles = iter(self.operators)
        annotated = []
        for node in plan_nodes(self.plan):
            if node.startswith("Temporal("):
                annotated.append(node)
                continue
            profile = next(profiles)
            c = profile.counters
            annotated.append(
                f"{node} {{rows={profile.rows}, "
                f"{profile.time * 1e3:.3f}ms, "
                f"cur={c['current_hits']}, recl={c['reclaimed_hits']}, "
                f"seeks={c['kv_seeks']}, replays={c['deltas_replayed']}, "
                f"cache={c['cache_hits']}/{c['cache_misses']}}}"
            )
        return _nest(annotated)


def execute_profiled(
    engine,
    txn,
    text: str,
    parameters: Optional[dict[str, Any]] = None,
) -> ProfileResult:
    """Run one statement inside ``txn`` with every operator profiled.

    Mirrors ``execute_query`` (same planning, same projection, same
    degraded-flag scoping) — only the operator chain differs, each link
    wrapped in a :class:`ProfiledOperator`.
    """
    controller = getattr(engine, "resilience", None)
    if controller is not None:
        controller.clear_degraded_flag()
    plan = plan_query(parse(text), engine)
    cond = _temporal_condition(engine, plan, parameters)
    ctx = ExecutionContext(engine, txn, parameters, cond)
    getters = _counter_getters(engine)

    def snapshot() -> tuple:
        return tuple(fn() for fn in getters)

    clock = engine.observability.clock
    wrapped = [ProfiledOperator(op, clock, snapshot) for op in plan.ops]
    started = clock()
    base = snapshot()
    frames = iter([{}])
    for op in wrapped:
        frames = op.execute(ctx, frames)
    if plan.returns is None:
        for _ in frames:  # drain so writes actually run
            pass
        rows: list[dict[str, Any]] = []
    else:
        rows = _project(ctx, plan.returns, frames)
    duration = clock() - started
    totals = tuple(now - was for now, was in zip(snapshot(), base))

    zeros = tuple(0 for _ in COUNTER_LABELS)
    operators: list[OperatorProfile] = []
    cumulative_time = 0.0
    cumulative = zeros
    for op in wrapped:  # pipeline order: Once first
        counters = op.counters if op.counters is not None else zeros
        self_counters = tuple(
            now - was for now, was in zip(counters, cumulative)
        )
        operators.append(
            OperatorProfile(
                op.describe(),
                op.rows,
                max(op.time - cumulative_time, 0.0),
                dict(zip(COUNTER_LABELS, self_counters)),
            )
        )
        cumulative_time = op.time
        cumulative = counters
    # The projection (or write drain) is the root pseudo-operator; it
    # absorbs whatever the chain's cumulative did not account for, so
    # the per-operator self values always sum to the statement totals.
    operators.append(
        OperatorProfile(
            _root_describe(plan),
            len(rows),
            max(duration - cumulative_time, 0.0),
            dict(
                zip(
                    COUNTER_LABELS,
                    (t - c for t, c in zip(totals, cumulative)),
                )
            ),
        )
    )
    operators.reverse()  # root-first, matching the EXPLAIN tree
    return ProfileResult(
        text, plan, rows, operators, duration, dict(zip(COUNTER_LABELS, totals))
    )
