"""The Cypher-ish temporal query language (paper sections 2.2 and 6).

The surface language is a practical subset of Cypher extended with the
paper's temporal constructs:

- ``TT SNAPSHOT <t>`` — transaction-time point queries;
- ``TT BETWEEN <t1> AND <t2>`` — transaction-time slice queries;
- valid-time predicates in ``WHERE`` (``n.VT CONTAINS 5``,
  ``n.VT OVERLAPS PERIOD(3, 9)`` and the other Allen relations), which
  the translator rewrites into ordinary property predicates before
  planning — exactly the paper's CypherMainVisitor translation.

Example::

    MATCH (n:Customer)-[r]->(m:CreditCard)
    WHERE n.name = 'Jack' AND m.VT CONTAINS 100
    TT SNAPSHOT 200
    RETURN m.balance
"""

from repro.query.executor import execute_query
from repro.query.parser import parse

__all__ = ["execute_query", "parse"]
