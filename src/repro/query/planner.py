"""Logical-to-physical lowering.

Each MATCH pattern becomes a left-to-right chain of ``NodeScan`` and
``Expand`` operators.  The planner picks the cheaper end of the chain
to start from (bound variable > indexed label+property > label >
inline properties > bare scan) and reverses the pattern when the right
end anchors better — the vertex-centric strategy the paper describes
("first scans the relevant vertices, then expands").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import PlanningError
from repro.query import ast
from repro.query.operators import (
    CreateEdgeOp,
    CreateNodeOp,
    DeleteOp,
    Expand,
    Filter,
    NodeScan,
    Once,
    OptionalMatch,
    PhysicalOperator,
    RelFilter,
    SetOp,
    Unwind,
    VarExpand,
    WithOp,
)
from repro.query.translate import translate_query

_FLIP = {"out": "in", "in": "out", "both": "both"}


@dataclass
class Plan:
    """A lowered statement, ready for the executor.

    ``describe()`` lists the operator chain in pipeline order (source
    first) — the flat ``engine.explain`` format; the profiler's
    ``EXPLAIN`` tree renders the same chain root-first (see
    ``repro.query.profiler``).
    """

    ops: list[PhysicalOperator]
    returns: Optional[ast.ReturnClause]
    tt: Optional[ast.TTClause]
    is_write: bool

    def describe(self) -> list[str]:
        """One line per physical operator, pipeline order."""
        return [op.describe() for op in self.ops]


def plan_query(query: ast.Query, engine) -> Plan:
    """Lower a parsed statement against ``engine``'s schema (indexes)."""
    query = translate_query(query)
    if query.is_write and query.tt is not None:
        raise PlanningError(
            "historical graph objects are immutable: a write statement "
            "cannot carry a TT qualifier (section 2.3)"
        )
    ops: list[PhysicalOperator] = [Once()]
    bound: set[str] = set()
    names = itertools.count()
    for stage in query.stages:
        _plan_stage(stage, engine, ops, bound, names)
    return Plan(ops, query.returns, query.tt, query.is_write)


def _plan_stage(
    stage: ast.Stage,
    engine,
    ops: list[PhysicalOperator],
    bound: set[str],
    names,
) -> None:
    for clause in stage.reading:
        if isinstance(clause, ast.UnwindClause):
            ops.append(Unwind(clause.expression, clause.alias))
            bound.add(clause.alias)
        elif clause.optional:
            sub_ops: list[PhysicalOperator] = []
            optional_bound = set(bound)
            for pattern in clause.patterns:
                _plan_pattern(pattern, engine, sub_ops, optional_bound, names)
            new_vars = sorted(optional_bound - bound)
            ops.append(OptionalMatch(sub_ops, new_vars))
            bound |= optional_bound
        else:
            for pattern in clause.patterns:
                _plan_pattern(pattern, engine, ops, bound, names)
    if stage.where is not None:
        ops.append(Filter(stage.where.predicate))
    for create in stage.creates:
        for item in create.items:
            if isinstance(item, ast.CreateNode):
                ops.append(CreateNodeOp(item))
                if item.pattern.variable is not None:
                    bound.add(item.pattern.variable)
            elif isinstance(item, ast.CreateEdge):
                if item.from_var not in bound or item.to_var not in bound:
                    raise PlanningError(
                        "CREATE edge endpoints must be bound by MATCH or a "
                        "preceding CREATE"
                    )
                ops.append(CreateEdgeOp(item))
                if item.rel.variable is not None:
                    bound.add(item.rel.variable)
            else:  # pragma: no cover - parser produces only these
                raise PlanningError(f"unknown CREATE item {item!r}")
    for set_clause in stage.sets:
        for item in set_clause.items:
            if item.target.variable not in bound:
                raise PlanningError(
                    f"SET references unbound variable {item.target.variable}"
                )
        ops.append(SetOp(set_clause))
    for delete in stage.deletes:
        for variable in delete.variables:
            if variable not in bound:
                raise PlanningError(
                    f"DELETE references unbound variable {variable}"
                )
        ops.append(DeleteOp(delete))
    if stage.with_clause is not None:
        with_op = WithOp(stage.with_clause)
        ops.append(with_op)
        # Downstream stages see only the projected names.
        bound.clear()
        bound.update(with_op.names)


def _plan_pattern(
    pattern: ast.PathPattern,
    engine,
    ops: list[PhysicalOperator],
    bound: set[str],
    names,
) -> None:
    pattern = _ensure_variables(pattern, names)
    if _anchor_score(pattern.nodes[-1], engine, bound) > _anchor_score(
        pattern.nodes[0], engine, bound
    ):
        pattern = _reverse(pattern)
    first = pattern.nodes[0]
    ops.append(NodeScan(first.variable, first.labels, first.properties))
    bound.add(first.variable)
    for hop, (rel, node) in enumerate(zip(pattern.rels, pattern.nodes[1:])):
        if rel.is_variable_length:
            ops.append(
                VarExpand(
                    src=pattern.nodes[hop].variable,
                    rel_var=rel.variable,
                    dst=node.variable,
                    types=rel.types,
                    direction=rel.direction,
                    min_hops=rel.min_hops,
                    max_hops=rel.max_hops,
                    prop_filters=rel.properties,
                )
            )
        else:
            ops.append(
                Expand(
                    src=pattern.nodes[hop].variable,
                    rel_var=rel.variable,
                    dst=node.variable,
                    types=rel.types,
                    direction=rel.direction,
                )
            )
            if rel.variable is not None and rel.properties:
                ops.append(RelFilter(rel.variable, rel.properties))
        if node.labels or node.properties:
            ops.append(NodeScan(node.variable, node.labels, node.properties))
        bound.add(node.variable)
        if rel.variable is not None:
            bound.add(rel.variable)


def _ensure_variables(pattern: ast.PathPattern, names) -> ast.PathPattern:
    """Give anonymous nodes/rels internal names so Expand can bind them."""
    nodes = tuple(
        node
        if node.variable is not None
        else ast.NodePattern(f"_anon{next(names)}", node.labels, node.properties)
        for node in pattern.nodes
    )
    rels = tuple(
        rel
        if rel.variable is not None or not rel.properties
        else ast.RelPattern(
            f"_anon{next(names)}",
            rel.types,
            rel.properties,
            rel.direction,
            rel.min_hops,
            rel.max_hops,
        )
        for rel in pattern.rels
    )
    return ast.PathPattern(nodes, rels)


def _anchor_score(node: ast.NodePattern, engine, bound: set[str]) -> float:
    """How selectively a chain can start at this node."""
    if node.variable is not None and node.variable in bound:
        return 4.0
    score = 0.0
    if node.labels:
        label = node.labels[0]
        indexes = engine.storage.indexes
        for name, _expr in node.properties:
            if indexes.has_label_property_index(label, name):
                return 3.0
        score = 2.0 if node.properties else 1.0
        if indexes.has_label_index(label):
            score += 0.5
    elif node.properties:
        score = 0.5
    return score


def _reverse(pattern: ast.PathPattern) -> ast.PathPattern:
    nodes = tuple(reversed(pattern.nodes))
    rels = tuple(
        ast.RelPattern(
            rel.variable,
            rel.types,
            rel.properties,
            _FLIP[rel.direction],
            rel.min_hops,
            rel.max_hops,
        )
        for rel in reversed(pattern.rels)
    )
    return ast.PathPattern(nodes, rels)
