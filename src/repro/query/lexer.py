"""Tokenizer for the query language.

Hand-written scanner producing a flat token list.  Keywords are
case-insensitive (as in Cypher); identifiers keep their case.  String
literals accept single or double quotes with backslash escapes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.errors import LexerError

KEYWORDS = {
    "MATCH",
    "OPTIONAL",
    "WHERE",
    "RETURN",
    "CREATE",
    "SET",
    "DELETE",
    "DETACH",
    "AS",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "SKIP",
    "LIMIT",
    "DISTINCT",
    "AND",
    "OR",
    "NOT",
    "IN",
    "IS",
    "NULL",
    "TRUE",
    "FALSE",
    "TT",
    "VT",
    "SNAPSHOT",
    "BETWEEN",
    "PERIOD",
    "CONTAINS",
    "OVERLAPS",
    "BEFORE",
    "AFTER",
    "MEETS",
    "MET_BY",
    "OVERLAPPED_BY",
    "STARTS",
    "STARTED_BY",
    "DURING",
    "FINISHES",
    "FINISHED_BY",
    "EQUALS",
    "VALID",
    "FOR",
    "WITH",
    "UNWIND",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    PARAMETER = "parameter"
    PUNCT = "punct"
    END = "end"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.value}, {self.value!r}@{self.position})"


_PUNCT_DOUBLE = ("<>", "<=", ">=", "->", "<-", "!=")
_PUNCT_SINGLE = "()[]{},.:=<>+-*/%|$"


def tokenize(text: str) -> list[Token]:
    """Scan ``text`` into tokens (terminated by an END token)."""
    tokens: list[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        char = text[pos]
        if char.isspace():
            pos += 1
            continue
        if char == "/" and text[pos:pos + 2] == "//":
            newline = text.find("\n", pos)
            pos = length if newline < 0 else newline + 1
            continue
        if char.isdigit():
            pos = _scan_number(text, pos, tokens)
            continue
        if char in "'\"":
            pos = _scan_string(text, pos, tokens)
            continue
        if char == "$":
            pos = _scan_parameter(text, pos, tokens)
            continue
        if char.isalpha() or char == "_":
            pos = _scan_word(text, pos, tokens)
            continue
        if char == "`":
            pos = _scan_backtick(text, pos, tokens)
            continue
        double = text[pos:pos + 2]
        if double in _PUNCT_DOUBLE:
            value = "<>" if double == "!=" else double
            tokens.append(Token(TokenType.PUNCT, value, pos))
            pos += 2
            continue
        if char in _PUNCT_SINGLE:
            tokens.append(Token(TokenType.PUNCT, char, pos))
            pos += 1
            continue
        raise LexerError(f"unexpected character {char!r}", pos)
    tokens.append(Token(TokenType.END, None, length))
    return tokens


def _scan_number(text: str, pos: int, tokens: list[Token]) -> int:
    start = pos
    while pos < len(text) and text[pos].isdigit():
        pos += 1
    is_float = False
    if pos < len(text) and text[pos] == "." and pos + 1 < len(text) and text[pos + 1].isdigit():
        is_float = True
        pos += 1
        while pos < len(text) and text[pos].isdigit():
            pos += 1
    if pos < len(text) and text[pos] in "eE":
        peek = pos + 1
        if peek < len(text) and text[peek] in "+-":
            peek += 1
        if peek < len(text) and text[peek].isdigit():
            is_float = True
            pos = peek
            while pos < len(text) and text[pos].isdigit():
                pos += 1
    raw = text[start:pos]
    if is_float:
        tokens.append(Token(TokenType.FLOAT, float(raw), start))
    else:
        tokens.append(Token(TokenType.INTEGER, int(raw), start))
    return pos


def _scan_string(text: str, pos: int, tokens: list[Token]) -> int:
    quote = text[pos]
    start = pos
    pos += 1
    chars: list[str] = []
    while pos < len(text):
        char = text[pos]
        if char == "\\":
            if pos + 1 >= len(text):
                raise LexerError("dangling escape in string", pos)
            escape = text[pos + 1]
            mapping = {"n": "\n", "t": "\t", "\\": "\\", quote: quote}
            chars.append(mapping.get(escape, escape))
            pos += 2
            continue
        if char == quote:
            tokens.append(Token(TokenType.STRING, "".join(chars), start))
            return pos + 1
        chars.append(char)
        pos += 1
    raise LexerError("unterminated string literal", start)


def _scan_parameter(text: str, pos: int, tokens: list[Token]) -> int:
    start = pos
    pos += 1
    name_start = pos
    while pos < len(text) and (text[pos].isalnum() or text[pos] == "_"):
        pos += 1
    if pos == name_start:
        raise LexerError("empty parameter name after '$'", start)
    tokens.append(Token(TokenType.PARAMETER, text[name_start:pos], start))
    return pos


def _scan_word(text: str, pos: int, tokens: list[Token]) -> int:
    start = pos
    while pos < len(text) and (text[pos].isalnum() or text[pos] == "_"):
        pos += 1
    word = text[start:pos]
    upper = word.upper()
    if upper in KEYWORDS:
        tokens.append(Token(TokenType.KEYWORD, upper, start))
    else:
        tokens.append(Token(TokenType.IDENT, word, start))
    return pos


def _scan_backtick(text: str, pos: int, tokens: list[Token]) -> int:
    start = pos
    end = text.find("`", pos + 1)
    if end < 0:
        raise LexerError("unterminated backtick identifier", start)
    tokens.append(Token(TokenType.IDENT, text[pos + 1:end], start))
    return end + 1
