"""Recursive-descent parser for the temporal query language.

Grammar sketch (clauses appear in this order, each optional unless a
statement would otherwise be empty)::

    query  := match* where? tt? (create | set | delete)* return?
    match  := [OPTIONAL] MATCH pattern (',' pattern)*
    pattern:= node (rel node)*
    node   := '(' var? (':' label)* map? ')'
    rel    := '-[' var? (':' type ('|' type)*)? map? ']->'
            | '<-[' ... ']-'   |   '-[' ... ']-'
    tt     := [FOR] TT SNAPSHOT expr
            | [FOR] TT BETWEEN expr AND expr
    create := CREATE item (',' item)*        -- node, or (a)-[:T]->(b)
              item may end with VALID PERIOD(e1, e2)
    set    := SET var.prop '=' expr (',' ...)*
    delete := [DETACH] DELETE var (',' var)*
    return := RETURN [DISTINCT] item (',' item)*
              [ORDER BY expr [ASC|DESC] (',' ...)*] [SKIP expr] [LIMIT expr]

Valid-time predicates are parsed as ``<var>.VT <ALLEN-OP> <expr>``
inside ``WHERE`` and later rewritten by :mod:`repro.query.translate`.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.query import ast
from repro.query.lexer import Token, TokenType, tokenize

_ALLEN_OPS = {
    "CONTAINS",
    "OVERLAPS",
    "BEFORE",
    "AFTER",
    "MEETS",
    "MET_BY",
    "OVERLAPPED_BY",
    "STARTS",
    "STARTED_BY",
    "DURING",
    "FINISHES",
    "FINISHED_BY",
    "EQUALS",
}

_COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}


class _VTAccess:
    """Transient marker for ``var.VT`` awaiting its Allen operator."""

    def __init__(self, variable: str) -> None:
        self.variable = variable


def parse(text: str) -> ast.Query:
    """Parse one statement; raises :class:`~repro.errors.ParseError`."""
    return _Parser(tokenize(text)).parse_query()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _check_keyword(self, word: str) -> bool:
        return self._current.is_keyword(word)

    def _accept_keyword(self, word: str) -> bool:
        if self._check_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise ParseError(
                f"expected {word}, found {self._current.value!r} at "
                f"offset {self._current.position}"
            )

    def _check_punct(self, punct: str) -> bool:
        token = self._current
        return token.type == TokenType.PUNCT and token.value == punct

    def _accept_punct(self, punct: str) -> bool:
        if self._check_punct(punct):
            self._advance()
            return True
        return False

    def _expect_punct(self, punct: str) -> None:
        if not self._accept_punct(punct):
            raise ParseError(
                f"expected {punct!r}, found {self._current.value!r} at "
                f"offset {self._current.position}"
            )

    def _expect_ident(self) -> str:
        token = self._current
        if token.type != TokenType.IDENT:
            raise ParseError(
                f"expected identifier, found {token.value!r} at offset "
                f"{token.position}"
            )
        self._advance()
        return token.value

    def _name(self) -> str:
        """An identifier, allowing (non-clause) keywords as names."""
        token = self._current
        if token.type == TokenType.IDENT:
            self._advance()
            return token.value
        if token.type == TokenType.KEYWORD:
            self._advance()
            return token.value
        raise ParseError(
            f"expected name, found {token.value!r} at offset {token.position}"
        )

    # -- query ------------------------------------------------------------------

    def parse_query(self) -> ast.Query:
        stages: list[ast.Stage] = []
        tt: Optional[ast.TTClause] = None
        returns: Optional[ast.ReturnClause] = None

        while True:
            stage, stage_tt, has_with = self._parse_stage(first=not stages)
            if stage_tt is not None:
                tt = stage_tt
            stages.append(stage)
            if not has_with:
                break

        if self._accept_keyword("RETURN"):
            returns = self._parse_return()

        if self._current.type != TokenType.END:
            raise ParseError(
                f"unexpected trailing input at offset {self._current.position}: "
                f"{self._current.value!r}"
            )
        empty = all(
            not (s.reading or s.creates or s.sets or s.deletes) for s in stages
        )
        if empty and returns is None:
            raise ParseError("empty query")
        return ast.Query(stages=tuple(stages), tt=tt, returns=returns)

    def _parse_stage(
        self, first: bool
    ) -> tuple[ast.Stage, Optional[ast.TTClause], bool]:
        reading: list = []
        where: Optional[ast.WhereClause] = None
        tt: Optional[ast.TTClause] = None
        creates: list[ast.CreateClause] = []
        sets: list[ast.SetClause] = []
        deletes: list[ast.DeleteClause] = []

        while True:
            optional = False
            if self._check_keyword("OPTIONAL"):
                self._advance()
                self._expect_keyword("MATCH")
                optional = True
                reading.append(self._parse_match(optional))
                continue
            if self._accept_keyword("MATCH"):
                reading.append(self._parse_match(optional))
                continue
            if self._accept_keyword("UNWIND"):
                expression = self._parse_expression()
                self._expect_keyword("AS")
                reading.append(ast.UnwindClause(expression, self._name()))
                continue
            break

        if self._accept_keyword("WHERE"):
            where = ast.WhereClause(self._parse_expression())

        if self._check_keyword("FOR") or self._check_keyword("TT"):
            if not first:
                raise ParseError(
                    "the TT qualifier belongs to the first pipeline stage"
                )
            tt = self._parse_tt_clause()

        while True:
            if self._accept_keyword("CREATE"):
                creates.append(self._parse_create())
                continue
            if self._accept_keyword("SET"):
                sets.append(self._parse_set())
                continue
            if self._check_keyword("DETACH") or self._check_keyword("DELETE"):
                deletes.append(self._parse_delete())
                continue
            break

        with_clause = None
        if self._accept_keyword("WITH"):
            with_clause = self._parse_with()
        return (
            ast.Stage(
                reading=tuple(reading),
                where=where,
                creates=tuple(creates),
                sets=tuple(sets),
                deletes=tuple(deletes),
                with_clause=with_clause,
            ),
            tt,
            with_clause is not None,
        )

    def _parse_with(self) -> ast.WithClause:
        distinct = self._accept_keyword("DISTINCT")
        items = [self._parse_with_item()]
        while self._accept_punct(","):
            items.append(self._parse_with_item())
        order: list[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                expr = self._parse_expression()
                descending = False
                if self._accept_keyword("DESC"):
                    descending = True
                else:
                    self._accept_keyword("ASC")
                order.append(ast.OrderItem(expr, descending))
                if not self._accept_punct(","):
                    break
        skip = self._parse_expression() if self._accept_keyword("SKIP") else None
        limit = self._parse_expression() if self._accept_keyword("LIMIT") else None
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return ast.WithClause(
            tuple(items), distinct, tuple(order), skip, limit, where
        )

    def _parse_with_item(self) -> ast.ReturnItem:
        item = self._parse_return_item()
        # Cypher's rule: anything but a bare variable needs an alias,
        # since the projected name becomes a binding.
        if item.alias is None and not isinstance(item.expression, ast.Variable):
            raise ParseError("WITH expressions require an AS alias")
        return item

    # -- MATCH --------------------------------------------------------------------

    def _parse_match(self, optional: bool) -> ast.MatchClause:
        patterns = [self._parse_pattern()]
        while self._accept_punct(","):
            patterns.append(self._parse_pattern())
        return ast.MatchClause(tuple(patterns), optional=optional)

    def _parse_pattern(self) -> ast.PathPattern:
        nodes = [self._parse_node_pattern()]
        rels: list[ast.RelPattern] = []
        while self._check_punct("-") or self._check_punct("<-"):
            rels.append(self._parse_rel_pattern())
            nodes.append(self._parse_node_pattern())
        return ast.PathPattern(tuple(nodes), tuple(rels))

    def _parse_node_pattern(self) -> ast.NodePattern:
        self._expect_punct("(")
        variable = None
        if self._current.type == TokenType.IDENT:
            variable = self._advance().value
        labels: list[str] = []
        while self._accept_punct(":"):
            labels.append(self._name())
        properties = self._parse_property_map() if self._check_punct("{") else ()
        self._expect_punct(")")
        return ast.NodePattern(variable, tuple(labels), tuple(properties))

    def _parse_rel_pattern(self) -> ast.RelPattern:
        if self._accept_punct("<-"):
            direction = "in"
            rel = self._parse_rel_detail()
            self._expect_punct("-")
            if self._check_punct(">"):
                raise ParseError("bidirectional arrows '<-...->' not supported")
        else:
            self._expect_punct("-")
            rel = self._parse_rel_detail()
            if self._accept_punct("->"):
                direction = "out"
            else:
                self._expect_punct("-")
                direction = "both"
        return ast.RelPattern(
            rel.variable,
            rel.types,
            rel.properties,
            direction,
            rel.min_hops,
            rel.max_hops,
        )

    #: Safety cap for unbounded variable-length patterns (``*`` / ``*2..``).
    MAX_VAR_LENGTH = 15

    def _parse_rel_detail(self) -> ast.RelPattern:
        if not self._accept_punct("["):
            return ast.RelPattern(None)
        variable = None
        if self._current.type == TokenType.IDENT:
            variable = self._advance().value
        types: list[str] = []
        if self._accept_punct(":"):
            types.append(self._name())
            while self._accept_punct("|"):
                self._accept_punct(":")  # allow :A|:B and :A|B
                types.append(self._name())
        min_hops = max_hops = None
        if self._accept_punct("*"):
            min_hops, max_hops = self._parse_hop_bounds()
        properties = self._parse_property_map() if self._check_punct("{") else ()
        self._expect_punct("]")
        return ast.RelPattern(
            variable, tuple(types), tuple(properties), "out", min_hops, max_hops
        )

    def _parse_hop_bounds(self) -> tuple[int, int]:
        """The Cypher forms ``*``, ``*n``, ``*n..m``, ``*..m``, ``*n..``."""
        low: Optional[int] = None
        high: Optional[int] = None
        if self._current.type == TokenType.INTEGER:
            low = self._advance().value
        if self._accept_punct("."):
            self._expect_punct(".")
            if self._current.type == TokenType.INTEGER:
                high = self._advance().value
        elif low is not None:
            high = low  # exact form *n
        min_hops = low if low is not None else 1
        max_hops = high if high is not None else self.MAX_VAR_LENGTH
        if min_hops < 0 or max_hops < min_hops:
            raise ParseError(
                f"bad variable-length bounds *{min_hops}..{max_hops}"
            )
        if max_hops > self.MAX_VAR_LENGTH:
            raise ParseError(
                f"variable-length bound {max_hops} exceeds the cap of "
                f"{self.MAX_VAR_LENGTH}"
            )
        return min_hops, max_hops

    def _parse_property_map(self) -> tuple[tuple[str, ast.Expression], ...]:
        self._expect_punct("{")
        items: list[tuple[str, ast.Expression]] = []
        if not self._check_punct("}"):
            while True:
                name = self._name()
                self._expect_punct(":")
                items.append((name, self._parse_expression()))
                if not self._accept_punct(","):
                    break
        self._expect_punct("}")
        return tuple(items)

    # -- temporal clause --------------------------------------------------------------

    def _parse_tt_clause(self) -> ast.TTClause:
        self._accept_keyword("FOR")
        self._expect_keyword("TT")
        if self._accept_keyword("SNAPSHOT"):
            return ast.TTClause("snapshot", self._parse_additive())
        self._expect_keyword("BETWEEN")
        # Bounds parse below the boolean level so the separating AND is
        # not swallowed as a conjunction.
        t1 = self._parse_additive()
        self._expect_keyword("AND")
        t2 = self._parse_additive()
        return ast.TTClause("between", t1, t2)

    # -- CREATE / SET / DELETE ------------------------------------------------------------

    def _parse_create(self) -> ast.CreateClause:
        items: list = [self._parse_create_item()]
        while self._accept_punct(","):
            items.append(self._parse_create_item())
        return ast.CreateClause(tuple(items))

    def _parse_create_item(self):
        first = self._parse_node_pattern()
        if self._check_punct("-") or self._check_punct("<-"):
            rel = self._parse_rel_pattern()
            second = self._parse_node_pattern()
            if first.variable is None or second.variable is None:
                raise ParseError(
                    "CREATE edge endpoints must be bound variables"
                )
            if rel.direction == "both":
                raise ParseError("CREATE requires a directed relationship")
            from_var, to_var = (
                (first.variable, second.variable)
                if rel.direction == "out"
                else (second.variable, first.variable)
            )
            rel = ast.RelPattern(rel.variable, rel.types, rel.properties, "out")
            valid = self._parse_valid_suffix()
            return ast.CreateEdge(from_var, to_var, rel, valid)
        valid = self._parse_valid_suffix()
        return ast.CreateNode(first, valid)

    def _parse_valid_suffix(self) -> Optional[ast.PeriodLiteral]:
        if not self._accept_keyword("VALID"):
            return None
        self._expect_keyword("PERIOD")
        self._expect_punct("(")
        start = self._parse_expression()
        self._expect_punct(",")
        end = self._parse_expression()
        self._expect_punct(")")
        return ast.PeriodLiteral(start, end)

    def _parse_set(self) -> ast.SetClause:
        items: list[ast.SetItem] = []
        while True:
            variable = self._expect_ident()
            self._expect_punct(".")
            name = self._name()
            self._expect_punct("=")
            value = self._parse_expression()
            items.append(ast.SetItem(ast.PropertyAccess(variable, name), value))
            if not self._accept_punct(","):
                break
        return ast.SetClause(tuple(items))

    def _parse_delete(self) -> ast.DeleteClause:
        detach = self._accept_keyword("DETACH")
        self._expect_keyword("DELETE")
        variables = [self._expect_ident()]
        while self._accept_punct(","):
            variables.append(self._expect_ident())
        return ast.DeleteClause(tuple(variables), detach=detach)

    # -- RETURN ---------------------------------------------------------------------------

    def _parse_return(self) -> ast.ReturnClause:
        distinct = self._accept_keyword("DISTINCT")
        items = [self._parse_return_item()]
        while self._accept_punct(","):
            items.append(self._parse_return_item())
        order: list[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                expr = self._parse_expression()
                descending = False
                if self._accept_keyword("DESC"):
                    descending = True
                else:
                    self._accept_keyword("ASC")
                order.append(ast.OrderItem(expr, descending))
                if not self._accept_punct(","):
                    break
        skip = self._parse_expression() if self._accept_keyword("SKIP") else None
        limit = self._parse_expression() if self._accept_keyword("LIMIT") else None
        return ast.ReturnClause(
            tuple(items), distinct, tuple(order), skip, limit
        )

    def _parse_return_item(self) -> ast.ReturnItem:
        expression = self._parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._name()
        return ast.ReturnItem(expression, alias)

    # -- expressions ----------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = ast.BooleanOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.BooleanOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        if isinstance(left, _VTAccess):
            return self._parse_vt_predicate(left)
        token = self._current
        if token.type == TokenType.PUNCT and token.value in _COMPARISON_OPS:
            op = self._advance().value
            right = self._parse_additive()
            if isinstance(right, _VTAccess):
                raise ParseError("VT may only appear left of an Allen operator")
            return ast.Comparison(op, left, right)
        if self._accept_keyword("IS"):
            negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(left, negated)
        if self._accept_keyword("IN"):
            self._expect_punct("[")
            items: list[ast.Expression] = []
            if not self._check_punct("]"):
                while True:
                    items.append(self._parse_expression())
                    if not self._accept_punct(","):
                        break
            self._expect_punct("]")
            return ast.InList(left, tuple(items))
        if (
            token.type == TokenType.KEYWORD
            and token.value in _ALLEN_OPS
            and isinstance(left, ast.PropertyAccess)
        ):
            raise ParseError(
                f"Allen operator {token.value} requires a .VT operand "
                f"(got property {left.variable}.{left.name})"
            )
        return left

    def _parse_vt_predicate(self, access: _VTAccess) -> ast.Expression:
        token = self._current
        if token.type != TokenType.KEYWORD or token.value not in _ALLEN_OPS:
            raise ParseError(
                f"expected an Allen operator after {access.variable}.VT, "
                f"found {token.value!r}"
            )
        op = self._advance().value
        argument = self._parse_additive()
        if isinstance(argument, _VTAccess):
            raise ParseError("VT-to-VT comparisons are not supported")
        return ast.VTPredicate(access.variable, op, argument)

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while self._current.type == TokenType.PUNCT and self._current.value in "+-":
            if isinstance(left, _VTAccess):
                raise ParseError("VT cannot be used in arithmetic")
            op = self._advance().value
            left = ast.Arithmetic(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while self._current.type == TokenType.PUNCT and self._current.value in "*/%":
            if isinstance(left, _VTAccess):
                raise ParseError("VT cannot be used in arithmetic")
            op = self._advance().value
            left = ast.Arithmetic(op, left, self._parse_unary())
        return left

    def _parse_unary(self):
        if self._accept_punct("-"):
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Literal(-operand.value)
            return ast.Arithmetic("-", ast.Literal(0), operand)
        return self._parse_primary()

    def _parse_primary(self):
        token = self._current
        if token.type == TokenType.INTEGER or token.type == TokenType.FLOAT:
            self._advance()
            return ast.Literal(token.value)
        if token.type == TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type == TokenType.PARAMETER:
            self._advance()
            return ast.Parameter(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("PERIOD"):
            self._advance()
            self._expect_punct("(")
            start = self._parse_expression()
            self._expect_punct(",")
            end = self._parse_expression()
            self._expect_punct(")")
            return ast.PeriodLiteral(start, end)
        if self._accept_punct("("):
            inner = self._parse_expression()
            self._expect_punct(")")
            return inner
        if self._check_punct("["):
            self._advance()
            items: list[ast.Expression] = []
            if not self._check_punct("]"):
                while True:
                    items.append(self._parse_expression())
                    if not self._accept_punct(","):
                        break
            self._expect_punct("]")
            return ast.FunctionCall("list", tuple(items))
        if token.type == TokenType.IDENT:
            name = self._advance().value
            if self._accept_punct("("):
                return self._parse_call(name)
            if self._accept_punct("."):
                if self._accept_keyword("VT"):
                    return _VTAccess(name)
                prop = self._name()
                return ast.PropertyAccess(name, prop)
            return ast.Variable(name)
        raise ParseError(
            f"unexpected token {token.value!r} at offset {token.position}"
        )

    def _parse_call(self, name: str) -> ast.FunctionCall:
        if self._accept_punct("*"):
            self._expect_punct(")")
            return ast.FunctionCall(name.lower(), (), star=True)
        args: list[ast.Expression] = []
        if not self._check_punct(")"):
            while True:
                args.append(self._parse_expression())
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        return ast.FunctionCall(name.lower(), tuple(args))
