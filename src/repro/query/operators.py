"""Physical query operators and the expression evaluator.

Operators are pull-based: each consumes an iterator of *frames*
(variable bindings) and yields transformed frames.  The temporal
variants of ``NodeScan`` and ``Expand`` delegate to the engine's
built-in temporal operators (Algorithms 2 and 3); the non-temporal
variants use ordinary MVCC-visible reads — mirroring how the paper
extends Memgraph's Scan and Expand only when a transaction-time
qualifier is present.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.common.timeutil import MAX_TIMESTAMP
from repro.core.temporal import (
    TemporalCondition,
    VT_END_PROPERTY,
    VT_START_PROPERTY,
)
from repro.errors import ExecutionError, PlanningError
from repro.graph.views import EdgeView, VertexView
from repro.query import ast

Frame = dict

_MISSING = object()


class ExecutionContext:
    """Everything an operator needs: engine, transaction, parameters,
    and the query's temporal condition (None for current-state reads)."""

    def __init__(self, engine, txn, parameters: Optional[dict], cond):
        self.engine = engine
        self.txn = txn
        self.parameters = parameters or {}
        self.cond: Optional[TemporalCondition] = cond


# -- expression evaluation ----------------------------------------------------


def evaluate(expr: ast.Expression, ctx: ExecutionContext, frame: Frame) -> Any:
    """Evaluate an expression against one frame.

    Missing properties and null operands propagate as ``None``;
    comparisons involving ``None`` are false (ternary-logic collapsed
    to two values, sufficient for this subset).
    """
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Parameter):
        if expr.name not in ctx.parameters:
            raise ExecutionError(f"missing parameter ${expr.name}")
        return ctx.parameters[expr.name]
    if isinstance(expr, ast.Variable):
        if expr.name not in frame:
            raise ExecutionError(f"unbound variable {expr.name}")
        return frame[expr.name]
    if isinstance(expr, ast.PropertyAccess):
        entity = frame.get(expr.variable, _MISSING)
        if entity is _MISSING:
            raise ExecutionError(f"unbound variable {expr.variable}")
        if entity is None:
            return None
        return entity.properties.get(expr.name)
    if isinstance(expr, ast.Comparison):
        return _compare(
            expr.op,
            evaluate(expr.left, ctx, frame),
            evaluate(expr.right, ctx, frame),
        )
    if isinstance(expr, ast.Arithmetic):
        return _arithmetic(
            expr.op,
            evaluate(expr.left, ctx, frame),
            evaluate(expr.right, ctx, frame),
        )
    if isinstance(expr, ast.BooleanOp):
        left = bool(evaluate(expr.left, ctx, frame))
        if expr.op == "AND":
            return left and bool(evaluate(expr.right, ctx, frame))
        return left or bool(evaluate(expr.right, ctx, frame))
    if isinstance(expr, ast.Not):
        return not bool(evaluate(expr.operand, ctx, frame))
    if isinstance(expr, ast.IsNull):
        value = evaluate(expr.operand, ctx, frame)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, ast.InList):
        needle = evaluate(expr.needle, ctx, frame)
        return any(
            needle == evaluate(item, ctx, frame) for item in expr.haystack
        )
    if isinstance(expr, ast.FunctionCall):
        return _call_function(expr, ctx, frame)
    if isinstance(expr, ast.PeriodLiteral):
        return (
            evaluate(expr.start, ctx, frame),
            evaluate(expr.end, ctx, frame),
        )
    if isinstance(expr, ast.VTPredicate):  # pragma: no cover - translated away
        raise ExecutionError("untranslated VT predicate reached execution")
    raise ExecutionError(f"cannot evaluate {type(expr).__name__}")


def _compare(op: str, left: Any, right: Any) -> bool:
    if left is None or right is None:
        return False
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise ExecutionError(f"unknown comparison {op!r}")


def _arithmetic(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right if isinstance(left, float) or isinstance(right, float) else left // right
        if op == "%":
            return left % right
    except TypeError as exc:
        raise ExecutionError(f"bad arithmetic operands: {exc}") from exc
    raise ExecutionError(f"unknown arithmetic operator {op!r}")


def _call_function(expr: ast.FunctionCall, ctx: ExecutionContext, frame: Frame) -> Any:
    name = expr.name
    if name == "list":
        return [evaluate(arg, ctx, frame) for arg in expr.args]
    if name == "coalesce":
        for arg in expr.args:
            value = evaluate(arg, ctx, frame)
            if value is not None:
                return value
        return None
    if name == "abs":
        value = evaluate(expr.args[0], ctx, frame)
        return None if value is None else abs(value)
    if name == "size":
        value = evaluate(expr.args[0], ctx, frame)
        return None if value is None else len(value)
    if name in _STRING_FUNCTIONS:
        return _call_string_function(name, expr, ctx, frame)
    if name == "to_string":
        value = evaluate(expr.args[0], ctx, frame)
        if value is None:
            return None
        if value is True:
            return "true"
        if value is False:
            return "false"
        return str(value)
    if name == "to_integer":
        value = evaluate(expr.args[0], ctx, frame)
        if value is None:
            return None
        try:
            return int(value)
        except (TypeError, ValueError):
            return None
    if name == "range":
        low = evaluate(expr.args[0], ctx, frame)
        high = evaluate(expr.args[1], ctx, frame)
        step = evaluate(expr.args[2], ctx, frame) if len(expr.args) > 2 else 1
        if low is None or high is None or not step:
            return None
        return list(range(low, high + (1 if step > 0 else -1), step))
    if name in ("count", "sum", "min", "max", "avg", "collect"):
        raise ExecutionError(
            f"aggregate {name}() outside RETURN is not supported"
        )
    entity = evaluate(expr.args[0], ctx, frame) if expr.args else None
    if name == "id":
        return None if entity is None else entity.gid
    if name == "labels":
        if entity is None:
            return None
        if not isinstance(entity, VertexView):
            raise ExecutionError("labels() expects a vertex")
        return sorted(entity.labels)
    if name == "type":
        if entity is None:
            return None
        if not isinstance(entity, EdgeView):
            raise ExecutionError("type() expects an edge")
        return entity.edge_type
    if name == "properties":
        return None if entity is None else dict(entity.properties)
    if name == "vt_start":
        return None if entity is None else entity.properties.get(VT_START_PROPERTY)
    if name == "vt_end":
        if entity is None:
            return None
        return entity.properties.get(VT_END_PROPERTY, MAX_TIMESTAMP)
    if name == "tt_start":
        return None if entity is None else entity.tt_start
    if name == "tt_end":
        return None if entity is None else entity.tt_end
    raise ExecutionError(f"unknown function {expr.name}()")


_STRING_FUNCTIONS = {
    "upper",
    "lower",
    "trim",
    "starts_with",
    "ends_with",
    "contains_string",
    "substring",
    "split",
    "replace",
}


def _call_string_function(name, expr, ctx, frame):
    """String helpers; null propagates, wrong types raise."""
    args = [evaluate(arg, ctx, frame) for arg in expr.args]
    if any(arg is None for arg in args):
        return None
    first = args[0]
    if not isinstance(first, str):
        raise ExecutionError(f"{name}() expects a string")
    if name == "upper":
        return first.upper()
    if name == "lower":
        return first.lower()
    if name == "trim":
        return first.strip()
    if name == "starts_with":
        return first.startswith(args[1])
    if name == "ends_with":
        return first.endswith(args[1])
    if name == "contains_string":
        return args[1] in first
    if name == "substring":
        start = args[1]
        length = args[2] if len(args) > 2 else None
        return first[start:] if length is None else first[start:start + length]
    if name == "split":
        return first.split(args[1])
    if name == "replace":
        return first.replace(args[1], args[2])
    raise ExecutionError(f"unknown string function {name}()")


# -- physical operators -----------------------------------------------------------


class PhysicalOperator:
    """Base class: transform a stream of frames."""

    def execute(self, ctx: ExecutionContext, frames: Iterator[Frame]) -> Iterator[Frame]:
        raise NotImplementedError

    def describe(self) -> str:
        """One line for EXPLAIN output."""
        return type(self).__name__


class Once(PhysicalOperator):
    """Source operator: a single empty frame."""

    def execute(self, ctx, frames):
        yield {}


class ProfiledOperator(PhysicalOperator):
    """PROFILE instrumentation: wrap an operator, measure every pull.

    Each ``next()`` on the wrapped operator is timed and bracketed by a
    storage-counter snapshot (``snapshot()`` returns a tuple of counter
    values — KV seeks, cache hits, current/reclaimed version hits...).
    Because pulling this operator transitively pulls everything beneath
    it, the accumulated :attr:`time` and :attr:`counters` are
    *cumulative over the subtree*; the profiler derives per-operator
    self values by subtracting the adjacent wrapped child's cumulative
    (the plan is a linear chain).  See ``repro.query.profiler``.
    """

    def __init__(self, op: PhysicalOperator, clock, snapshot):
        self.op = op
        self.clock = clock
        self.snapshot = snapshot
        self.rows = 0
        self.time = 0.0
        self.counters: Optional[tuple] = None

    def describe(self) -> str:
        return self.op.describe()

    def execute(self, ctx, frames):
        inner = self.op.execute(ctx, frames)
        if self.counters is None:
            self.counters = tuple(0 for _ in self.snapshot())
        while True:
            started = self.clock()
            before = self.snapshot()
            try:
                frame = next(inner)
            except StopIteration:
                return
            finally:
                self.time += self.clock() - started
                after = self.snapshot()
                self.counters = tuple(
                    total + (now - was)
                    for total, now, was in zip(self.counters, after, before)
                )
            self.rows += 1
            yield frame


class NodeScan(PhysicalOperator):
    """Bind ``variable`` to vertices matching label/property filters.

    With a temporal condition, every satisfying *version* is a binding
    (Algorithm 2); otherwise the MVCC-visible state is used.  A variable
    already bound upstream is re-checked instead of re-scanned (pattern
    join).
    """

    def __init__(self, variable, labels, prop_filters):
        self.variable = variable
        self.labels = tuple(labels)
        self.prop_filters = tuple(prop_filters)  # (name, expression)

    def execute(self, ctx, frames):
        for frame in frames:
            if self.variable is not None and frame.get(self.variable) is not None:
                view = frame[self.variable]
                if not isinstance(view, VertexView):
                    raise ExecutionError(
                        f"{self.variable} is not a vertex (node pattern "
                        "re-used a non-node binding)"
                    )
                if self._matches(ctx, frame, view):
                    yield frame
                continue
            for view in self._scan(ctx, frame):
                if self._matches(ctx, frame, view):
                    new_frame = dict(frame)
                    if self.variable is not None:
                        new_frame[self.variable] = view
                    yield new_frame

    def describe(self) -> str:
        parts = [self.variable or "_"]
        if self.labels:
            parts.append(":" + ":".join(self.labels))
        if self.prop_filters:
            parts.append("{" + ", ".join(n for n, _ in self.prop_filters) + "}")
        return f"NodeScan({''.join(parts)})"

    def _scan(self, ctx, frame):
        label = self.labels[0] if self.labels else None
        index_prop, index_value = self._index_probe(ctx, frame, label)
        if ctx.cond is not None:
            return ctx.engine.operators.scan_vertices(
                ctx.txn, ctx.cond, label, index_prop, index_value
            )
        return self._snapshot_scan(ctx, label, index_prop, index_value)

    def _index_probe(self, ctx, frame, label):
        """Pick one equality filter backed by a label+property index."""
        if label is None:
            return None, None
        for name, expr in self.prop_filters:
            if ctx.engine.storage.indexes.has_label_property_index(label, name):
                return name, evaluate(expr, ctx, frame)
        return None, None

    def _snapshot_scan(self, ctx, label, index_prop, index_value):
        storage = ctx.engine.storage
        candidates = None
        if label is not None and index_prop is not None:
            candidates = storage.indexes.candidates_by_value(
                label, index_prop, index_value
            )
        if candidates is None and label is not None:
            candidates = storage.indexes.candidates_by_label(label)
        if candidates is not None:
            for gid in sorted(candidates):
                view = storage.get_vertex(ctx.txn, gid)
                if view is not None:
                    yield view
            return
        yield from storage.iter_vertices(ctx.txn)

    def _matches(self, ctx, frame, view) -> bool:
        if view is None:
            return False
        for label in self.labels:
            if label not in view.labels:
                return False
        for name, expr in self.prop_filters:
            if view.properties.get(name) != evaluate(expr, ctx, frame):
                return False
        return True


class Expand(PhysicalOperator):
    """Traverse one hop from ``src`` binding ``rel`` and ``dst``.

    Temporal mode follows Algorithm 3 (candidate-edge union + Equation
    2 intersection checks); snapshot mode walks the visible adjacency.
    A bound ``dst`` turns the operation into an edge-existence join.
    """

    def __init__(self, src, rel_var, dst, types, direction):
        self.src = src
        self.rel_var = rel_var
        self.dst = dst
        self.types = set(types) if types else None
        self.direction = direction

    def execute(self, ctx, frames):
        for frame in frames:
            source = frame.get(self.src)
            if source is None:
                continue
            bound_dst = frame.get(self.dst) if self.dst is not None else None
            for edge, neighbour in self._expansions(ctx, source):
                if bound_dst is not None and neighbour.gid != bound_dst.gid:
                    continue
                new_frame = dict(frame)
                if self.rel_var is not None:
                    new_frame[self.rel_var] = edge
                if self.dst is not None and bound_dst is None:
                    new_frame[self.dst] = neighbour
                yield new_frame

    def describe(self) -> str:
        arrow = {"out": "->", "in": "<-", "both": "--"}[self.direction]
        types = ":" + "|".join(sorted(self.types)) if self.types else ""
        return f"Expand({self.src}){arrow}[{self.rel_var or '_'}{types}]({self.dst})"

    def _expansions(self, ctx, source):
        if ctx.cond is not None:
            yield from ctx.engine.operators.expand(
                ctx.txn, source, ctx.cond, self.direction, self.types
            )
            return
        storage = ctx.engine.storage
        refs = []
        if self.direction in ("out", "both"):
            refs.extend((r, "out") for r in source.out_edges)
        if self.direction in ("in", "both"):
            refs.extend((r, "in") for r in source.in_edges)
        for ref, _side in refs:
            if self.types is not None and ref.edge_type not in self.types:
                continue
            edge = storage.get_edge(ctx.txn, ref.edge_gid)
            if edge is None:
                continue
            neighbour = storage.get_vertex(ctx.txn, ref.other_gid)
            if neighbour is not None:
                yield edge, neighbour


class Unwind(PhysicalOperator):
    """``UNWIND expr AS name`` — one output frame per list element.

    ``null`` unwinds to nothing (Cypher semantics); a non-list value
    unwinds to itself (single frame).
    """

    def __init__(self, expression: ast.Expression, alias: str):
        self.expression = expression
        self.alias = alias

    def describe(self) -> str:
        return f"Unwind(... AS {self.alias})"

    def execute(self, ctx, frames):
        for frame in frames:
            value = evaluate(self.expression, ctx, frame)
            if value is None:
                continue
            items = value if isinstance(value, (list, tuple)) else [value]
            for item in items:
                new_frame = dict(frame)
                new_frame[self.alias] = item
                yield new_frame


class VarExpand(PhysicalOperator):
    """Variable-length traversal: ``-[r:TYPE*min..max]->``.

    Depth-first search from the source binding; relationship
    uniqueness per path (Cypher semantics: an edge may appear once in
    a match).  ``rel_var`` binds the *list* of traversed edges.  A
    bound ``dst`` restricts results to paths ending there.  Inline
    relationship properties must hold on every traversed edge.
    """

    def __init__(
        self, src, rel_var, dst, types, direction, min_hops, max_hops,
        prop_filters=(),
    ):
        self.src = src
        self.rel_var = rel_var
        self.dst = dst
        self.types = set(types) if types else None
        self.direction = direction
        self.min_hops = min_hops
        self.max_hops = max_hops
        self.prop_filters = tuple(prop_filters)

    def describe(self) -> str:
        arrow = {"out": "->", "in": "<-", "both": "--"}[self.direction]
        types = ":" + "|".join(sorted(self.types)) if self.types else ""
        return (
            f"VarExpand({self.src}){arrow}[{self.rel_var or '_'}{types}"
            f"*{self.min_hops}..{self.max_hops}]({self.dst})"
        )

    def execute(self, ctx, frames):
        for frame in frames:
            source = frame.get(self.src)
            if source is None:
                continue
            bound_dst = frame.get(self.dst) if self.dst is not None else None
            seen_results: set = set()
            for path, endpoint in self._paths(ctx, frame, source):
                if bound_dst is not None and endpoint.gid != bound_dst.gid:
                    continue
                key = (tuple(edge.gid for edge in path), endpoint.gid)
                if key in seen_results:
                    continue
                seen_results.add(key)
                new_frame = dict(frame)
                if self.rel_var is not None:
                    new_frame[self.rel_var] = list(path)
                if self.dst is not None and bound_dst is None:
                    new_frame[self.dst] = endpoint
                yield new_frame

    def _paths(self, ctx, frame, source):
        """DFS yielding ``(edge list, endpoint view)`` per valid path."""
        if self.min_hops == 0:
            yield [], source
        stack = [(source, [], frozenset())]
        while stack:
            vertex, path, used = stack.pop()
            if len(path) >= self.max_hops:
                continue
            for edge, neighbour in self._expansions(ctx, vertex):
                if edge.gid in used:
                    continue
                if not self._edge_matches(ctx, frame, edge):
                    continue
                new_path = path + [edge]
                if len(new_path) >= self.min_hops:
                    yield new_path, neighbour
                stack.append((neighbour, new_path, used | {edge.gid}))

    def _expansions(self, ctx, vertex):
        if ctx.cond is not None:
            yield from ctx.engine.operators.expand(
                ctx.txn, vertex, ctx.cond, self.direction, self.types
            )
            return
        storage = ctx.engine.storage
        refs = []
        if self.direction in ("out", "both"):
            refs.extend(vertex.out_edges)
        if self.direction in ("in", "both"):
            refs.extend(vertex.in_edges)
        for ref in refs:
            if self.types is not None and ref.edge_type not in self.types:
                continue
            edge = storage.get_edge(ctx.txn, ref.edge_gid)
            if edge is None:
                continue
            neighbour = storage.get_vertex(ctx.txn, ref.other_gid)
            if neighbour is not None:
                yield edge, neighbour

    def _edge_matches(self, ctx, frame, edge) -> bool:
        return all(
            edge.properties.get(name) == evaluate(expr, ctx, frame)
            for name, expr in self.prop_filters
        )


class RelFilter(PhysicalOperator):
    """Apply a relationship pattern's inline property map."""

    def __init__(self, rel_var, prop_filters):
        self.rel_var = rel_var
        self.prop_filters = tuple(prop_filters)

    def describe(self) -> str:
        names = ", ".join(n for n, _ in self.prop_filters)
        return f"RelFilter({self.rel_var} {{{names}}})"

    def execute(self, ctx, frames):
        for frame in frames:
            edge = frame.get(self.rel_var)
            if edge is None:
                continue
            if all(
                edge.properties.get(name) == evaluate(expr, ctx, frame)
                for name, expr in self.prop_filters
            ):
                yield frame


class Filter(PhysicalOperator):
    """WHERE predicate."""

    def __init__(self, predicate: ast.Expression):
        self.predicate = predicate

    def describe(self) -> str:
        return "Filter(WHERE ...)"

    def execute(self, ctx, frames):
        for frame in frames:
            if bool(evaluate(self.predicate, ctx, frame)):
                yield frame


class OptionalMatch(PhysicalOperator):
    """Run a sub-plan per frame; emit null bindings when it is empty."""

    def __init__(self, sub_ops: list[PhysicalOperator], new_vars: list[str]):
        self.sub_ops = sub_ops
        self.new_vars = new_vars

    def describe(self) -> str:
        inner = "; ".join(op.describe() for op in self.sub_ops)
        return f"OptionalMatch[{inner}]"

    def execute(self, ctx, frames):
        for frame in frames:
            produced = False
            sub_frames: Iterator[Frame] = iter([frame])
            for op in self.sub_ops:
                sub_frames = op.execute(ctx, sub_frames)
            for result in sub_frames:
                produced = True
                yield result
            if not produced:
                empty = dict(frame)
                for var in self.new_vars:
                    empty.setdefault(var, None)
                yield empty


_AGGREGATE_NAMES = {"count", "sum", "min", "max", "avg", "collect"}


def has_aggregate(expr: ast.Expression) -> bool:
    """Whether the expression is an aggregate call (top level)."""
    return isinstance(expr, ast.FunctionCall) and expr.name in _AGGREGATE_NAMES


def hashable_key(value: Any):
    """A hashable stand-in for any frame value (grouping/dedup keys)."""
    if isinstance(value, (VertexView, EdgeView)):
        return ("#entity", value.gid, value.tt_start, value.tt_end)
    if isinstance(value, dict):
        return tuple(sorted((k, hashable_key(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(hashable_key(item) for item in value)
    return value


def compute_aggregate(ctx, expr: ast.FunctionCall, frames: list[Frame]) -> Any:
    """Evaluate one aggregate over a group of frames (raw values)."""
    if expr.name == "count" and expr.star:
        return len(frames)
    if not expr.args:
        raise ExecutionError(f"{expr.name}() needs an argument")
    values = [
        value
        for frame in frames
        if (value := evaluate(expr.args[0], ctx, frame)) is not None
    ]
    if expr.name == "count":
        return len(values)
    if expr.name == "collect":
        return values
    if not values:
        return None
    if expr.name == "sum":
        return sum(values)
    if expr.name == "min":
        return min(values)
    if expr.name == "max":
        return max(values)
    if expr.name == "avg":
        return sum(values) / len(values)
    raise ExecutionError(f"unknown aggregate {expr.name}()")


class WithOp(PhysicalOperator):
    """``WITH`` — project the pipeline onto new bindings.

    Implicit grouping applies when any item aggregates (like RETURN);
    ``WHERE`` filters the projected frames; ``ORDER BY``/``SKIP``/
    ``LIMIT`` apply to the projected stream.  Downstream operators see
    only the projected names.
    """

    def describe(self) -> str:
        return "With(" + ", ".join(self.names) + ")"

    def __init__(self, clause: ast.WithClause):
        self.clause = clause
        self.names = []
        for item in clause.items:
            if item.alias is not None:
                self.names.append(item.alias)
            elif isinstance(item.expression, ast.Variable):
                self.names.append(item.expression.name)
            else:  # pragma: no cover - parser enforces aliasing
                raise PlanningError("WITH expressions require an AS alias")
        if len(set(self.names)) != len(self.names):
            raise PlanningError("duplicate names in WITH")

    def execute(self, ctx, frames):
        clause = self.clause
        if any(has_aggregate(item.expression) for item in clause.items):
            projected = self._aggregate(ctx, frames)
        else:
            projected = (
                {
                    name: evaluate(item.expression, ctx, frame)
                    for name, item in zip(self.names, clause.items)
                }
                for frame in frames
            )
        if clause.where is not None:
            projected = (
                frame
                for frame in projected
                if bool(evaluate(clause.where, ctx, frame))
            )
        if clause.distinct:
            projected = self._distinct(projected)
        needs_list = clause.order_by or clause.skip or clause.limit
        if not needs_list:
            yield from projected
            return
        rows = list(projected)
        for item in reversed(clause.order_by):
            rows.sort(
                key=lambda frame: _order_key(evaluate(item.expression, ctx, frame)),
                reverse=item.descending,
            )
        if clause.skip is not None:
            rows = rows[_require_count(ctx, clause.skip, "SKIP"):]
        if clause.limit is not None:
            rows = rows[: _require_count(ctx, clause.limit, "LIMIT")]
        yield from rows

    def _aggregate(self, ctx, frames):
        group_items = [
            (name, item)
            for name, item in zip(self.names, self.clause.items)
            if not has_aggregate(item.expression)
        ]
        agg_items = [
            (name, item)
            for name, item in zip(self.names, self.clause.items)
            if has_aggregate(item.expression)
        ]
        groups: dict[tuple, dict] = {}
        members: dict[tuple, list[Frame]] = {}
        for frame in frames:
            values = {
                name: evaluate(item.expression, ctx, frame)
                for name, item in group_items
            }
            key = tuple(hashable_key(values[name]) for name, _ in group_items)
            if key not in groups:
                groups[key] = values
                members[key] = []
            members[key].append(frame)
        if not groups and not group_items:
            groups[()] = {}
            members[()] = []
        for key, values in groups.items():
            row = dict(values)
            for name, item in agg_items:
                row[name] = compute_aggregate(ctx, item.expression, members[key])
            yield row

    @staticmethod
    def _distinct(frames):
        seen = set()
        for frame in frames:
            key = tuple(sorted((k, hashable_key(v)) for k, v in frame.items()))
            if key not in seen:
                seen.add(key)
                yield frame


def _order_key(value):
    """Total order over mixed-type values: None last, numbers before
    strings before everything else (by repr)."""
    if value is None:
        return (3, 0)
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    if isinstance(value, str):
        return (1, value)
    return (2, repr(value))


def _require_count(ctx, expr, what: str) -> int:
    value = evaluate(expr, ctx, {})
    if not isinstance(value, int) or value < 0:
        raise ExecutionError(f"{what} must be a non-negative integer")
    return value


class CreateNodeOp(PhysicalOperator):
    """CREATE (v:Label {props}) [VALID PERIOD(a, b)]."""

    def __init__(self, item: ast.CreateNode):
        self.item = item

    def describe(self) -> str:
        pattern = self.item.pattern
        labels = ":" + ":".join(pattern.labels) if pattern.labels else ""
        return f"CreateNode({pattern.variable or '_'}{labels})"

    def execute(self, ctx, frames):
        pattern = self.item.pattern
        for frame in frames:
            properties = {
                name: evaluate(expr, ctx, frame)
                for name, expr in pattern.properties
            }
            valid = None
            if self.item.valid_time is not None:
                valid = (
                    evaluate(self.item.valid_time.start, ctx, frame),
                    evaluate(self.item.valid_time.end, ctx, frame),
                )
            gid = ctx.engine.create_vertex(
                ctx.txn, pattern.labels, properties, valid_time=valid
            )
            new_frame = dict(frame)
            if pattern.variable is not None:
                new_frame[pattern.variable] = ctx.engine.get_vertex(ctx.txn, gid)
            yield new_frame


class CreateEdgeOp(PhysicalOperator):
    """CREATE (a)-[:TYPE {props}]->(b) with bound endpoints."""

    def __init__(self, item: ast.CreateEdge):
        self.item = item
        if len(item.rel.types) != 1:
            raise PlanningError("CREATE requires exactly one relationship type")

    def execute(self, ctx, frames):
        item = self.item
        for frame in frames:
            source = frame.get(item.from_var)
            target = frame.get(item.to_var)
            if source is None or target is None:
                raise ExecutionError(
                    "CREATE edge endpoints must be bound to vertices"
                )
            properties = {
                name: evaluate(expr, ctx, frame)
                for name, expr in item.rel.properties
            }
            valid = None
            if item.valid_time is not None:
                valid = (
                    evaluate(item.valid_time.start, ctx, frame),
                    evaluate(item.valid_time.end, ctx, frame),
                )
            gid = ctx.engine.create_edge(
                ctx.txn,
                source.gid,
                target.gid,
                item.rel.types[0],
                properties,
                valid_time=valid,
            )
            new_frame = dict(frame)
            if item.rel.variable is not None:
                new_frame[item.rel.variable] = ctx.engine.get_edge(ctx.txn, gid)
            yield new_frame


class SetOp(PhysicalOperator):
    """SET x.prop = expr, ..."""

    def __init__(self, clause: ast.SetClause):
        self.clause = clause

    def execute(self, ctx, frames):
        for frame in frames:
            for item in self.clause.items:
                entity = frame.get(item.target.variable)
                if entity is None:
                    raise ExecutionError(
                        f"SET on unbound variable {item.target.variable}"
                    )
                value = evaluate(item.value, ctx, frame)
                if isinstance(entity, VertexView):
                    ctx.engine.set_vertex_property(
                        ctx.txn, entity.gid, item.target.name, value
                    )
                elif isinstance(entity, EdgeView):
                    ctx.engine.set_edge_property(
                        ctx.txn, entity.gid, item.target.name, value
                    )
                else:
                    raise ExecutionError("SET target is not a graph object")
            yield frame


class DeleteOp(PhysicalOperator):
    """[DETACH] DELETE x, ..."""

    def __init__(self, clause: ast.DeleteClause):
        self.clause = clause

    def execute(self, ctx, frames):
        deleted: set[tuple[str, int]] = set()
        for frame in frames:
            for variable in self.clause.variables:
                entity = frame.get(variable)
                if entity is None:
                    continue
                key = (
                    "vertex" if isinstance(entity, VertexView) else "edge",
                    entity.gid,
                )
                if key in deleted:
                    continue
                deleted.add(key)
                if isinstance(entity, VertexView):
                    ctx.engine.delete_vertex(
                        ctx.txn, entity.gid, detach=self.clause.detach
                    )
                elif isinstance(entity, EdgeView):
                    ctx.engine.delete_edge(ctx.txn, entity.gid)
                else:
                    raise ExecutionError("DELETE target is not a graph object")
            yield frame
