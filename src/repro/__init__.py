"""AeonG/TGDB reproduction: built-in temporal support in an MVCC graph DB.

Public surface::

    from repro import AeonG, TemporalCondition, GraphModel

    db = AeonG()
    with db.transaction() as txn:
        v = db.create_vertex(txn, labels=["Person"], properties={"name": "Jack"})
    rows = db.execute("MATCH (n:Person) RETURN n.name")

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.core.durability import RecoveryReport
from repro.core.engine import AeonG
from repro.core.stats import StorageReport
from repro.core.temporal import (
    AllenRelation,
    GraphModel,
    Interval,
    TemporalCondition,
)
from repro.errors import (
    DegradedModeError,
    IntegrityError,
    OverloadError,
    ProtocolError,
    ReproError,
    SerializationConflict,
    ServerError,
    TransactionTimeout,
)
from repro.faults import FAILPOINTS, SimulatedCrash, StorageIO
from repro.integrity import IntegrityReport, Scrubber
from repro.observability import (
    MetricsRegistry,
    Observability,
    ObservabilityConfig,
    Tracer,
)
from repro.resilience import ResilienceConfig, RetryPolicy

__version__ = "1.0.0"

__all__ = [
    "AeonG",
    "TemporalCondition",
    "Interval",
    "AllenRelation",
    "GraphModel",
    "StorageReport",
    "RecoveryReport",
    "ReproError",
    "SerializationConflict",
    "TransactionTimeout",
    "OverloadError",
    "DegradedModeError",
    "IntegrityError",
    "ProtocolError",
    "ServerError",
    "IntegrityReport",
    "Scrubber",
    "ResilienceConfig",
    "RetryPolicy",
    "ObservabilityConfig",
    "Observability",
    "MetricsRegistry",
    "Tracer",
    "FAILPOINTS",
    "SimulatedCrash",
    "StorageIO",
    "__version__",
]
