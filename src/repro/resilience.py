"""Transaction-lifecycle resilience: retry, deadlines, admission, breaker.

Documented in ``docs/API.md`` ("Resilience") — configuration knobs,
degraded-read policies, and the ``metrics()["resilience"]`` counters
(also exported through the observability registry) live there.

The MVCC write protocol is optimistic (first-updater-wins), the GC
watermark is pinned by the oldest active snapshot, and the history
store sits behind real I/O — three places where a misbehaving client or
device turns into unbounded damage: conflicted work is thrown away, a
leaked ``begin()`` freezes reclamation and migration forever, and a
failing KV store can only crash queries or silently stall migration.

This module packages the engine's defenses:

:class:`RetryPolicy`
    Capped exponential backoff with jitter for
    ``AeonG.run_transaction`` — the sanctioned way to write under
    contention.  The clock, sleep, and random source are injectable so
    tests are deterministic.
:class:`AdmissionGate`
    A bounded concurrent-transaction gate with a FIFO waiting queue.
    Waiters past the queue deadline get
    :class:`~repro.errors.OverloadError` — the engine degrades with a
    clear error instead of unbounded memory growth.
:class:`CircuitBreaker`
    Health tracking for the history store.  ``N`` consecutive failures
    trip it open; while open, temporal reads degrade per the
    ``degraded_reads`` knob and migration pauses (epochs stay requeued,
    so no history is lost).  After ``reset_timeout`` the next request
    is let through as a half-open probe; success restores full service.
:class:`ResilienceController`
    One per engine: owns the pieces above plus the counters surfaced
    under ``metrics()["resilience"]``.

Everything time-based runs off ``ResilienceConfig.clock`` so tests can
drive deadlines and breaker timeouts with a fake clock.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import DegradedModeError, OverloadError

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: ``degraded_reads`` policies: temporal reads while the breaker is open
#: either fail fast or silently fall back to current-store versions.
DEGRADED_RAISE = "raise"
DEGRADED_CURRENT_ONLY = "current-only"
DEGRADED_POLICIES = (DEGRADED_RAISE, DEGRADED_CURRENT_ONLY)


@dataclass
class RetryPolicy:
    """Retry schedule for :meth:`AeonG.run_transaction`.

    Attempt ``k`` (1-based) failing with a serialization conflict waits
    ``min(base_delay * multiplier**(k-1), max_delay)``, spread by
    ``jitter`` (a fraction: ``0.5`` means the wait lands uniformly in
    ``[0.5d, 1.5d]``) so a conflict storm doesn't resynchronize into
    another storm.  ``sleep`` and ``rng`` are injectable for tests.
    """

    max_attempts: int = 8
    base_delay: float = 0.001
    max_delay: float = 0.1
    multiplier: float = 2.0
    jitter: float = 0.5
    sleep: Callable[[float], None] = time.sleep
    rng: Callable[[], float] = random.random

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delay(self, attempt: int) -> float:
        """The backoff before retry number ``attempt`` (1-based)."""
        capped = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if self.jitter == 0.0:
            return capped
        spread = capped * self.jitter
        return capped - spread + 2.0 * spread * self.rng()

    def backoff(self, attempt: int) -> float:
        """Sleep the attempt's delay; returns the seconds slept."""
        duration = self.delay(attempt)
        if duration > 0:
            self.sleep(duration)
        return duration


@dataclass
class ResilienceConfig:
    """Engine-level resilience knobs (see :class:`repro.AeonG`).

    ``max_concurrent_transactions=None`` disables admission control;
    ``max_transaction_age=None`` means transactions without an explicit
    ``begin(timeout=...)`` never expire.  ``watchdog_interval=0``
    disables the watchdog daemon — deadlines are then only enforced by
    explicit :meth:`AeonG.sweep_expired` calls (deterministic tests).

    ``wal_queue_limit`` bounds the group-commit writer's submission
    queue.  A committer whose record would overflow the queue blocks
    (under the engine's commit lock) until the writer drains;
    transactions piling up behind it are still holding their admission
    slots, so sustained WAL pressure fills the :class:`AdmissionGate`,
    which sheds *new* arrivals with
    :class:`~repro.errors.OverloadError` instead of letting unbounded
    memory build up behind a slow device.
    """

    max_concurrent_transactions: Optional[int] = None
    admission_timeout: float = 1.0
    max_transaction_age: Optional[float] = None
    watchdog_interval: float = 0.05
    degraded_reads: str = DEGRADED_RAISE
    breaker_failure_threshold: int = 5
    breaker_reset_timeout: float = 1.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    clock: Callable[[], float] = time.monotonic
    wal_queue_limit: int = 1024

    def __post_init__(self) -> None:
        if self.degraded_reads not in DEGRADED_POLICIES:
            raise ValueError(
                f"degraded_reads must be one of {DEGRADED_POLICIES}, "
                f"got {self.degraded_reads!r}"
            )
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if (
            self.max_concurrent_transactions is not None
            and self.max_concurrent_transactions < 1
        ):
            raise ValueError("max_concurrent_transactions must be >= 1")
        if self.wal_queue_limit < 1:
            raise ValueError("wal_queue_limit must be >= 1")


class AdmissionGate:
    """Bounded concurrency with a FIFO waiting queue.

    ``acquire`` admits immediately while slots are free, otherwise
    queues the caller; a waiter that has not been admitted within the
    queue deadline is removed and gets :class:`OverloadError`.  Tickets
    keep the queue fair — a latecomer can never overtake a waiter.
    """

    def __init__(
        self,
        max_concurrent: int,
        queue_timeout: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._cond = threading.Condition()
        self._max = max_concurrent
        self._timeout = queue_timeout
        self._clock = clock
        self._queue: deque[int] = deque()
        self._next_ticket = 0
        self.in_flight = 0
        self.admitted = 0
        self.rejected = 0
        self.peak_queue_depth = 0

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def acquire(self) -> None:
        """Take one transaction slot or raise :class:`OverloadError`."""
        with self._cond:
            if not self._queue and self.in_flight < self._max:
                self.in_flight += 1
                self.admitted += 1
                return
            self._next_ticket += 1
            ticket = self._next_ticket
            self._queue.append(ticket)
            if len(self._queue) > self.peak_queue_depth:
                self.peak_queue_depth = len(self._queue)
            # Waits use the real monotonic clock: Condition.wait cannot
            # be driven by an injected clock, and admission tests use
            # short real deadlines instead.
            deadline = time.monotonic() + self._timeout
            while True:
                if self._queue and self._queue[0] == ticket and (
                    self.in_flight < self._max
                ):
                    self._queue.popleft()
                    self.in_flight += 1
                    self.admitted += 1
                    self._cond.notify_all()
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._queue.remove(ticket)
                    self.rejected += 1
                    self._cond.notify_all()
                    raise OverloadError(
                        f"admission queue deadline exceeded "
                        f"({self._timeout:.3f}s, {self.in_flight} in flight, "
                        f"{len(self._queue)} waiting)"
                    )
                self._cond.wait(remaining)

    def release(self) -> None:
        """Return one slot (commit, abort, or watchdog abort)."""
        with self._cond:
            if self.in_flight > 0:
                self.in_flight -= 1
            self._cond.notify_all()

    def snapshot(self) -> dict:
        with self._cond:
            return {
                "max_concurrent": self._max,
                "in_flight": self.in_flight,
                "queue_depth": len(self._queue),
                "peak_queue_depth": self.peak_queue_depth,
                "admitted": self.admitted,
                "rejected": self.rejected,
            }


class CircuitBreaker:
    """Consecutive-failure breaker for the history store.

    Closed → open after ``failure_threshold`` consecutive failures.
    Open → half-open once ``reset_timeout`` has elapsed on the injected
    clock: the next request is allowed through as a probe.  A probe
    success closes the breaker; a failure re-opens it (and re-arms the
    timer).  ``time_in_degraded`` accumulates every second spent
    outside the closed state.
    """

    def __init__(
        self,
        failure_threshold: int,
        reset_timeout: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        self._threshold = failure_threshold
        self._reset_timeout = reset_timeout
        self._clock = clock
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.failures_total = 0
        self.successes_total = 0
        self.trips = 0
        self.probes = 0
        self._opened_at: Optional[float] = None
        self._degraded_since: Optional[float] = None
        self._degraded_accum = 0.0

    def allow(self) -> bool:
        """Whether a history-store request may proceed right now."""
        with self._lock:
            if self.state == BREAKER_CLOSED:
                return True
            now = self._clock()
            if self.state == BREAKER_OPEN:
                if (
                    self._opened_at is not None
                    and now - self._opened_at >= self._reset_timeout
                ):
                    self.state = BREAKER_HALF_OPEN
                    self.probes += 1
                    return True
                return False
            # Half-open: a probe is under way; let requests through so
            # its outcome (success or failure) resolves the state.
            return True

    def record_success(self) -> None:
        with self._lock:
            self.successes_total += 1
            self.consecutive_failures = 0
            if self.state != BREAKER_CLOSED:
                self.state = BREAKER_CLOSED
                self._opened_at = None
                if self._degraded_since is not None:
                    self._degraded_accum += self._clock() - self._degraded_since
                    self._degraded_since = None

    def record_failure(self) -> None:
        with self._lock:
            now = self._clock()
            self.failures_total += 1
            self.consecutive_failures += 1
            if self.state == BREAKER_HALF_OPEN:
                self._trip(now)  # failed probe: back to open, new timer
            elif self.state == BREAKER_OPEN:
                self._opened_at = now
            elif self.consecutive_failures >= self._threshold:
                self._trip(now)

    def _trip(self, now: float) -> None:
        self.state = BREAKER_OPEN
        self._opened_at = now
        self.trips += 1
        if self._degraded_since is None:
            self._degraded_since = now

    @property
    def is_closed(self) -> bool:
        with self._lock:
            return self.state == BREAKER_CLOSED

    def time_in_degraded(self) -> float:
        with self._lock:
            accum = self._degraded_accum
            if self._degraded_since is not None:
                accum += self._clock() - self._degraded_since
            return accum

    def snapshot(self) -> dict:
        with self._lock:
            accum = self._degraded_accum
            if self._degraded_since is not None:
                accum += self._clock() - self._degraded_since
            return {
                "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "failures_total": self.failures_total,
                "successes_total": self.successes_total,
                "trips": self.trips,
                "probes": self.probes,
                "time_in_degraded": accum,
            }


class ResilienceController:
    """Per-engine resilience state, wired through every layer.

    Owned by :class:`repro.AeonG`; the engine routes ``begin`` through
    the admission gate, the migrate hook and
    :meth:`HistoricalStore.fetch_versions` through the breaker, and the
    watchdog through :meth:`AeonG.sweep_expired`.  Counters here feed
    ``metrics()["resilience"]``.
    """

    def __init__(self, config: Optional[ResilienceConfig] = None) -> None:
        self.config = config if config is not None else ResilienceConfig()
        self.clock = self.config.clock
        self.breaker = CircuitBreaker(
            self.config.breaker_failure_threshold,
            self.config.breaker_reset_timeout,
            self.clock,
        )
        self.gate: Optional[AdmissionGate] = None
        if self.config.max_concurrent_transactions is not None:
            self.gate = AdmissionGate(
                self.config.max_concurrent_transactions,
                self.config.admission_timeout,
                self.clock,
            )
        self._lock = threading.Lock()
        self._local = threading.local()
        self.conflict_retries = 0
        self.retries_exhausted = 0
        self.transactions_retried = 0
        self.watchdog_aborts = 0
        self.degraded_reads = 0
        self.migration_pauses = 0
        self.quarantined_reads = 0

    # -- retry bookkeeping ------------------------------------------------

    def note_conflict_retry(self) -> None:
        with self._lock:
            self.conflict_retries += 1

    def note_retries_exhausted(self) -> None:
        with self._lock:
            self.retries_exhausted += 1

    def note_transaction_retried(self) -> None:
        with self._lock:
            self.transactions_retried += 1

    def note_watchdog_aborts(self, count: int) -> None:
        with self._lock:
            self.watchdog_aborts += count

    # -- history-store gate (reads) ---------------------------------------

    def allow_history_read(self) -> bool:
        """Gate one ``FetchFromKV``.

        ``True``: proceed to the KV store.  ``False``: breaker open
        under the ``current-only`` policy — serve current-store results
        and mark the read degraded.  Raises
        :class:`~repro.errors.DegradedModeError` under ``raise``.
        """
        if self.breaker.allow():
            return True
        if self.config.degraded_reads == DEGRADED_RAISE:
            raise DegradedModeError(
                "temporal read rejected: history-store circuit breaker is "
                f"open (degraded_reads={DEGRADED_RAISE!r}); retry after the "
                "breaker's reset timeout or query current state instead"
            )
        self.note_degraded_read()
        return False

    def note_degraded_read(self) -> None:
        with self._lock:
            self.degraded_reads += 1
        self._local.degraded = True

    def quarantined_read_raises(self) -> bool:
        """Account one temporal read that hit a quarantined TT range
        and decide its fate per the ``degraded_reads`` policy.

        ``True``: the caller should raise
        :class:`~repro.errors.IntegrityError` (the ``raise`` policy —
        and the raise feeds the breaker, so repeated corruption trips
        it).  ``False``: the read degrades to current-only results,
        marked like any other degraded read.
        """
        with self._lock:
            self.quarantined_reads += 1
        if self.config.degraded_reads == DEGRADED_CURRENT_ONLY:
            self.note_degraded_read()
            return False
        return True

    def note_migration_paused(self) -> None:
        with self._lock:
            self.migration_pauses += 1

    def history_ok(self) -> None:
        self.breaker.record_success()

    def history_failed(self) -> None:
        self.breaker.record_failure()

    # -- the per-call degraded flag ---------------------------------------
    #
    # Sticky within a thread since the last clear; the query executor
    # clears it at statement start so ``AeonG.last_read_degraded``
    # answers "did *this* query fall back to current-only results?".

    def clear_degraded_flag(self) -> None:
        self._local.degraded = False

    @property
    def last_read_degraded(self) -> bool:
        return getattr(self._local, "degraded", False)

    @property
    def degraded(self) -> bool:
        return not self.breaker.is_closed

    # -- reporting --------------------------------------------------------

    def metrics(self) -> dict:
        with self._lock:
            out = {
                "conflict_retries": self.conflict_retries,
                "transactions_retried": self.transactions_retried,
                "retries_exhausted": self.retries_exhausted,
                "watchdog_aborts": self.watchdog_aborts,
                "degraded_reads": self.degraded_reads,
                "migration_pauses": self.migration_pauses,
                "quarantined_reads": self.quarantined_reads,
            }
        out["admission"] = (
            self.gate.snapshot() if self.gate is not None else None
        )
        out["breaker"] = self.breaker.snapshot()
        return out


__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "ResilienceConfig",
    "ResilienceController",
    "RetryPolicy",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "DEGRADED_RAISE",
    "DEGRADED_CURRENT_ONLY",
]
