"""Memgraph-style MVCC substrate.

This package reproduces the concurrency-control machinery the paper
builds on (section 4.1, following Neumann et al.'s delta-based MVCC):

- objects are updated **in place**; every write additionally creates an
  **undo delta** describing how to roll the change back;
- deltas of one transaction live in that transaction's **undo buffer**
  and are chained per object in "newest-to-oldest" order;
- readers materialize the version visible to their snapshot by applying
  undo deltas whose commit timestamp is after the snapshot;
- a periodic **garbage collector** reclaims undo buffers of committed
  transactions older than every active snapshot — AeonG hooks exactly
  this point to migrate the expiring deltas into the history store.
"""

from repro.mvcc.delta import Delta, DeltaAction
from repro.mvcc.manager import TransactionManager
from repro.mvcc.timestamps import TimestampOracle
from repro.mvcc.transaction import CommitStatus, Transaction

__all__ = [
    "Delta",
    "DeltaAction",
    "TransactionManager",
    "TimestampOracle",
    "Transaction",
    "CommitStatus",
]
