"""Transactions and their undo buffers.

A transaction owns a single :class:`CommitInfo`, shared by reference
with every delta it creates.  While the transaction is active the info
holds its transaction id; at commit it atomically flips to the commit
timestamp.  Readers therefore never see a half-committed state: either
they observe ``ACTIVE`` (and treat the writer's changes as invisible)
or ``COMMITTED`` with the final timestamp.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional

from repro.errors import TransactionStateError, TransactionTimeout
from repro.mvcc.delta import Delta, DeltaAction


class CommitStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class CommitInfo:
    """Shared commit state of one transaction (pointed to by its deltas)."""

    __slots__ = ("status", "transaction_id", "commit_ts")

    def __init__(self, transaction_id: int) -> None:
        self.status = CommitStatus.ACTIVE
        self.transaction_id = transaction_id
        self.commit_ts: Optional[int] = None

    def mark_committed(self, commit_ts: int) -> None:
        self.status = CommitStatus.COMMITTED
        self.commit_ts = commit_ts

    def mark_aborted(self) -> None:
        self.status = CommitStatus.ABORTED


class Transaction:
    """One unit of work under snapshot isolation.

    The undo buffer records ``(record, delta)`` pairs in creation
    order; *record* is the graph object the delta is chained on, which
    abort uses to unlink and roll back, and commit uses to stamp
    transaction time.
    """

    def __init__(self, transaction_id: int, start_ts: int) -> None:
        self.id = transaction_id
        self.start_ts = start_ts
        self.commit_info = CommitInfo(transaction_id)
        #: wall-clock instant (engine resilience clock) past which the
        #: watchdog may abort this transaction; ``None`` = no deadline
        self.deadline: Optional[float] = None
        #: set by the watchdog just before it aborts an expired
        #: transaction, so the owner's next operation raises
        #: :class:`TransactionTimeout` instead of a generic state error
        self.expired = False
        #: read-only transactions (replica snapshot reads) never write
        #: and never consume a commit timestamp; see
        #: :meth:`TransactionManager.begin_readonly`
        self.read_only = False
        self.undo_buffer: list[tuple[Any, Delta]] = []
        #: logical operations of this transaction — the record body for
        #: the engine's write-ahead log and the replication stream
        self.journal: list[tuple] = []
        #: callbacks run after a successful commit (index maintenance)
        self._commit_hooks: list[Callable[[int], None]] = []
        #: callbacks run on abort (constraint-claim releases)
        self._abort_hooks: list[Callable[[], None]] = []

    # -- state ------------------------------------------------------------

    @property
    def status(self) -> CommitStatus:
        return self.commit_info.status

    @property
    def is_active(self) -> bool:
        return self.commit_info.status == CommitStatus.ACTIVE

    @property
    def commit_ts(self) -> Optional[int]:
        return self.commit_info.commit_ts

    def check_active(self) -> None:
        if not self.is_active:
            if self.expired:
                raise TransactionTimeout(
                    f"transaction {self.id} exceeded its deadline and was "
                    "aborted by the watchdog"
                )
            raise TransactionStateError(
                f"transaction {self.id} is {self.status.value}"
            )

    # -- delta bookkeeping --------------------------------------------------

    def record_delta(self, record: Any, delta: Delta) -> None:
        """Register a freshly created delta in the undo buffer."""
        self.check_active()
        if self.read_only:
            raise TransactionStateError(
                f"transaction {self.id} is read-only (replica snapshot "
                "reads cannot write; route mutations to the primary)"
            )
        self.undo_buffer.append((record, delta))

    def on_commit(self, hook: Callable[[int], None]) -> None:
        """Run ``hook(commit_ts)`` after this transaction commits."""
        self._commit_hooks.append(hook)

    def run_commit_hooks(self, commit_ts: int) -> None:
        for hook in self._commit_hooks:
            hook(commit_ts)

    def on_abort(self, hook: Callable[[], None]) -> None:
        """Run ``hook()`` if this transaction aborts (reverse order)."""
        self._abort_hooks.append(hook)

    def run_abort_hooks(self) -> None:
        for hook in reversed(self._abort_hooks):
            hook()

    def owns(self, delta: Delta) -> bool:
        """Whether this transaction created the given delta."""
        info = delta.commit_info
        return (
            info.status == CommitStatus.ACTIVE
            and info.transaction_id == self.id
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Transaction(id={self.id}, start={self.start_ts},"
            f" status={self.status.value}, deltas={len(self.undo_buffer)})"
        )


def delta_visible_at(delta: Delta, snapshot_ts: int, reader: Transaction) -> bool:
    """Snapshot-isolation visibility of the *change* a delta undoes.

    A delta's change is part of the reader's snapshot when the creating
    transaction is the reader itself, or committed at or before the
    snapshot timestamp.  Readers materialize older versions by applying
    (undoing) every delta whose change is **not** visible.
    """
    info = delta.commit_info
    if info.status == CommitStatus.COMMITTED:
        assert info.commit_ts is not None
        return info.commit_ts <= snapshot_ts
    if info.status == CommitStatus.ACTIVE:
        return info.transaction_id == reader.id
    # Aborted writers' changes are never visible; their undo must apply.
    return False
