"""Monotone logical-timestamp oracle.

One oracle serves both transaction start timestamps and commit
timestamps, so the total order over begins and commits is a single
sequence — the property snapshot isolation's visibility rule depends
on, and the property that makes AeonG's transaction-time assignment
("TT is the actual commit timestamp") sound.
"""

from __future__ import annotations

import threading


class TimestampOracle:
    """Thread-safe source of strictly increasing logical timestamps."""

    def __init__(self, start: int = 1) -> None:
        if start < 1:
            raise ValueError("timestamps must start at 1 or later")
        self._next = start
        self._lock = threading.Lock()

    def next(self) -> int:
        """Reserve and return the next timestamp."""
        with self._lock:
            ts = self._next
            self._next += 1
            return ts

    def peek(self) -> int:
        """The timestamp the next call to :meth:`next` would return."""
        with self._lock:
            return self._next

    def advance_to(self, ts: int) -> None:
        """Ensure future timestamps are at least ``ts`` (recovery aid)."""
        with self._lock:
            self._next = max(self._next, ts)
