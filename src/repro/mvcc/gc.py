"""Garbage collection with the late-migration hook (paper Algorithm 1).

Vanilla Memgraph's ``CollectGarbage()`` periodically frees undo buffers
of committed transactions that no active snapshot can still need.
AeonG keeps that trigger but inserts ``Migrate()`` *before* the free:
the expiring deltas — which are exactly the historical versions — are
encoded into the key-value history store, in batch, asynchronously to
user transactions.  This module implements the collection mechanics;
the encoding itself lives in :mod:`repro.core.migration` and is plugged
in as ``migrate_hook``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.errors import DegradedModeError
from repro.mvcc.manager import TransactionManager
from repro.mvcc.transaction import Transaction

#: Receives the reclaimable transactions before their deltas are freed.
MigrateHook = Callable[[list[Transaction]], None]

#: Called for records whose delete became invisible to every snapshot,
#: letting the graph layer drop them from its maps entirely.
ReclaimObjectHook = Callable[[Any], None]


class GarbageCollector:
    """Reclaims expired undo buffers, migrating them first.

    Parameters
    ----------
    manager:
        The transaction manager whose committed set is collected.
    migrate_hook:
        AeonG's ``Migrate(CT)``; ``None`` reproduces vanilla Memgraph
        (history is discarded — the TGDB-noT configuration of the
        throughput experiment, Figure 6b).
    reclaim_object_hook:
        Invoked for current-store records that are deleted and fully
        reclaimed so the graph layer can free them.
    """

    def __init__(
        self,
        manager: TransactionManager,
        migrate_hook: Optional[MigrateHook] = None,
        reclaim_object_hook: Optional[ReclaimObjectHook] = None,
    ) -> None:
        self._manager = manager
        self._migrate_hook = migrate_hook
        self._reclaim_object_hook = reclaim_object_hook
        self._lock = threading.Lock()
        self.runs = 0
        self.deltas_reclaimed = 0
        #: epochs skipped because the history store was degraded (the
        #: migrate hook raised ``DegradedModeError``); their
        #: transactions stay requeued until the breaker half-opens.
        self.epochs_paused = 0

    def collect(self) -> int:
        """Run one garbage-collection epoch; returns #deltas reclaimed.

        Steps (mirroring the paper's modified ``CollectGarbage()``):

        1. take committed transactions invisible to every snapshot;
        2. ``Migrate()`` their undo buffers to the history store;
        3. unlink the reclaimed deltas from the per-object chains;
        4. drop current-store records whose deletion is now permanent.
        """
        with self._lock:
            reclaimable = self._manager.take_reclaimable()
            if not reclaimable:
                self.runs += 1
                return 0
            if self._migrate_hook is not None:
                try:
                    self._migrate_hook(reclaimable)
                except DegradedModeError:
                    # The history store is circuit-broken: migration is
                    # *paused*, not failed.  Requeue and report a clean
                    # zero-work epoch so user-facing paths (the commit
                    # trigger, manual collect) keep succeeding while
                    # the store is down.
                    self._manager.committed_pending_gc[:0] = reclaimable
                    self.epochs_paused += 1
                    self.runs += 1
                    return 0
                except BaseException:
                    # take_reclaimable() popped these transactions; if
                    # migration failed (I/O error, injected fault) their
                    # deltas have NOT reached the history store — requeue
                    # them so the next epoch retries instead of silently
                    # losing history.
                    self._manager.committed_pending_gc[:0] = reclaimable
                    raise
            reclaimed = self._unlink(reclaimable)
            self.runs += 1
            self.deltas_reclaimed += reclaimed
            return reclaimed

    def _unlink(self, transactions: list[Transaction]) -> int:
        watermark = self._manager.oldest_active_start_ts()
        reclaimed = 0
        touched: dict[int, Any] = {}
        for txn in transactions:
            for record, _delta in txn.undo_buffer:
                touched[id(record)] = record
            reclaimed += len(txn.undo_buffer)
            txn.undo_buffer.clear()
        for record in touched.values():
            self._truncate_chain(record, watermark)
            if record.deleted and record.delta_head is None:
                if self._reclaim_object_hook is not None:
                    self._reclaim_object_hook(record)
        return reclaimed

    @staticmethod
    def _truncate_chain(record: Any, watermark: int) -> None:
        """Cut the delta chain at the first reclaimable delta.

        Chains are newest-to-oldest with strictly decreasing commit
        timestamps, so once one delta falls below the watermark every
        older one does too.
        """
        head = record.delta_head
        if head is None:
            return
        info = head.commit_info
        if info.commit_ts is not None and info.commit_ts < watermark:
            record.delta_head = None
            return
        node = head
        while node.next is not None:
            info = node.next.commit_info
            if info.commit_ts is not None and info.commit_ts < watermark:
                node.next = None
                return
            node = node.next
