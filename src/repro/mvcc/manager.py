"""Transaction lifecycle: begin, commit, abort, and the GC watermark.

Commit is where AeonG's transaction-time guarantee lives: the manager
draws the commit timestamp from the shared oracle and stamps it into

- the transaction's :class:`~repro.mvcc.transaction.CommitInfo` (making
  the changes visible to later snapshots), and
- every undo delta's ``tt_end`` / the touched object's ``tt_start``
  (closing the old version's TT interval and opening the new one).

That is precisely the paper's argument against application-level
timestamps: only the engine knows the true commit point.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.errors import TransactionStateError
from repro.mvcc.delta import Delta
from repro.mvcc.timestamps import TimestampOracle
from repro.mvcc.transaction import CommitStatus, Transaction

#: Applies one undo delta to its record, in place (supplied by the
#: graph layer, which knows the record structure).
UndoApplier = Callable[[Any, Delta], None]


class TransactionManager:
    """Creates transactions and tracks the active/committed sets."""

    def __init__(
        self,
        oracle: Optional[TimestampOracle] = None,
        undo_applier: Optional[UndoApplier] = None,
    ) -> None:
        self.oracle = oracle if oracle is not None else TimestampOracle()
        self._undo_applier = undo_applier
        self._lock = threading.RLock()
        self._next_txn_id = 1
        self._active: dict[int, Transaction] = {}
        #: committed transactions whose undo buffers have not been
        #: garbage-collected yet (ordered by commit timestamp)
        self.committed_pending_gc: list[Transaction] = []

    def set_undo_applier(self, applier: UndoApplier) -> None:
        """Late-bind the rollback routine (called by the graph layer)."""
        self._undo_applier = applier

    # -- lifecycle ----------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction with a fresh snapshot timestamp."""
        with self._lock:
            txn = Transaction(self._next_txn_id, self.oracle.next())
            self._next_txn_id += 1
            self._active[txn.id] = txn
            return txn

    def begin_replay(self) -> Transaction:
        """Start a WAL-replay transaction without consuming a timestamp.

        Concurrent live committers can pack WAL commit timestamps one
        apart (begin A, begin B, commit A at ``n``, commit B at
        ``n + 1``).  A replay that drew its snapshot from
        :meth:`TimestampOracle.next` would burn one timestamp per
        record and overrun the next record's forced commit timestamp.
        Replay is serial, so its snapshot is simply "everything
        committed so far": ``oracle.peek() - 1``.
        """
        with self._lock:
            txn = Transaction(self._next_txn_id, self.oracle.peek() - 1)
            self._next_txn_id += 1
            self._active[txn.id] = txn
            return txn

    def begin_readonly(self) -> Transaction:
        """Start a read-only transaction without consuming a timestamp.

        Replica snapshot reads use this: a replica's oracle is advanced
        only by replicated commit timestamps, so a read that consumed
        :meth:`TimestampOracle.next` would make the next record's
        forced commit timestamp "in the past" (the same overrun
        :meth:`begin_replay` exists to avoid).  The snapshot is the
        applied watermark — everything replicated so far — and
        :meth:`~repro.mvcc.transaction.Transaction.record_delta`
        rejects writes.
        """
        with self._lock:
            txn = Transaction(self._next_txn_id, self.oracle.peek() - 1)
            txn.read_only = True
            self._next_txn_id += 1
            self._active[txn.id] = txn
            return txn

    def commit(self, txn: Transaction, commit_ts: Optional[int] = None) -> int:
        """Commit ``txn``; returns its commit timestamp.

        Stamps transaction time onto every delta and touched record
        before publishing the commit, so a concurrent temporal reader
        either sees the whole new version (with its interval) or none
        of it.

        ``commit_ts`` forces a specific timestamp — used exclusively by
        write-ahead-log replay, which must reproduce the original
        transaction-time assignment exactly.  Forced timestamps must
        arrive in increasing order (WAL order guarantees this).
        """
        txn.check_active()
        with self._lock:
            if commit_ts is None and txn.read_only:
                # Read-only commits must not consume a timestamp: on a
                # replica the oracle tracks the primary's commits only.
                commit_ts = self.oracle.peek() - 1
                txn.commit_info.mark_committed(commit_ts)
                del self._active[txn.id]
            else:
                if commit_ts is None:
                    commit_ts = self.oracle.next()
                else:
                    if commit_ts < self.oracle.peek():
                        raise TransactionStateError(
                            f"replayed commit timestamp {commit_ts} is in the past"
                        )
                    self.oracle.advance_to(commit_ts + 1)
                for record, delta in txn.undo_buffer:
                    delta.tt_end = commit_ts
                    if delta.is_structural:
                        record.tt_structure_start = commit_ts
                    else:
                        record.tt_start = commit_ts
                txn.commit_info.mark_committed(commit_ts)
                del self._active[txn.id]
                if txn.undo_buffer:
                    self.committed_pending_gc.append(txn)
        # Hooks run outside the manager lock: they belong to the caller
        # (admission-gate release, engine callbacks) and must not extend
        # the MVCC critical section — a hook that blocks (e.g. on WAL
        # backpressure) would otherwise stall every begin/commit/abort.
        txn.run_commit_hooks(commit_ts)
        return commit_ts

    def abort(self, txn: Transaction) -> None:
        """Roll back ``txn``'s in-place changes and unlink its deltas."""
        txn.check_active()
        if self._undo_applier is None and txn.undo_buffer:
            raise TransactionStateError(
                "cannot abort: no undo applier registered"
            )
        with self._lock:
            # Undo in reverse creation order; each transaction's deltas
            # sit contiguously at their object's chain head because the
            # first-updater-wins check blocks interleaved writers.
            for record, delta in reversed(txn.undo_buffer):
                self._undo_applier(record, delta)
                if record.delta_head is delta:
                    record.delta_head = delta.next
                else:  # pragma: no cover - defensive; see invariant above
                    raise TransactionStateError(
                        "abort found a foreign delta at the chain head"
                    )
            txn.commit_info.mark_aborted()
            txn.undo_buffer.clear()
            del self._active[txn.id]
        # Outside the lock, same reasoning as in commit().
        txn.run_abort_hooks()

    # -- watermarks -----------------------------------------------------------

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    def active_transactions(self) -> list[Transaction]:
        """A snapshot of the currently active transactions."""
        with self._lock:
            return list(self._active.values())

    def expired_transactions(self, now: float) -> list[Transaction]:
        """Active transactions whose deadline has passed at ``now``.

        The watchdog's selection step: every returned transaction is
        still pinning the GC watermark at :meth:`oldest_active_start_ts`
        and is a candidate for a background abort.
        """
        with self._lock:
            return [
                txn
                for txn in self._active.values()
                if txn.deadline is not None and txn.deadline <= now
            ]

    def oldest_active_start_ts(self) -> int:
        """Snapshot watermark: versions older than this are reclaimable.

        With no active transactions this is the next timestamp the
        oracle would hand out, i.e. everything committed is reclaimable.
        """
        with self._lock:
            if not self._active:
                return self.oracle.peek()
            return min(t.start_ts for t in self._active.values())

    def take_reclaimable(self) -> list[Transaction]:
        """Pop committed transactions no longer visible to any snapshot.

        These are the ``CT`` of the paper's Algorithm 1: committed and
        no longer active (no live snapshot predates their commit).
        """
        with self._lock:
            watermark = self.oldest_active_start_ts()
            reclaimable = [
                t
                for t in self.committed_pending_gc
                if t.commit_ts is not None and t.commit_ts < watermark
            ]
            self.committed_pending_gc = [
                t for t in self.committed_pending_gc if t not in reclaimable
            ]
            return reclaimable
