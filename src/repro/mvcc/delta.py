"""Undo deltas: the unit of versioning, and later of migration.

Every in-place modification of a vertex or edge produces one
:class:`Delta` describing how to *undo* it.  Applying the delta chain
head-to-tail therefore walks the object backwards through time —
exactly the "newest-to-oldest" version chain of the paper's data model.

A delta also carries the transaction-time interval of the version it
reconstructs: ``tt_start`` is copied from the object when the delta is
created, ``tt_end`` is stamped with the creator transaction's commit
timestamp at commit (section 4.1, "Assigning transaction-time").  The
garbage collector hands exactly these fields to ``Migrate()``.
"""

from __future__ import annotations

import enum
from typing import Any, Optional, TYPE_CHECKING

from repro.common.timeutil import MAX_TIMESTAMP

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.mvcc.transaction import CommitInfo


class DeltaAction(enum.Enum):
    """What undoing this delta does to the materialized object state."""

    #: Restore a property to its previous value (``payload`` is
    #: ``(name, old_value)``; ``old_value`` ``None`` removes it).
    SET_PROPERTY = "set_property"
    #: Re-add a label removed by the transaction.
    ADD_LABEL = "add_label"
    #: Remove a label added by the transaction.
    REMOVE_LABEL = "remove_label"
    #: Re-attach an out-edge that the transaction detached
    #: (``payload`` is ``(edge_gid, edge_type, other_gid)``).
    ADD_OUT_EDGE = "add_out_edge"
    #: Re-attach an in-edge that the transaction detached.
    ADD_IN_EDGE = "add_in_edge"
    #: Detach an out-edge that the transaction attached.
    REMOVE_OUT_EDGE = "remove_out_edge"
    #: Detach an in-edge that the transaction attached.
    REMOVE_IN_EDGE = "remove_in_edge"
    #: Undo a delete: the older version exists.
    RECREATE_OBJECT = "recreate_object"
    #: Undo a create: the object did not exist before.
    DELETE_OBJECT = "delete_object"

#: Actions that change graph topology rather than object content; the
#: paper stores these under the ``VE`` key prefix and timestamps them
#: with the vertex's *structural* transaction-time field.
STRUCTURAL_ACTIONS = frozenset(
    {
        DeltaAction.ADD_OUT_EDGE,
        DeltaAction.ADD_IN_EDGE,
        DeltaAction.REMOVE_OUT_EDGE,
        DeltaAction.REMOVE_IN_EDGE,
    }
)


class Delta:
    """One undo record in an object's version chain.

    Attributes
    ----------
    action, payload:
        The undo operation (see :class:`DeltaAction`).
    commit_info:
        Shared with every delta of the creating transaction; resolves
        to the commit timestamp once that transaction commits.
    next:
        The next-older delta of the same object (chain link).
    tt_start / tt_end:
        Transaction-time interval of the *version this delta
        reconstructs*.  ``tt_end`` stays ``MAX_TIMESTAMP`` until the
        creating transaction commits.
    """

    __slots__ = (
        "action",
        "payload",
        "commit_info",
        "next",
        "tt_start",
        "tt_end",
        "object_kind",
        "object_gid",
    )

    def __init__(
        self,
        action: DeltaAction,
        payload: Any,
        commit_info: "CommitInfo",
        object_kind: str,
        object_gid: int,
        tt_start: int,
    ) -> None:
        self.action = action
        self.payload = payload
        self.commit_info = commit_info
        self.next: Optional[Delta] = None
        self.tt_start = tt_start
        self.tt_end = MAX_TIMESTAMP
        self.object_kind = object_kind  # "vertex" or "edge"
        self.object_gid = object_gid

    @property
    def is_structural(self) -> bool:
        """True when the delta records a topology change (``VE`` data)."""
        return self.action in STRUCTURAL_ACTIONS

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Delta({self.action.value}, {self.object_kind}#{self.object_gid},"
            f" tt=[{self.tt_start},{self.tt_end}))"
        )
