"""Unified observability: metrics registry, trace spans, slow-query log.

This module is the one place the engine's measurement plumbing lives
(see ``docs/OBSERVABILITY.md`` for the full metrics catalog and span
taxonomy):

:class:`MetricsRegistry`
    Counters, gauges, and histograms (bounded ring-buffer reservoirs —
    deterministic, no sampling randomness) plus *section providers*:
    callbacks like ``AeonG.metrics`` whose dictionaries are merged into
    every export.  Two exporters: :meth:`MetricsRegistry.as_dict`
    (JSON-ready) and :meth:`MetricsRegistry.prometheus_text` (the
    Prometheus text exposition format, flattened section names).
:class:`Tracer`
    Lightweight context-manager spans with per-thread nesting, an
    injectable clock (deterministic tests), and a bounded ring of
    finished spans.  Span durations also feed per-name histograms in
    the registry.  When observability is disabled, :meth:`Tracer.span`
    returns a shared no-op singleton — no allocation, two attribute
    loads — so instrumented hot paths (``engine.commit``, ``kv.flush``,
    ``history.fetch``) cost nothing measurable.
:class:`SlowQueryLog`
    A ring buffer of statements slower than a threshold, recorded at
    the statement boundary in the query executor.
:class:`Observability`
    The per-engine facade bundling the pieces above; constructed from
    an :class:`ObservabilityConfig` by ``AeonG.__init__``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass
class ObservabilityConfig:
    """Tuning for the engine's observability layer.

    ``enabled=False`` turns every span and statement recording into a
    guarded no-op fast path (the registry still exists, so explicit
    ``PROFILE`` statements and ``metrics()`` keep working).  ``clock``
    is injectable so tests can assert deterministic durations.
    """

    enabled: bool = True
    clock: Callable[[], float] = time.perf_counter
    max_spans: int = 512
    histogram_reservoir: int = 128
    slow_query_threshold: float = 0.25
    slow_query_capacity: int = 128


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (or is computed on read)."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value


class Histogram:
    """A distribution with exact count/sum/min/max and quantiles from a
    bounded ring-buffer reservoir (the last ``reservoir`` observations —
    deterministic, unlike random sampling, and O(1) per observe)."""

    __slots__ = ("name", "count", "total", "min", "max", "_ring", "_pos")

    def __init__(self, name: str, reservoir: int = 128) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._ring: list = [None] * max(1, reservoir)
        self._pos = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        ring = self._ring
        ring[self._pos] = value
        self._pos = (self._pos + 1) % len(ring)

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (0..1) over the reservoir window."""
        values = sorted(v for v in self._ring if v is not None)
        if not values:
            return None
        index = min(len(values) - 1, int(q * len(values)))
        return values[index]

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


def _sanitize(name: str) -> str:
    """A Prometheus-legal metric-name fragment."""
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _flatten(prefix: str, value: Any, out: list[tuple[str, float]]) -> None:
    """Recursively flatten a metrics dict into (name, number) samples.

    Booleans export as 0/1; strings and ``None`` are skipped (they are
    human diagnostics, not time series)."""
    if isinstance(value, dict):
        for key, item in value.items():
            _flatten(f"{prefix}_{_sanitize(str(key))}", item, out)
    elif isinstance(value, bool):
        out.append((prefix, 1.0 if value else 0.0))
    elif isinstance(value, (int, float)):
        out.append((prefix, float(value)))


class MetricsRegistry:
    """The engine's single metrics surface.

    Native instruments are created with :meth:`counter`, :meth:`gauge`,
    and :meth:`histogram` (get-or-create by name, so call sites need no
    registration ceremony).  Existing per-subsystem reports — the
    ``read_path`` / ``resilience`` / ``integrity`` / ... sections of
    ``AeonG.metrics()`` — plug in as *providers*: callbacks returning a
    dict of sections, merged into every export.
    """

    def __init__(self, default_reservoir: int = 128) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._providers: list[Callable[[], dict]] = []
        self._default_reservoir = default_reservoir

    # -- instruments ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name, fn)
        return gauge

    def histogram(self, name: str, reservoir: Optional[int] = None) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                name, reservoir or self._default_reservoir
            )
        return histogram

    def register_provider(self, fn: Callable[[], dict]) -> None:
        """Merge ``fn()`` (a dict of metric sections) into every export."""
        self._providers.append(fn)

    # -- exporters --------------------------------------------------------

    def sections(self) -> dict[str, Any]:
        """Every provider's sections, merged (later providers win)."""
        merged: dict[str, Any] = {}
        for provider in self._providers:
            report = provider()
            if isinstance(report, dict):
                merged.update(report)
        return merged

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of everything the registry knows."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
            "sections": self.sections(),
        }

    def prometheus_text(self, prefix: str = "aeong") -> str:
        """The Prometheus text exposition format.

        Section dicts flatten to ``{prefix}_{section}_{field}``;
        histograms export as summaries (``_count`` / ``_sum`` plus
        ``quantile`` labels over the reservoir window).
        """
        lines: list[str] = []
        for name, counter in sorted(self._counters.items()):
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {gauge.value}")
        for name, histogram in sorted(self._histograms.items()):
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count {histogram.count}")
            lines.append(f"{metric}_sum {histogram.total}")
            for q in (0.5, 0.9, 0.99):
                value = histogram.quantile(q)
                if value is not None:
                    lines.append(f'{metric}{{quantile="{q}"}} {value}')
        samples: list[tuple[str, float]] = []
        _flatten(prefix, self.sections(), samples)
        for name, value in samples:
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {value}")
        return "\n".join(lines) + "\n"


class SpanRecord:
    """One finished span: name, nesting, timing, outcome."""

    __slots__ = ("name", "parent", "depth", "thread", "start", "end", "error")

    def __init__(self, name, parent, depth, thread, start, end, error) -> None:
        self.name = name
        self.parent = parent
        self.depth = depth
        self.thread = thread
        self.start = start
        self.end = end
        self.error = error

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " !" if self.error else ""
        return f"<span {self.name} d={self.depth} {self.duration:.6f}s{flag}>"


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled.

    One module-level instance serves every call site, so the disabled
    fast path allocates nothing (asserted by the benchmark smoke)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """A live span; records itself on ``__exit__`` (also on the
    exception path, so injected faults cannot corrupt the nesting)."""

    __slots__ = ("_tracer", "name", "parent", "depth", "start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name

    def __enter__(self):
        tracer = self._tracer
        local = tracer._local
        stack = getattr(local, "stack", None)
        if stack is None:
            stack = local.stack = []
        self.parent = stack[-1] if stack else None
        self.depth = len(stack)
        stack.append(self.name)
        self.start = tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb):
        tracer = self._tracer
        end = tracer.clock()
        tracer._local.stack.pop()
        tracer._record(
            SpanRecord(
                self.name,
                self.parent,
                self.depth,
                threading.get_ident(),
                self.start,
                end,
                exc_type is not None,
            )
        )
        return False


class Tracer:
    """Context-manager trace spans with per-thread nesting.

    Finished spans land in a bounded ring (:attr:`finished`) and feed a
    per-name duration histogram in the registry.  The clock is
    injectable for deterministic tests.  While :attr:`enabled` is
    False, :meth:`span` returns the shared :data:`NULL_SPAN` no-op.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_spans: int = 512,
        registry: Optional[MetricsRegistry] = None,
        enabled: bool = True,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.registry = registry
        self.finished: deque[SpanRecord] = deque(maxlen=max_spans)
        self._local = threading.local()
        self.spans_recorded = 0

    def span(self, name: str):
        """A context manager timing one named region."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, name)

    def depth(self) -> int:
        """Current nesting depth on the calling thread (0 = no span
        open — the well-formedness invariant tests assert)."""
        stack = getattr(self._local, "stack", None)
        return len(stack) if stack else 0

    def spans(self, name: Optional[str] = None) -> list[SpanRecord]:
        """Finished spans, optionally filtered by name."""
        if name is None:
            return list(self.finished)
        return [record for record in self.finished if record.name == name]

    def _record(self, record: SpanRecord) -> None:
        self.finished.append(record)
        self.spans_recorded += 1
        if self.registry is not None:
            self.registry.counter("spans").inc()
            self.registry.histogram(f"span.{record.name}.seconds").observe(
                record.duration
            )


@dataclass
class SlowQuery:
    """One slow-query log entry."""

    statement: str
    duration: float
    rows: int


class SlowQueryLog:
    """Ring buffer of the slowest recent statements."""

    def __init__(self, threshold: float = 0.25, capacity: int = 128) -> None:
        self.threshold = threshold
        self.entries: deque[SlowQuery] = deque(maxlen=capacity)

    def record(self, statement: str, duration: float, rows: int) -> bool:
        if duration < self.threshold:
            return False
        self.entries.append(SlowQuery(statement[:500], duration, rows))
        return True

    def __len__(self) -> int:
        return len(self.entries)


class Observability:
    """Per-engine bundle: registry + tracer + slow-query log.

    ``AeonG`` constructs one from the ``observability=`` parameter
    (an :class:`ObservabilityConfig` or None for defaults), threads the
    tracer through the storage stack, and registers ``metrics()`` as a
    registry provider — making the registry the single export surface
    (``engine.metrics_text()``, ``aeong metrics DIR``).
    """

    def __init__(self, config: Optional[ObservabilityConfig] = None) -> None:
        self.config = config if config is not None else ObservabilityConfig()
        self.enabled = self.config.enabled
        self.clock = self.config.clock
        self.registry = MetricsRegistry(self.config.histogram_reservoir)
        self.tracer = Tracer(
            clock=self.config.clock,
            max_spans=self.config.max_spans,
            registry=self.registry,
            enabled=self.enabled,
        )
        self.slow_queries = SlowQueryLog(
            self.config.slow_query_threshold, self.config.slow_query_capacity
        )

    def record_statement(self, statement: str, duration: float, rows: int) -> None:
        """Statement-boundary accounting (called by the executor)."""
        if not self.enabled:
            return
        self.registry.counter("statements").inc()
        self.registry.histogram("statement.seconds").observe(duration)
        if self.slow_queries.record(statement, duration, rows):
            self.registry.counter("slow_queries").inc()

    def self_metrics(self) -> dict[str, Any]:
        """The ``metrics()["observability"]`` section."""
        return {
            "enabled": self.enabled,
            "spans_recorded": self.tracer.spans_recorded,
            "spans_buffered": len(self.tracer.finished),
            "statements": self.registry.counter("statements").value,
            "slow_queries": len(self.slow_queries),
            "slow_query_threshold": self.slow_queries.threshold,
        }
