"""The backend protocol shared by AeonG and both baselines.

Workloads speak in *external* string identifiers (``"person:42"``) and
*event* timestamps; each backend maps those onto its internal
representation.  The protocol covers exactly what the paper's
experiments exercise: applying a timestamped graph-operation stream,
point/slice vertex retrieval (the E-commerce Q1), one-hop temporal
expansion (Q2 / the IS building block), and storage accounting.
"""

from __future__ import annotations

import abc
import bisect
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

# Operation kinds.
ADD_VERTEX = "add_vertex"
UPDATE_VERTEX = "update_vertex"
DELETE_VERTEX = "delete_vertex"
ADD_EDGE = "add_edge"
UPDATE_EDGE = "update_edge"
DELETE_EDGE = "delete_edge"

OP_KINDS = (
    ADD_VERTEX,
    UPDATE_VERTEX,
    DELETE_VERTEX,
    ADD_EDGE,
    UPDATE_EDGE,
    DELETE_EDGE,
)


@dataclass(frozen=True)
class GraphOp:
    """One timestamped graph operation (the unit of Bi-LDBC & co.).

    ``ts`` is the *event* time from the workload; transaction-time
    backends (AeonG) assign their own commit timestamps and keep an
    event-to-commit mapping, while application-level backends (T-GQL,
    Clock-G) store ``ts`` directly — reproducing the paper's point that
    only the engine knows true commit time.
    """

    kind: str
    ts: int
    ext_id: str
    label: str = ""
    src: str = ""
    dst: str = ""
    properties: Optional[dict[str, Any]] = None
    prop: str = ""
    value: Any = None

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")


@dataclass
class NeighborHit:
    """One result of a temporal expansion."""

    edge_type: str
    edge_properties: dict[str, Any]
    neighbor_ext_id: str
    neighbor_properties: dict[str, Any]


class TemporalBackend(abc.ABC):
    """What every compared system must provide."""

    name: str = "backend"

    # -- loading & updates -------------------------------------------------

    @abc.abstractmethod
    def apply(self, op: GraphOp) -> None:
        """Apply one timestamped operation."""

    def apply_all(self, ops: Iterable[GraphOp]) -> int:
        """Apply an operation stream; returns the count applied."""
        count = 0
        for op in ops:
            self.apply(op)
            count += 1
        return count

    # -- time ---------------------------------------------------------------

    @abc.abstractmethod
    def to_query_time(self, event_ts: int) -> int:
        """Map a workload event time onto this backend's query clock."""

    # -- temporal reads ----------------------------------------------------------

    @abc.abstractmethod
    def vertex_at(self, ext_id: str, t: int) -> Optional[dict[str, Any]]:
        """The vertex's properties as of query-time ``t`` (or None)."""

    @abc.abstractmethod
    def vertex_between(self, ext_id: str, t1: int, t2: int) -> list[dict[str, Any]]:
        """Every property-state of the vertex readable in ``[t1, t2]``."""

    @abc.abstractmethod
    def neighbors_at(
        self,
        ext_id: str,
        t: int,
        direction: str = "out",
        edge_type: Optional[str] = None,
    ) -> list[NeighborHit]:
        """One-hop expansion as of ``t``."""

    @abc.abstractmethod
    def neighbors_between(
        self,
        ext_id: str,
        t1: int,
        t2: int,
        direction: str = "out",
        edge_type: Optional[str] = None,
    ) -> list[NeighborHit]:
        """One-hop expansion over the slice ``[t1, t2]``."""

    # -- maintenance / accounting ------------------------------------------------

    def flush(self) -> None:
        """Finish any deferred work (GC + migration, snapshotting...)."""

    def create_index(self) -> None:
        """Build the backend's external-id lookup index (Figure 5(f))."""

    @abc.abstractmethod
    def storage_bytes(self) -> int:
        """Total bytes the backend holds (current + historical)."""


class EventClock:
    """Monotone mapping between event time and commit timestamps.

    AeonG assigns commit timestamps internally; workload queries are
    phrased in event time.  The clock records ``(event_ts, commit_ts)``
    pairs at apply time and answers "which commit timestamp corresponds
    to event time t" with binary search — the translation the paper's
    harness needs to pick uniformly distributed query instants.
    """

    def __init__(self) -> None:
        self._events: list[int] = []
        self._commits: list[int] = []

    def record(self, event_ts: int, commit_ts: int) -> None:
        if self._events and event_ts < self._events[-1]:
            raise ValueError("event timestamps must be non-decreasing")
        self._events.append(event_ts)
        self._commits.append(commit_ts)

    def commit_for_event(self, event_ts: int) -> int:
        """Commit timestamp of the last operation at or before
        ``event_ts`` (0 when nothing happened yet)."""
        index = bisect.bisect_right(self._events, event_ts)
        if index == 0:
            return 0
        return self._commits[index - 1]

    def __len__(self) -> int:
        return len(self._events)
