"""Comparison systems of the paper's evaluation (section 7.1).

The paper compares AeonG/TGDB against two state-of-the-art approaches,
both re-implemented by the authors on the same substrate ("we
implemented them on Memgraph and RocksDB based on their ideas").  We do
the same on our substrates:

- :mod:`repro.baselines.tgql` — the model-based approach (T-GQL):
  history lives as extra Object/Attribute/Value nodes inside one
  ever-growing current graph, timestamps managed at application level;
- :mod:`repro.baselines.clockg` — the snapshot-based approach
  (Clock-G): a time-ordered delta log plus periodic full-graph
  checkpoints in the key-value store; queries restore the nearest
  checkpoint and replay.

All three systems implement :class:`repro.baselines.interface.
TemporalBackend`, so the workload driver and every benchmark treat them
uniformly.
"""

from repro.baselines.aeong import AeonGBackend
from repro.baselines.clockg import ClockGBackend
from repro.baselines.interface import GraphOp, TemporalBackend
from repro.baselines.tgql import TGQLBackend

__all__ = [
    "TemporalBackend",
    "GraphOp",
    "AeonGBackend",
    "TGQLBackend",
    "ClockGBackend",
]
