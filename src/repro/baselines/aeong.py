"""AeonG wrapped in the comparison-backend protocol.

Reads go through the engine's temporal scan/expand operators — lookup
by external id is a label(+property-index) scan, so the indexed and
non-indexed configurations of Figure 5 exercise exactly the code paths
the paper measures.  Writes use a small external-id directory (the
equivalent of the primary-key lookup every real loader performs).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.baselines import interface
from repro.baselines.interface import EventClock, GraphOp, NeighborHit
from repro.core.engine import AeonG
from repro.core.temporal import TemporalCondition
from repro.errors import ExecutionError

#: Property carrying the workload's external identifier.
EXT_PROPERTY = "ext_id"


class AeonGBackend(interface.TemporalBackend):
    """The paper's system under test."""

    name = "aeong"

    def __init__(
        self,
        anchor_interval: int = 10,
        gc_interval_transactions: int = 512,
    ) -> None:
        self.engine = AeonG(
            temporal=True,
            anchor_interval=anchor_interval,
            gc_interval_transactions=gc_interval_transactions,
        )
        self.clock = EventClock()
        self._vertex_gids: dict[str, int] = {}
        self._edge_gids: dict[str, int] = {}
        self._vertex_labels: set[str] = set()
        self._indexed = False

    # -- writes ------------------------------------------------------------

    def apply(self, op: GraphOp) -> None:
        engine = self.engine
        txn = engine.begin()
        try:
            if op.kind == interface.ADD_VERTEX:
                properties = dict(op.properties or {})
                properties[EXT_PROPERTY] = op.ext_id
                gid = engine.create_vertex(txn, [op.label], properties)
                self._vertex_gids[op.ext_id] = gid
                self._vertex_labels.add(op.label)
            elif op.kind == interface.UPDATE_VERTEX:
                gid = self._vertex_gid(op.ext_id)
                engine.set_vertex_property(txn, gid, op.prop, op.value)
            elif op.kind == interface.DELETE_VERTEX:
                gid = self._vertex_gid(op.ext_id)
                engine.delete_vertex(txn, gid, detach=True)
                del self._vertex_gids[op.ext_id]
            elif op.kind == interface.ADD_EDGE:
                gid = engine.create_edge(
                    txn,
                    self._vertex_gid(op.src),
                    self._vertex_gid(op.dst),
                    op.label,
                    dict(op.properties or {}),
                )
                self._edge_gids[op.ext_id] = gid
            elif op.kind == interface.UPDATE_EDGE:
                gid = self._edge_gid(op.ext_id)
                engine.set_edge_property(txn, gid, op.prop, op.value)
            elif op.kind == interface.DELETE_EDGE:
                gid = self._edge_gid(op.ext_id)
                engine.delete_edge(txn, gid)
                del self._edge_gids[op.ext_id]
            else:  # pragma: no cover - GraphOp validates kinds
                raise ExecutionError(f"unknown op {op.kind}")
        except BaseException:
            if txn.is_active:
                engine.abort(txn)
            raise
        commit_ts = engine.commit(txn)
        self.clock.record(op.ts, commit_ts)

    def _vertex_gid(self, ext_id: str) -> int:
        gid = self._vertex_gids.get(ext_id)
        if gid is None:
            raise ExecutionError(f"unknown vertex {ext_id!r}")
        return gid

    def _edge_gid(self, ext_id: str) -> int:
        gid = self._edge_gids.get(ext_id)
        if gid is None:
            raise ExecutionError(f"unknown edge {ext_id!r}")
        return gid

    # -- time --------------------------------------------------------------------

    def to_query_time(self, event_ts: int) -> int:
        return self.clock.commit_for_event(event_ts)

    # -- reads ---------------------------------------------------------------------

    def _find_versions(self, ext_id: str, cond: TemporalCondition):
        """Locate a vertex by external id through the temporal scan."""
        txn = self.engine.begin()
        try:
            label = self._label_of(ext_id)
            yield from self.engine.operators.scan_vertices(
                txn, cond, label, EXT_PROPERTY, ext_id
            )
        finally:
            if txn.is_active:
                self.engine.abort(txn)

    def _label_of(self, ext_id: str) -> Optional[str]:
        # External ids are "<label-ish>:<n>"; workloads use the prefix
        # as the label, letting scans narrow by label like real queries.
        prefix = ext_id.split(":", 1)[0]
        for label in self._vertex_labels:
            if label.lower() == prefix:
                return label
        return None

    def vertex_at(self, ext_id: str, t: int) -> Optional[dict[str, Any]]:
        for view in self._find_versions(ext_id, TemporalCondition.as_of(t)):
            return _public_properties(view.properties)
        return None

    def vertex_between(self, ext_id: str, t1: int, t2: int) -> list[dict[str, Any]]:
        return [
            _public_properties(view.properties)
            for view in self._find_versions(
                ext_id, TemporalCondition.between(t1, t2)
            )
        ]

    def neighbors_at(
        self,
        ext_id: str,
        t: int,
        direction: str = "out",
        edge_type: Optional[str] = None,
    ) -> list[NeighborHit]:
        return self._neighbors(ext_id, TemporalCondition.as_of(t), direction, edge_type)

    def neighbors_between(
        self,
        ext_id: str,
        t1: int,
        t2: int,
        direction: str = "out",
        edge_type: Optional[str] = None,
    ) -> list[NeighborHit]:
        return self._neighbors(
            ext_id, TemporalCondition.between(t1, t2), direction, edge_type
        )

    def _neighbors(self, ext_id, cond, direction, edge_type) -> list[NeighborHit]:
        txn = self.engine.begin()
        try:
            hits: list[NeighborHit] = []
            seen: set[tuple] = set()
            types = {edge_type} if edge_type is not None else None
            for vertex in self.engine.operators.scan_vertices(
                txn, cond, self._label_of(ext_id), EXT_PROPERTY, ext_id
            ):
                for edge, neighbour in self.engine.operators.expand(
                    txn, vertex, cond, direction, types
                ):
                    # A slice query surfaces one source version per
                    # change; the same (edge version, neighbour
                    # version) pair must not repeat per source version.
                    key = (edge.gid, edge.tt, neighbour.gid, neighbour.tt)
                    if key in seen:
                        continue
                    seen.add(key)
                    hits.append(
                        NeighborHit(
                            edge_type=edge.edge_type,
                            edge_properties=dict(edge.properties),
                            neighbor_ext_id=neighbour.properties.get(
                                EXT_PROPERTY, ""
                            ),
                            neighbor_properties=_public_properties(
                                neighbour.properties
                            ),
                        )
                    )
                if cond.is_point:
                    break  # one vertex version -> one expansion
            return hits
        finally:
            if txn.is_active:
                self.engine.abort(txn)

    # -- maintenance -----------------------------------------------------------------

    def flush(self) -> None:
        """Run garbage collection (and therefore migration) to quiescence."""
        self.engine.collect_garbage()

    def create_index(self) -> None:
        for label in sorted(self._vertex_labels):
            if not self.engine.storage.indexes.has_label_property_index(
                label, EXT_PROPERTY
            ):
                self.engine.create_label_property_index(label, EXT_PROPERTY)
        self._indexed = True

    def storage_bytes(self) -> int:
        report = self.engine.storage_report()
        return report.total_bytes


def _public_properties(properties: dict[str, Any]) -> dict[str, Any]:
    """Strip the backend-internal external-id property from results."""
    return {k: v for k, v in properties.items() if k != EXT_PROPERTY}
