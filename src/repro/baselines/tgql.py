"""T-GQL, the model-based baseline (Debrouvier et al., VLDB J. 2021).

History is represented *inside one current graph* as extra nodes, at
the application level:

- every entity is an **Object** node;
- every property of an entity is an **Attribute** node hung off the
  object (``HAS_ATTRIBUTE``);
- every value a property ever took is a **Value** node hung off the
  attribute (``HAS_VALUE``) carrying its interval as plain properties
  (``vt_from`` / ``vt_to``);
- relationships between objects are ordinary edges carrying interval
  properties; an update closes the current edge and inserts a new one.

Timestamps come from the application (the operation's event time) —
the paper's critique of model-based systems.  The graph only ever
grows, which is why T-GQL's query latency rises with the operation
count (Figure 5(d,e)) while its storage stays linear in changes
(Figure 5(a)).

The substrate is our Memgraph stand-in with temporal support disabled.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.baselines import interface
from repro.baselines.interface import GraphOp, NeighborHit
from repro.common.timeutil import MAX_TIMESTAMP
from repro.core.engine import AeonG
from repro.errors import ExecutionError

OBJECT_LABEL = "Object"
ATTRIBUTE_LABEL = "Attribute"
VALUE_LABEL = "Value"
HAS_ATTRIBUTE = "HAS_ATTRIBUTE"
HAS_VALUE = "HAS_VALUE"

#: Edge types that are part of the temporal model, not the user graph.
_MODEL_EDGE_TYPES = {HAS_ATTRIBUTE, HAS_VALUE}


class TGQLBackend(interface.TemporalBackend):
    """The model-based comparison system."""

    name = "tgql"

    def __init__(self, gc_interval_transactions: int = 512) -> None:
        # Vanilla substrate: history is discarded by GC; everything
        # temporal lives in the model nodes below.
        self.engine = AeonG(
            temporal=False,
            gc_interval_transactions=gc_interval_transactions,
        )
        self._objects: dict[str, int] = {}  # ext id -> Object gid
        self._attributes: dict[tuple[int, str], int] = {}
        self._open_value: dict[int, int] = {}  # attribute gid -> Value gid
        self._edges: dict[str, int] = {}  # edge ext id -> current edge gid
        self._indexed = False

    # -- writes ----------------------------------------------------------------

    def apply(self, op: GraphOp) -> None:
        with self.engine.transaction() as txn:
            if op.kind == interface.ADD_VERTEX:
                self._add_vertex(txn, op)
            elif op.kind == interface.UPDATE_VERTEX:
                self._update_vertex(txn, op)
            elif op.kind == interface.DELETE_VERTEX:
                self._delete_vertex(txn, op)
            elif op.kind == interface.ADD_EDGE:
                self._add_edge(txn, op)
            elif op.kind == interface.UPDATE_EDGE:
                self._update_edge(txn, op)
            elif op.kind == interface.DELETE_EDGE:
                self._delete_edge(txn, op)
            else:  # pragma: no cover - GraphOp validates kinds
                raise ExecutionError(f"unknown op {op.kind}")

    def _add_vertex(self, txn, op: GraphOp) -> None:
        gid = self.engine.create_vertex(
            txn,
            [op.label, OBJECT_LABEL],
            {
                "ext_id": op.ext_id,
                "created": op.ts,
                "deleted": MAX_TIMESTAMP,
            },
        )
        self._objects[op.ext_id] = gid
        for name, value in (op.properties or {}).items():
            self._append_value(txn, gid, name, value, op.ts)

    def _update_vertex(self, txn, op: GraphOp) -> None:
        gid = self._object_gid(op.ext_id)
        self._close_value(txn, gid, op.prop, op.ts)
        if op.value is not None:
            self._append_value(txn, gid, op.prop, op.value, op.ts)

    def _delete_vertex(self, txn, op: GraphOp) -> None:
        gid = self._object_gid(op.ext_id)
        self.engine.set_vertex_property(txn, gid, "deleted", op.ts)
        view = self.engine.get_vertex(txn, gid)
        # Close every open value and every open relationship.
        for ref in view.out_edges:
            if ref.edge_type == HAS_ATTRIBUTE:
                attribute_gid = ref.other_gid
                attr_view = self.engine.get_vertex(txn, attribute_gid)
                name = attr_view.properties.get("name", "")
                self._close_value(txn, gid, name, op.ts)
        for ref in list(view.out_edges) + list(view.in_edges):
            if ref.edge_type in _MODEL_EDGE_TYPES:
                continue
            edge = self.engine.get_edge(txn, ref.edge_gid)
            if edge is not None and edge.properties.get("e_to") == MAX_TIMESTAMP:
                self.engine.set_edge_property(txn, ref.edge_gid, "e_to", op.ts)
        del self._objects[op.ext_id]

    def _add_edge(self, txn, op: GraphOp) -> None:
        properties = dict(op.properties or {})
        properties.update(
            {"ext_id": op.ext_id, "e_from": op.ts, "e_to": MAX_TIMESTAMP}
        )
        gid = self.engine.create_edge(
            txn,
            self._object_gid(op.src),
            self._object_gid(op.dst),
            op.label,
            properties,
        )
        self._edges[op.ext_id] = gid

    def _update_edge(self, txn, op: GraphOp) -> None:
        # Relationship versioning: close the current edge, insert a new
        # one with the updated attributes and a fresh interval.
        old_gid = self._edge_gid(op.ext_id)
        edge = self.engine.get_edge(txn, old_gid)
        if edge is None:
            raise ExecutionError(f"edge {op.ext_id!r} not visible")
        self.engine.set_edge_property(txn, old_gid, "e_to", op.ts)
        properties = dict(edge.properties)
        properties[op.prop] = op.value
        properties["e_from"] = op.ts
        properties["e_to"] = MAX_TIMESTAMP
        gid = self.engine.create_edge(
            txn, edge.from_gid, edge.to_gid, edge.edge_type, properties
        )
        self._edges[op.ext_id] = gid

    def _delete_edge(self, txn, op: GraphOp) -> None:
        gid = self._edge_gid(op.ext_id)
        self.engine.set_edge_property(txn, gid, "e_to", op.ts)
        del self._edges[op.ext_id]

    # -- model helpers ----------------------------------------------------------

    def _object_gid(self, ext_id: str) -> int:
        gid = self._objects.get(ext_id)
        if gid is None:
            raise ExecutionError(f"unknown object {ext_id!r}")
        return gid

    def _edge_gid(self, ext_id: str) -> int:
        gid = self._edges.get(ext_id)
        if gid is None:
            raise ExecutionError(f"unknown edge {ext_id!r}")
        return gid

    def _attribute_gid(self, txn, object_gid: int, name: str) -> int:
        key = (object_gid, name)
        gid = self._attributes.get(key)
        if gid is None:
            gid = self.engine.create_vertex(
                txn, [ATTRIBUTE_LABEL], {"name": name}
            )
            self.engine.create_edge(txn, object_gid, gid, HAS_ATTRIBUTE)
            self._attributes[key] = gid
        return gid

    def _append_value(self, txn, object_gid: int, name: str, value, ts: int) -> None:
        attribute_gid = self._attribute_gid(txn, object_gid, name)
        value_gid = self.engine.create_vertex(
            txn,
            [VALUE_LABEL],
            {"value": value, "vt_from": ts, "vt_to": MAX_TIMESTAMP},
        )
        self.engine.create_edge(txn, attribute_gid, value_gid, HAS_VALUE)
        self._open_value[attribute_gid] = value_gid

    def _close_value(self, txn, object_gid: int, name: str, ts: int) -> None:
        attribute_gid = self._attributes.get((object_gid, name))
        if attribute_gid is None:
            return
        value_gid = self._open_value.pop(attribute_gid, None)
        if value_gid is not None:
            self.engine.set_vertex_property(txn, value_gid, "vt_to", ts)

    # -- time ----------------------------------------------------------------------

    def to_query_time(self, event_ts: int) -> int:
        return event_ts  # application-level timestamps

    # -- reads -----------------------------------------------------------------------

    def _find_object(self, txn, ext_id: str):
        """Locate an Object node: indexed lookup or full graph scan —
        the scan over the *whole* (model-inflated) graph is where
        T-GQL's latency goes."""
        indexes = self.engine.storage.indexes
        if self._indexed:
            candidates = indexes.candidates_by_value(
                OBJECT_LABEL, "ext_id", ext_id
            )
            if candidates is not None:
                for gid in candidates:
                    view = self.engine.get_vertex(txn, gid)
                    if view is not None and view.properties.get("ext_id") == ext_id:
                        return view
                return None
        for view in self.engine.iter_vertices(txn):
            if (
                OBJECT_LABEL in view.labels
                and view.properties.get("ext_id") == ext_id
            ):
                return view
        return None

    def vertex_at(self, ext_id: str, t: int) -> Optional[dict[str, Any]]:
        with self.engine.transaction() as txn:
            view = self._find_object(txn, ext_id)
            if view is None:
                return None
            if not (view.properties.get("created", 0) <= t < view.properties.get("deleted", MAX_TIMESTAMP)):
                return None
            return self._properties_at(txn, view, t)

    def _properties_at(self, txn, object_view, t: int) -> dict[str, Any]:
        properties: dict[str, Any] = {}
        for ref in object_view.out_edges:
            if ref.edge_type != HAS_ATTRIBUTE:
                continue
            attribute = self.engine.get_vertex(txn, ref.other_gid)
            if attribute is None:
                continue
            name = attribute.properties.get("name", "")
            for value_ref in attribute.out_edges:
                if value_ref.edge_type != HAS_VALUE:
                    continue
                value_node = self.engine.get_vertex(txn, value_ref.other_gid)
                if value_node is None:
                    continue
                if (
                    value_node.properties.get("vt_from", 0)
                    <= t
                    < value_node.properties.get("vt_to", MAX_TIMESTAMP)
                ):
                    properties[name] = value_node.properties.get("value")
                    break
        return properties

    def vertex_between(self, ext_id: str, t1: int, t2: int) -> list[dict[str, Any]]:
        with self.engine.transaction() as txn:
            view = self._find_object(txn, ext_id)
            if view is None:
                return []
            boundaries = {t1}
            for ref in view.out_edges:
                if ref.edge_type != HAS_ATTRIBUTE:
                    continue
                attribute = self.engine.get_vertex(txn, ref.other_gid)
                if attribute is None:
                    continue
                for value_ref in attribute.out_edges:
                    if value_ref.edge_type != HAS_VALUE:
                        continue
                    value_node = self.engine.get_vertex(txn, value_ref.other_gid)
                    if value_node is None:
                        continue
                    start = value_node.properties.get("vt_from", 0)
                    if t1 <= start <= t2:
                        boundaries.add(start)
            created = view.properties.get("created", 0)
            deleted = view.properties.get("deleted", MAX_TIMESTAMP)
            states = []
            for boundary in sorted(boundaries, reverse=True):
                if created <= boundary < deleted:
                    states.append(self._properties_at(txn, view, boundary))
            return states

    def neighbors_at(
        self,
        ext_id: str,
        t: int,
        direction: str = "out",
        edge_type: Optional[str] = None,
    ) -> list[NeighborHit]:
        return self._neighbors(ext_id, t, t, direction, edge_type, point=True)

    def neighbors_between(
        self,
        ext_id: str,
        t1: int,
        t2: int,
        direction: str = "out",
        edge_type: Optional[str] = None,
    ) -> list[NeighborHit]:
        return self._neighbors(ext_id, t1, t2, direction, edge_type, point=False)

    def _neighbors(
        self, ext_id, t1, t2, direction, edge_type, point
    ) -> list[NeighborHit]:
        with self.engine.transaction() as txn:
            view = self._find_object(txn, ext_id)
            if view is None:
                return []
            refs = []
            if direction in ("out", "both"):
                refs.extend(view.out_edges)
            if direction in ("in", "both"):
                refs.extend(view.in_edges)
            hits: list[NeighborHit] = []
            for ref in refs:
                if ref.edge_type in _MODEL_EDGE_TYPES:
                    continue
                if edge_type is not None and ref.edge_type != edge_type:
                    continue
                edge = self.engine.get_edge(txn, ref.edge_gid)
                if edge is None:
                    continue
                e_from = edge.properties.get("e_from", 0)
                e_to = edge.properties.get("e_to", MAX_TIMESTAMP)
                if point:
                    if not e_from <= t1 < e_to:
                        continue
                elif not (e_from <= t2 and e_to > t1):
                    continue
                neighbour = self.engine.get_vertex(txn, ref.other_gid)
                if neighbour is None or neighbour.properties.get("ext_id") is None:
                    continue
                sample_t = t1 if point else min(t2, max(t1, e_from))
                hits.append(
                    NeighborHit(
                        edge_type=edge.edge_type,
                        edge_properties={
                            k: v
                            for k, v in edge.properties.items()
                            if k not in ("ext_id", "e_from", "e_to")
                        },
                        neighbor_ext_id=neighbour.properties.get("ext_id", ""),
                        neighbor_properties=self._properties_at(
                            txn, neighbour, sample_t
                        ),
                    )
                )
            return hits

    # -- maintenance ------------------------------------------------------------------

    def create_index(self) -> None:
        indexes = self.engine.storage.indexes
        if not indexes.has_label_property_index(OBJECT_LABEL, "ext_id"):
            self.engine.create_label_property_index(OBJECT_LABEL, "ext_id")
        self._indexed = True

    def flush(self) -> None:
        self.engine.collect_garbage()

    def storage_bytes(self) -> int:
        return self.engine.storage_report().total_bytes
