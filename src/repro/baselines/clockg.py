"""Clock-G, the snapshot-based baseline (Massri et al., ICDE 2022).

A temporal graph as checkpoints + deltas in a key-value store:

- every operation is appended to a **time-ordered delta log**;
- every ``N`` operations a **checkpoint** — the complete current graph
  — is materialized into the store (the paper's Figure 5(a) uses
  N=250k on 1M–4M op streams; the workload driver scales N with the
  stream so the snapshot cadence matches);
- a query at time ``t`` loads the newest checkpoint at or before
  ``t``, replays the log deltas in ``(checkpoint, t]`` to rebuild the
  relevant state, and answers from that.

Checkpoints are laid out one KV record per graph object, so the
indexed configuration (Figure 5(f)) can fetch a single object directly
while the non-indexed one scans the whole checkpoint — "with the help
of the index, it can efficiently reconstruct graph objects from
snapshots without checking all graph objects".

Storage is dominated by the materialized checkpoints, reproducing the
paper's headline: Clock-G's footprint grows ~linearly with the number
of checkpoints (4.6× from 1M to 4M ops) while AeonG's stays nearly
flat.
"""

from __future__ import annotations

import bisect
import struct
from typing import Any, Iterator, Optional

from repro.baselines import interface
from repro.baselines.interface import GraphOp, NeighborHit
from repro.common.serde import decode_value, encode_value
from repro.errors import ExecutionError
from repro.kvstore import KVStore, WriteBatch

_LOG_PREFIX = b"L"
_SNAP_PREFIX = b"S"
_TS = struct.Struct(">QI")  # event ts + sequence number


def _log_key(ts: int, seq: int) -> bytes:
    return _LOG_PREFIX + _TS.pack(ts, seq)


def _snap_key(snap_id: int, kind: str, ext_id: str) -> bytes:
    tag = b"V" if kind == "vertex" else b"E"
    return _SNAP_PREFIX + struct.pack(">Q", snap_id) + tag + ext_id.encode()


class _State:
    """The mutable current graph (and the unit a checkpoint copies)."""

    def __init__(self) -> None:
        # ext id -> {"label", "props"}
        self.vertices: dict[str, dict[str, Any]] = {}
        # edge ext id -> {"type", "src", "dst", "props"}
        self.edges: dict[str, dict[str, Any]] = {}
        # vertex ext id -> set of edge ext ids (both directions)
        self.adjacency: dict[str, set[str]] = {}

    def apply(self, op: GraphOp) -> None:
        if op.kind == interface.ADD_VERTEX:
            self.vertices[op.ext_id] = {
                "label": op.label,
                "props": dict(op.properties or {}),
            }
            self.adjacency.setdefault(op.ext_id, set())
        elif op.kind == interface.UPDATE_VERTEX:
            vertex = self.vertices.get(op.ext_id)
            if vertex is None:
                raise ExecutionError(f"unknown vertex {op.ext_id!r}")
            if op.value is None:
                vertex["props"].pop(op.prop, None)
            else:
                vertex["props"][op.prop] = op.value
        elif op.kind == interface.DELETE_VERTEX:
            self.vertices.pop(op.ext_id, None)
            for edge_ext in self.adjacency.pop(op.ext_id, set()):
                edge = self.edges.pop(edge_ext, None)
                if edge is not None:
                    other = (
                        edge["dst"] if edge["src"] == op.ext_id else edge["src"]
                    )
                    self.adjacency.get(other, set()).discard(edge_ext)
        elif op.kind == interface.ADD_EDGE:
            self.edges[op.ext_id] = {
                "type": op.label,
                "src": op.src,
                "dst": op.dst,
                "props": dict(op.properties or {}),
            }
            self.adjacency.setdefault(op.src, set()).add(op.ext_id)
            self.adjacency.setdefault(op.dst, set()).add(op.ext_id)
        elif op.kind == interface.UPDATE_EDGE:
            edge = self.edges.get(op.ext_id)
            if edge is None:
                raise ExecutionError(f"unknown edge {op.ext_id!r}")
            if op.value is None:
                edge["props"].pop(op.prop, None)
            else:
                edge["props"][op.prop] = op.value
        elif op.kind == interface.DELETE_EDGE:
            edge = self.edges.pop(op.ext_id, None)
            if edge is not None:
                self.adjacency.get(edge["src"], set()).discard(op.ext_id)
                self.adjacency.get(edge["dst"], set()).discard(op.ext_id)
        else:  # pragma: no cover - GraphOp validates kinds
            raise ExecutionError(f"unknown op {op.kind}")


class ClockGBackend(interface.TemporalBackend):
    """The snapshot-based comparison system."""

    name = "clockg"

    def __init__(self, snapshot_interval: int = 1000) -> None:
        if snapshot_interval < 1:
            raise ValueError("snapshot_interval must be >= 1")
        self.snapshot_interval = snapshot_interval
        self.kv = KVStore()
        self._state = _State()
        self._ops_since_snapshot = 0
        self._seq = 0
        self._last_ts = 0
        #: (event ts, snapshot id) of each materialized checkpoint
        self._snapshots: list[tuple[int, int]] = []
        self._next_snapshot_id = 0
        self.snapshots_written = 0
        self._indexed = False
        # In-memory read mirrors (the RocksDB memtable/block-cache
        # equivalent, matching what the other backends get): the delta
        # log as a bisectable list, and per-snapshot object dicts used
        # only by the *indexed* configuration — the unindexed one must
        # still scan the physical checkpoint, which is the cost the
        # paper charges to snapshot reconstruction.
        self._log_mirror: list[tuple[int, int, GraphOp]] = []
        self._snapshot_mirror: dict[tuple[int, str, str], dict] = {}

    # -- writes ---------------------------------------------------------------

    def apply(self, op: GraphOp) -> None:
        self._state.apply(op)
        self._seq += 1
        self._last_ts = max(self._last_ts, op.ts)
        self.kv.put(_log_key(op.ts, self._seq), _encode_op(op))
        self._log_mirror.append((op.ts, self._seq, op))
        self._ops_since_snapshot += 1
        if self._ops_since_snapshot >= self.snapshot_interval:
            self._write_snapshot(op.ts)
            self._ops_since_snapshot = 0

    def _write_snapshot(self, ts: int) -> None:
        snap_id = self._next_snapshot_id
        self._next_snapshot_id += 1
        batch = WriteBatch()
        for ext_id, vertex in self._state.vertices.items():
            record = {
                "label": vertex["label"],
                "props": dict(vertex["props"]),
                "edges": sorted(self._state.adjacency.get(ext_id, ())),
            }
            batch.put(_snap_key(snap_id, "vertex", ext_id), encode_value(record))
            self._snapshot_mirror[(snap_id, "vertex", ext_id)] = record
        for ext_id, edge in self._state.edges.items():
            record = {
                "type": edge["type"],
                "src": edge["src"],
                "dst": edge["dst"],
                "props": dict(edge["props"]),
            }
            batch.put(_snap_key(snap_id, "edge", ext_id), encode_value(record))
            self._snapshot_mirror[(snap_id, "edge", ext_id)] = record
        self.kv.write(batch)
        self._snapshots.append((ts, snap_id))
        self.snapshots_written += 1

    # -- time ------------------------------------------------------------------

    def to_query_time(self, event_ts: int) -> int:
        return event_ts

    # -- reconstruction ------------------------------------------------------------

    def _snapshot_before(self, t: int) -> Optional[tuple[int, int]]:
        best = None
        for ts, snap_id in self._snapshots:
            if ts <= t:
                best = (ts, snap_id)
            else:
                break
        return best

    def _log_ops(self, t_from: int, t_to: int) -> Iterator[GraphOp]:
        """Delta-log entries with event ts in ``(t_from, t_to]``."""
        low = bisect.bisect_right(self._log_mirror, t_from, key=lambda e: e[0])
        for index in range(low, len(self._log_mirror)):
            ts, _seq, op = self._log_mirror[index]
            if ts > t_to:
                return
            yield op

    def _vertex_state_at(self, ext_id: str, t: int) -> Optional[dict[str, Any]]:
        """Reconstruct one vertex: checkpoint fetch + log replay."""
        snapshot = self._snapshot_before(t)
        record: Optional[dict[str, Any]] = None
        t_from = -1
        if snapshot is not None:
            snap_ts, snap_id = snapshot
            record = self._fetch_snapshot_vertex(snap_id, ext_id)
            t_from = snap_ts
        state: Optional[dict[str, Any]] = (
            None if record is None else dict(record["props"])
        )
        for op in self._log_ops(t_from, t):
            if op.kind == interface.ADD_VERTEX and op.ext_id == ext_id:
                state = dict(op.properties or {})
            elif op.kind == interface.UPDATE_VERTEX and op.ext_id == ext_id:
                if state is None:
                    continue
                if op.value is None:
                    state.pop(op.prop, None)
                else:
                    state[op.prop] = op.value
            elif op.kind == interface.DELETE_VERTEX and op.ext_id == ext_id:
                state = None
        return state

    def _fetch_snapshot_vertex(self, snap_id: int, ext_id: str):
        if self._indexed:
            # Keyed fetch: one KV point read (the mirror is only used
            # for edge stubs during expansion).
            raw = self.kv.get(_snap_key(snap_id, "vertex", ext_id))
            return None if raw is None else decode_value(raw)
        # Without an index the whole checkpoint is scanned — the cost
        # the paper attributes to snapshot reconstruction.
        prefix = _SNAP_PREFIX + struct.pack(">Q", snap_id) + b"V"
        target = _snap_key(snap_id, "vertex", ext_id)
        found = None
        for key, value in self.kv.scan_prefix(prefix):
            decoded = decode_value(value)
            if key == target:
                found = decoded
        return found

    # -- reads ----------------------------------------------------------------------

    def vertex_at(self, ext_id: str, t: int) -> Optional[dict[str, Any]]:
        return self._vertex_state_at(ext_id, t)

    def vertex_between(self, ext_id: str, t1: int, t2: int) -> list[dict[str, Any]]:
        states: list[dict[str, Any]] = []
        current = self._vertex_state_at(ext_id, t1)
        if current is not None:
            states.append(dict(current))
        for op in self._log_ops(t1, t2):
            if op.ext_id != ext_id:
                continue
            if op.kind == interface.ADD_VERTEX:
                current = dict(op.properties or {})
                states.append(dict(current))
            elif op.kind == interface.UPDATE_VERTEX and current is not None:
                if op.value is None:
                    current.pop(op.prop, None)
                else:
                    current[op.prop] = op.value
                states.append(dict(current))
            elif op.kind == interface.DELETE_VERTEX:
                current = None
        states.reverse()  # newest first, like the other backends
        return states

    def neighbors_at(
        self,
        ext_id: str,
        t: int,
        direction: str = "out",
        edge_type: Optional[str] = None,
    ) -> list[NeighborHit]:
        snapshot = self._snapshot_before(t)
        edges: dict[str, dict[str, Any]] = {}
        t_from = -1
        if snapshot is not None:
            snap_ts, snap_id = snapshot
            t_from = snap_ts
            record = self._fetch_snapshot_vertex(snap_id, ext_id)
            if record is not None:
                for edge_ext in record["edges"]:
                    edge = self._fetch_snapshot_edge(snap_id, edge_ext)
                    if edge is not None:
                        edges[edge_ext] = {
                            "type": edge["type"],
                            "src": edge["src"],
                            "dst": edge["dst"],
                            "props": dict(edge["props"]),
                        }
        alive = self._vertex_state_at(ext_id, t) is not None
        for op in self._log_ops(t_from, t):
            if op.kind == interface.ADD_EDGE and ext_id in (op.src, op.dst):
                edges[op.ext_id] = {
                    "type": op.label,
                    "src": op.src,
                    "dst": op.dst,
                    "props": dict(op.properties or {}),
                }
            elif op.kind == interface.UPDATE_EDGE and op.ext_id in edges:
                if op.value is None:
                    edges[op.ext_id]["props"].pop(op.prop, None)
                else:
                    edges[op.ext_id]["props"][op.prop] = op.value
            elif op.kind == interface.DELETE_EDGE:
                edges.pop(op.ext_id, None)
            elif op.kind == interface.DELETE_VERTEX:
                if op.ext_id == ext_id:
                    edges.clear()
                else:
                    edges = {
                        ext: e
                        for ext, e in edges.items()
                        if op.ext_id not in (e["src"], e["dst"])
                    }
        if not alive:
            return []
        hits: list[NeighborHit] = []
        for edge in edges.values():
            if direction == "out" and edge["src"] != ext_id:
                continue
            if direction == "in" and edge["dst"] != ext_id:
                continue
            if edge_type is not None and edge["type"] != edge_type:
                continue
            other = edge["dst"] if edge["src"] == ext_id else edge["src"]
            neighbour = self._vertex_state_at(other, t)
            if neighbour is None:
                continue
            hits.append(
                NeighborHit(
                    edge_type=edge["type"],
                    edge_properties=dict(edge["props"]),
                    neighbor_ext_id=other,
                    neighbor_properties=neighbour,
                )
            )
        return hits

    def neighbors_between(
        self,
        ext_id: str,
        t1: int,
        t2: int,
        direction: str = "out",
        edge_type: Optional[str] = None,
    ) -> list[NeighborHit]:
        # A slice expansion: every neighbour connected at some instant
        # in the range.  Reconstruct at t1, then sweep the log.
        hits = {
            (hit.neighbor_ext_id, hit.edge_type): hit
            for hit in self.neighbors_at(ext_id, t1, direction, edge_type)
        }
        for op in self._log_ops(t1, t2):
            if op.kind == interface.ADD_EDGE and ext_id in (op.src, op.dst):
                if direction == "out" and op.src != ext_id:
                    continue
                if direction == "in" and op.dst != ext_id:
                    continue
                if edge_type is not None and op.label != edge_type:
                    continue
                other = op.dst if op.src == ext_id else op.src
                neighbour = self._vertex_state_at(other, min(op.ts, t2))
                if neighbour is None:
                    continue
                hits[(other, op.label)] = NeighborHit(
                    edge_type=op.label,
                    edge_properties=dict(op.properties or {}),
                    neighbor_ext_id=other,
                    neighbor_properties=neighbour,
                )
        return list(hits.values())

    def _fetch_snapshot_edge(self, snap_id: int, edge_ext: str):
        if self._indexed:
            return self._snapshot_mirror.get((snap_id, "edge", edge_ext))
        raw = self.kv.get(_snap_key(snap_id, "edge", edge_ext))
        return None if raw is None else decode_value(raw)

    # -- maintenance --------------------------------------------------------------------

    def create_index(self) -> None:
        self._indexed = True

    def flush(self) -> None:
        pass  # snapshots are written inline

    def storage_bytes(self) -> int:
        return self.kv.approximate_bytes()


def _encode_op(op: GraphOp) -> bytes:
    return encode_value(
        {
            "k": op.kind,
            "t": op.ts,
            "i": op.ext_id,
            "l": op.label,
            "s": op.src,
            "d": op.dst,
            "p": op.properties,
            "n": op.prop,
            "v": op.value,
        }
    )


def _decode_op(data: bytes) -> GraphOp:
    raw = decode_value(data)
    return GraphOp(
        kind=raw["k"],
        ts=raw["t"],
        ext_id=raw["i"],
        label=raw["l"],
        src=raw["s"],
        dst=raw["d"],
        properties=raw["p"],
        prop=raw["n"],
        value=raw["v"],
    )
