"""Exception hierarchy for the AeonG/TGDB reproduction.

Every error raised by the library derives from :class:`ReproError` so
applications can catch the whole family with a single ``except`` clause.
The hierarchy mirrors the subsystems: storage, transactions, temporal
constraints, and the query language.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class StorageError(ReproError):
    """A failure inside one of the storage engines."""


class KVStoreError(StorageError):
    """A failure inside the key-value store substrate."""


class CorruptionError(KVStoreError):
    """On-disk or in-memory data failed an integrity check."""


class IntegrityError(CorruptionError):
    """A history record failed verification, or a temporal read touched
    a quarantined transaction-time range.

    Raised when a record's payload checksum does not match, when the
    scrubber's invariant checks prove a reconstruction chain damaged,
    and on temporal reads over a quarantined TT range (under
    ``degraded_reads="raise"``; the ``current-only`` policy degrades
    instead).  Derives from :class:`CorruptionError`, so it feeds the
    history-store circuit breaker like any other storage failure.
    """


class FaultInjected(StorageError):
    """A deliberate I/O failure injected by an armed failpoint.

    Raised by :mod:`repro.faults` when a site is armed in ``error``
    mode; stands in for EIO/ENOSPC-style failures the storage stack
    must survive without corrupting state.
    """


class TransactionError(ReproError):
    """Base class for transaction-level failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted and its effects rolled back."""


class SerializationConflict(TransactionAborted):
    """A write-write conflict was detected under snapshot isolation."""


class TransactionStateError(TransactionError):
    """An operation was attempted on a finished or unknown transaction."""


class TransactionTimeout(TransactionAborted):
    """The transaction outlived its deadline and was aborted by the
    watchdog.

    Raised on the *next* operation the owner attempts: the watchdog
    rolled the transaction back in the background (so a leaked
    ``begin()`` cannot pin the GC watermark forever), and the owner
    learns about it here.
    """


class OverloadError(TransactionError):
    """Admission control rejected the transaction.

    The engine's concurrent-transaction gate was full and the request
    waited past the queue deadline.  Backpressure, not a bug: retry
    later or shed the work.
    """


class DegradedModeError(ReproError):
    """The history store is unavailable and the engine is degraded.

    While the history-store circuit breaker is open, temporal reads
    raise this (under ``degraded_reads="raise"``) and migration epochs
    pause (their transactions stay requeued — no history is lost).
    Current-store reads and writes keep working throughout.
    """


class GraphError(ReproError):
    """Base class for graph-layer failures."""


class VertexNotFound(GraphError):
    """The referenced vertex does not exist (or is not visible)."""

    def __init__(self, gid: int) -> None:
        super().__init__(f"vertex gid={gid} not found")
        self.gid = gid


class EdgeNotFound(GraphError):
    """The referenced edge does not exist (or is not visible)."""

    def __init__(self, gid: int) -> None:
        super().__init__(f"edge gid={gid} not found")
        self.gid = gid


class ConstraintViolation(GraphError):
    """A temporal-graph constraint from paper section 2.3 was violated."""


class TemporalError(ReproError):
    """Base class for temporal-model failures."""


class InvalidInterval(TemporalError):
    """An interval with ``start > end`` (or other malformed bounds)."""


class ImmutableHistoryError(TemporalError):
    """An attempt to modify historical graph objects or transaction time.

    The transaction-time model forbids users from assigning transaction
    time or editing historical versions (constraints 2 and 3 of the
    transaction-time data model).
    """


class ProtocolError(ReproError):
    """A malformed or out-of-order message on the wire protocol.

    Raised by the serving layer (:mod:`repro.server`) for oversized or
    unparseable frames, requests before the handshake, and unknown
    operations.  Never retryable: the client sent something the
    protocol spec (``docs/SERVING.md``) forbids.
    """


class ReplicationError(ReproError):
    """Base class for primary/replica replication failures
    (:mod:`repro.replication`; documented in ``docs/REPLICATION.md``)."""


class NotPrimaryError(ReplicationError):
    """A write was routed to a replica.

    Replicas apply the primary's WAL stream and serve snapshot reads;
    mutations must go to the primary.  Carries ``primary_address``
    (``"host:port"`` or ``None``) so a failing-over client can
    re-resolve without a directory service.  Retryable on the wire:
    the same statement succeeds once the client reaches the primary
    (or this node is promoted).
    """

    def __init__(self, message: str, primary_address=None) -> None:
        super().__init__(message)
        self.primary_address = primary_address


class ReplicationFencedError(ReplicationError):
    """A replication message from a stale epoch was rejected.

    After a failover promotion the cluster epoch advances and the
    promoted node's fencing token (its last applied commit timestamp)
    seals history below it.  A zombie primary — one that kept serving
    after its lease expired — ships records under the old epoch; they
    are rejected with this error instead of silently forking history.
    """


class ReplicationDivergedError(ReplicationError):
    """A replica's applied watermark is ahead of its primary's.

    The replica holds commits the primary never shipped — the
    signature of a demoted primary rejoining with unacknowledged WAL
    records.  Replication stops; the diverged node must be resynced
    from a fresh copy (see ``docs/REPLICATION.md``).
    """


class ReplicationResyncRequired(ReplicationError):
    """The primary's WAL no longer contains the records a replica needs.

    Checkpoint truncation is fenced for *registered* replicas, but a
    replica attaching below the primary's truncation fence (e.g. a
    brand-new replica joining after the primary checkpointed) must
    bootstrap from a copy of the primary's data directory instead of
    the WAL stream.
    """


class ReplicationTimeout(ReplicationError):
    """Synchronous replication could not confirm the commit in time.

    The transaction **is** durably committed on the primary, but no
    replica acknowledged applying it within ``sync_timeout``.  The
    outcome is not lost — the record ships when a replica catches up —
    but callers requiring the synchronous guarantee must treat the
    write as unconfirmed.  Deliberately *not* retryable on the wire:
    resending the statement would double-apply it.
    """


class ServerError(ReproError):
    """A structured error response received from an AeonG server.

    Raised by the client in :mod:`repro.server.client` when a request
    comes back ``ok=false``.  Carries the server's error taxonomy
    fields so callers (and the retrying client itself) can decide what
    to do next: ``code`` (the taxonomy identifier, e.g.
    ``"OVERLOADED"``), ``retryable`` (whether retrying the same request
    can succeed), and ``retry_after`` (the server's backoff hint in
    seconds, or ``None``).
    """

    def __init__(
        self,
        code: str,
        message: str,
        retryable: bool = False,
        retry_after=None,
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.retryable = retryable
        self.retry_after = retry_after


class QueryError(ReproError):
    """Base class for query-language failures."""


class LexerError(QueryError):
    """The query text could not be tokenized."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(QueryError):
    """The token stream does not form a valid query."""


class PlanningError(QueryError):
    """A semantically invalid query (unknown variable, bad projection)."""


class ExecutionError(QueryError):
    """A runtime failure while executing a query plan."""
