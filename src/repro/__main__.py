"""``python -m repro`` — the interactive temporal graph shell."""

import sys

from repro.cli import main

sys.exit(main())
