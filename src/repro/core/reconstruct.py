"""Applying history records backwards: version reconstruction.

Reconstruction starts from a *base* — the oldest unreclaimed version in
the current store, an anchor from the history store, or a blank
placeholder for fully reclaimed objects — and repeatedly applies
backward records (newest first), yielding progressively older versions.
Each application narrows the view's transaction-time interval to the
one stored in the record's key (Example 4 of the paper: "restore by
assembling the 4th anchor with the 5th and 6th delta data").
"""

from __future__ import annotations

from typing import Any

from repro.graph.views import EdgeView, VertexView
from repro.core.deltas import OLDER_EXISTS, OLDER_MISSING
from repro.errors import StorageError


def apply_content_record(view, payload: dict[str, Any], tt_start: int, tt_end: int) -> None:
    """Step ``view`` back through one merged content record."""
    view._own()  # the base may still share containers with its record
    diff = payload.get("p")
    if diff:
        for name, older_value in diff.items():
            if older_value is None:
                view.properties.pop(name, None)
            else:
                view.properties[name] = older_value
    if isinstance(view, VertexView):
        for label in payload.get("la", ()):
            view.labels.add(label)
        for label in payload.get("lr", ()):
            view.labels.discard(label)
    else:
        # Edge records are self-describing: pick up static info if the
        # blank base did not have it yet.
        if not view.edge_type and "et" in payload:
            view.edge_type = payload["et"]
            view.from_gid = payload["f"]
            view.to_gid = payload["t"]
    existence = payload.get("x", 0)
    if existence == OLDER_EXISTS:
        view.exists = True
    elif existence == OLDER_MISSING:
        view.exists = False
    view.tt_start = tt_start
    view.tt_end = tt_end


def apply_topology_record(
    view: VertexView, payload: dict[str, Any], tt_start: int, tt_end: int
) -> None:
    """Step a vertex view back through one merged topology record."""
    from repro.graph.vertex import EdgeRef

    view._own()  # the base may still share containers with its record
    for ref in payload.get("oa", ()):
        view.out_edges.append(EdgeRef(ref[0], ref[1], ref[2]))
    removed = {ref[2] for ref in payload.get("or", ())}
    if removed:
        view.out_edges = [r for r in view.out_edges if r.edge_gid not in removed]
    for ref in payload.get("ia", ()):
        view.in_edges.append(EdgeRef(ref[0], ref[1], ref[2]))
    removed = {ref[2] for ref in payload.get("ir", ())}
    if removed:
        view.in_edges = [r for r in view.in_edges if r.edge_gid not in removed]
    view.tt_start = tt_start
    view.tt_end = tt_end


def vertex_view_from_anchor(
    gid: int, payload: dict[str, Any], tt_start: int, tt_end: int
) -> VertexView:
    """Materialize a vertex version from an anchor's content payload.

    Anchors carry labels and properties only — topology lives in the
    ``VE`` segment and Expand re-derives candidate edges from it, so
    duplicating (possibly huge) adjacency into every anchor would make
    anchors O(degree) for hub vertices without buying anything.
    """
    view = VertexView.blank(gid, tt_start, tt_end)
    view.exists = True
    view.labels = set(payload.get("l", ()))
    view.properties = dict(payload.get("p", {}))
    return view


def edge_view_from_anchor(
    gid: int, payload: dict[str, Any], tt_start: int, tt_end: int
) -> EdgeView:
    """Materialize an edge version from an anchor's full-state payload."""
    view = EdgeView.blank(gid, tt_start, tt_end)
    view.exists = True
    view.edge_type = payload.get("et", "")
    view.from_gid = payload.get("f", -1)
    view.to_gid = payload.get("t", -1)
    view.properties = dict(payload.get("p", {}))
    return view


def anchor_payload_from_view(view) -> dict[str, Any]:
    """Content payload for an anchor record (inverse of the above)."""
    if isinstance(view, VertexView):
        return {
            "l": sorted(view.labels),
            "p": dict(view.properties),
        }
    if isinstance(view, EdgeView):
        return {
            "et": view.edge_type,
            "f": view.from_gid,
            "t": view.to_gid,
            "p": dict(view.properties),
        }
    raise StorageError(f"cannot build an anchor from {type(view)!r}")
