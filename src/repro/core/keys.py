"""History-store key codec (paper section 4.2, "KV format").

A key combines the record's segment (``V`` vertex content, ``E`` edge
content, ``T`` graph topology — the paper's ``VE``), the kind suffix
(``A`` anchor, ``D`` delta), the graph identifier, and the version's
transaction-time interval::

    segment(1) | kind(1) | gid(8, big-endian) | tt_end(8) | tt_start(8)

Byte-wise lexicographic order therefore clusters one object's history
contiguously per (segment, kind), sorted by version end time — which is
what the anchor seek and the version walk of ``FetchFromKV`` rely on.
``tt_end`` precedes ``tt_start`` because the reconstruction scans ask
"first record with ``tt_end > t``".
"""

from __future__ import annotations

import struct
from typing import NamedTuple

from repro.errors import CorruptionError

SEGMENT_VERTEX = b"V"
SEGMENT_EDGE = b"E"
SEGMENT_TOPOLOGY = b"T"

KIND_ANCHOR = b"A"
KIND_DELTA = b"D"

_SEGMENTS = (SEGMENT_VERTEX, SEGMENT_EDGE, SEGMENT_TOPOLOGY)
_KINDS = (KIND_ANCHOR, KIND_DELTA)

_GID = struct.Struct(">Q")
_TT = struct.Struct(">QQ")

KEY_LENGTH = 2 + 8 + 16


class HistoryKey(NamedTuple):
    """Decoded form of a history-store key."""

    segment: bytes
    kind: bytes
    gid: int
    tt_start: int
    tt_end: int


def encode_key(
    segment: bytes, kind: bytes, gid: int, tt_start: int, tt_end: int
) -> bytes:
    """Build the sortable byte key for one history record."""
    if segment not in _SEGMENTS:
        raise ValueError(f"unknown segment {segment!r}")
    if kind not in _KINDS:
        raise ValueError(f"unknown kind {kind!r}")
    if gid < 0 or tt_start < 0 or tt_end < 0:
        raise ValueError("gid and timestamps must be non-negative")
    return segment + kind + _GID.pack(gid) + _TT.pack(tt_end, tt_start)


def decode_key(key: bytes) -> HistoryKey:
    """Parse a key produced by :func:`encode_key`."""
    if len(key) != KEY_LENGTH:
        raise CorruptionError(f"history key has length {len(key)}")
    segment = key[0:1]
    kind = key[1:2]
    if segment not in _SEGMENTS or kind not in _KINDS:
        raise CorruptionError(f"bad history key prefix {key[:2]!r}")
    (gid,) = _GID.unpack_from(key, 2)
    tt_end, tt_start = _TT.unpack_from(key, 10)
    return HistoryKey(segment, kind, gid, tt_start, tt_end)


def object_prefix(segment: bytes, kind: bytes, gid: int) -> bytes:
    """Prefix covering every record of one object in one segment/kind."""
    if segment not in _SEGMENTS:
        raise ValueError(f"unknown segment {segment!r}")
    if kind not in _KINDS:
        raise ValueError(f"unknown kind {kind!r}")
    return segment + kind + _GID.pack(gid)


def seek_key_after(segment: bytes, kind: bytes, gid: int, t: int) -> bytes:
    """Smallest key of ``gid`` whose ``tt_end`` exceeds ``t``.

    Seeking here and scanning forward visits the object's versions that
    end strictly after ``t`` — the entry point of both the anchor seek
    and the delta walk in ``FetchFromKV``.
    """
    return object_prefix(segment, kind, gid) + _TT.pack(t + 1, 0)


def segment_prefix(segment: bytes, kind: bytes) -> bytes:
    """Prefix covering a whole segment/kind (e.g. every vertex delta)."""
    if segment not in _SEGMENTS:
        raise ValueError(f"unknown segment {segment!r}")
    if kind not in _KINDS:
        raise ValueError(f"unknown kind {kind!r}")
    return segment + kind
