"""Temporal Scan and Expand operators (paper Algorithms 2 and 3).

The operators merge three sources of versions, on demand ("reconstruct
as needed" — no full snapshot is ever materialized):

1. the current version, via ordinary MVCC visibility;
2. unreclaimed historical versions still chained in the current store,
   surfaced by stepping the undo chain;
3. reclaimed versions in the historical store, reconstructed by
   :meth:`~repro.core.history_store.HistoricalStore.fetch_versions`.

A time-point query stops at the first version satisfying the temporal
condition (the ``flag`` of Algorithm 2); a time-slice query collects
every satisfying version.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.timeutil import MAX_TIMESTAMP
from repro.core.history_store import HistoricalStore
from repro.core.temporal import TemporalCondition, intersects
from repro.graph.storage import GraphStorage
from repro.graph.vertex import EdgeRef
from repro.graph.views import (
    EdgeView,
    VertexView,
    oldest_unreclaimed_view,
    version_iterator,
)
from repro.mvcc.delta import DeltaAction
from repro.mvcc.transaction import CommitStatus, Transaction


class TemporalOpStats:
    """Counters for the temporal operators, split by version source.

    ``current_hits`` counts versions served from the current store
    (MVCC-visible heads plus unreclaimed undo-chain versions — lines
    SnapshotCheck/TemporalCheck of Algorithm 2); reclaimed-version hits
    are counted by the history store as
    ``read_path.versions_served``, so the pair partitions every version
    a temporal read returns.  Exported as ``metrics()["operators"]``
    and snapshotted per-operator by ``PROFILE``.
    """

    __slots__ = ("scans", "expands", "current_hits")

    def __init__(self) -> None:
        self.scans = 0
        self.expands = 0
        self.current_hits = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class TemporalOperators:
    """Built-in temporal support for scan and expand."""

    def __init__(self, storage: GraphStorage, history: HistoricalStore) -> None:
        self.storage = storage
        self.history = history
        self.stats = TemporalOpStats()

    # -- per-object version retrieval (Algorithm 2 core) ------------------

    def vertex_versions(
        self, txn: Transaction, gid: int, cond: TemporalCondition
    ) -> Iterator[VertexView]:
        """Versions of vertex ``gid`` satisfying ``cond``, newest first."""
        yield from self._object_versions("vertex", txn, gid, cond)

    def edge_versions(
        self, txn: Transaction, gid: int, cond: TemporalCondition
    ) -> Iterator[EdgeView]:
        """Versions of edge ``gid`` satisfying ``cond``, newest first."""
        yield from self._object_versions("edge", txn, gid, cond)

    def _object_versions(
        self, object_kind: str, txn: Transaction, gid: int, cond: TemporalCondition
    ) -> Iterator:
        record = (
            self.storage.vertex_record(gid)
            if object_kind == "vertex"
            else self.storage.edge_record(gid)
        )
        if record is None:
            # Fully reclaimed object: the history store is the only source.
            yield from self.history.fetch_versions(object_kind, gid, cond, None)
            return
        # Current + unreclaimed versions (SnapshotCheck then TemporalCheck).
        for view in version_iterator(record, txn):
            if cond.matches(view.tt_start, view.tt_end):
                self.stats.current_hits += 1
                yield view
                if cond.is_point:
                    return  # flag := false
        # Older reclaimed versions, reconstructed from the KV store.
        if not self.history.has_history(object_kind, gid):
            return
        base = oldest_unreclaimed_view(record)
        # Reclaimed records tile the content timeline up to the base's
        # start with half-open intervals, so when the window only abuts
        # the seam (t1 == base.tt_start) nothing older can match — but
        # that relies on the tiling invariant holding.  ``>=`` keeps the
        # fetch decision sound on its own terms (fetching more never
        # loses a version; matches() still rejects at the boundary), so
        # a store whose seam was disturbed by repairs or truncation
        # degrades to a harmless extra lookup instead of a missed
        # version.
        if base.tt_start >= cond.t1:
            yield from self.history.fetch_versions(object_kind, gid, cond, base)

    # -- scan (Algorithm 2) ----------------------------------------------------

    def scan_vertices(
        self,
        txn: Transaction,
        cond: TemporalCondition,
        label: Optional[str] = None,
        prop: Optional[str] = None,
        value=None,
    ) -> Iterator[VertexView]:
        """All vertex versions satisfying ``cond`` (plus optional label /
        property-equality filters), grouped per vertex, newest first.

        Uses a label(+property) index when one exists; the index holds
        current-store candidates, so the indexed path skips objects
        whose every trace has been reclaimed (the same trade the
        paper's implementation makes — indexes live in the current
        store).
        """
        self.stats.scans += 1
        candidates = self._index_candidates(label, prop, value)
        if candidates is not None:
            for gid in sorted(candidates):
                yield from self._filtered_versions(txn, gid, cond, label, prop, value)
            return
        seen: set[int] = set()
        for record in self.storage.iter_vertex_records():
            seen.add(record.gid)
            head = record.delta_head
            if cond.is_point and record.tt_start <= cond.t1:
                # The visible current version *is* the version at t
                # (Algorithm 2's flag, decided without touching the
                # chain) — provided the head is committed within our
                # snapshot so the in-place state is the visible one.
                info = head.commit_info if head is not None else None
                if info is None or (
                    info.status == CommitStatus.COMMITTED
                    and info.commit_ts is not None
                    and info.commit_ts <= txn.start_ts
                ):
                    # Visibility is settled before the deleted check:
                    # only a head committed within our snapshot (or no
                    # head at all) reaches this branch, so the in-place
                    # ``deleted`` flag is the state at t.  A head that
                    # is in-flight, uncommitted-ours, aborted-but-not-
                    # yet-unlinked, or newer than the snapshot falls
                    # through to the chain walk below, which applies
                    # the usual snapshot check per delta.
                    if record.deleted:
                        continue  # already deleted at t: no version
                    if label is not None and label not in record.labels:
                        continue
                    if prop is not None and record.properties.get(prop) != value:
                        continue
                    self.stats.current_hits += 1
                    yield VertexView(record)
                    continue
            if head is None and not self.history.has_history(
                "vertex", record.gid
            ):
                # Fast path: a single-version object.  Filter on the
                # record directly, skipping view materialization — this
                # is what keeps an unindexed temporal scan close to a
                # plain Memgraph scan on mostly-static graphs.
                if record.deleted:
                    continue
                if label is not None and label not in record.labels:
                    continue
                if prop is not None and record.properties.get(prop) != value:
                    continue
                if cond.matches(record.tt_start, MAX_TIMESTAMP):
                    self.stats.current_hits += 1
                    yield VertexView(record)
                continue
            yield from self._filtered_versions(
                txn, record.gid, cond, label, prop, value
            )
        # Vertices that exist only in the history store.
        for gid in self.history.sorted_known_gids("vertex"):
            if gid not in seen:
                yield from self._filtered_versions(
                    txn, gid, cond, label, prop, value
                )

    def _index_candidates(self, label, prop, value) -> Optional[set[int]]:
        if label is None:
            return None
        indexes = self.storage.indexes
        if prop is not None and value is not None:
            by_value = indexes.candidates_by_value(label, prop, value)
            if by_value is not None:
                return by_value
        return indexes.candidates_by_label(label)

    def _filtered_versions(
        self, txn, gid, cond, label, prop, value
    ) -> Iterator[VertexView]:
        if not self._may_match(gid, label, prop, value):
            return
        for view in self.vertex_versions(txn, gid, cond):
            if label is not None and label not in view.labels:
                continue
            if prop is not None and view.properties.get(prop) != value:
                continue
            yield view

    def _may_match(self, gid: int, label, prop, value) -> bool:
        """Cheap, sound pruning for label / property-equality filters.

        A version of the vertex can carry ``label`` (resp. ``prop ==
        value``) only if the label (resp. the value) occurs in the
        current record, an unreclaimed undo delta, or a reclaimed
        backward diff — every historical state is reachable from those
        three sources, so rejecting here can never lose a match.  This
        keeps unindexed scans from reconstructing every updated vertex
        per query.
        """
        if label is None and prop is None:
            return True
        label_ok = label is None
        prop_ok = prop is None
        record = self.storage.vertex_record(gid)
        if record is not None:
            if not label_ok and label in record.labels:
                label_ok = True
            if not prop_ok and record.properties.get(prop) == value:
                prop_ok = True
            delta = record.delta_head
            while delta is not None and not (label_ok and prop_ok):
                action = delta.action
                if not prop_ok and action == DeltaAction.SET_PROPERTY:
                    name, old_value = delta.payload
                    if name == prop and old_value == value:
                        prop_ok = True
                elif not label_ok and action in (
                    DeltaAction.ADD_LABEL,
                    DeltaAction.REMOVE_LABEL,
                ):
                    if delta.payload == label:
                        label_ok = True
                delta = delta.next
        if label_ok and prop_ok:
            return True
        if not self.history.has_history("vertex", gid):
            return False
        labels_mentioned, values_mentioned = self.history.vertex_mentions(gid)
        if not label_ok and label in labels_mentioned:
            label_ok = True
        if not prop_ok:
            bucket = values_mentioned.get(prop)
            if bucket is not None and value in bucket:
                prop_ok = True
        return label_ok and prop_ok

    # -- expand (Algorithm 3) -----------------------------------------------------

    def expand(
        self,
        txn: Transaction,
        vertex: VertexView,
        cond: TemporalCondition,
        direction: str = "out",
        edge_types: Optional[set[str]] = None,
    ) -> Iterator[tuple[EdgeView, VertexView]]:
        """Expand from one vertex version: yield ``(edge version,
        neighbour version)`` pairs satisfying ``cond``.

        Candidate edges are the union of the current adjacency (incl.
        unreclaimed structural history) and the history store's
        topology records (``EdgeRead`` ∪ ``FetchFromKV``-VE); each
        candidate is then checked per Equation 2 — the edge's TT must
        intersect both the vertex's and the neighbour's.
        """
        if direction not in ("out", "in", "both"):
            raise ValueError(f"bad expand direction {direction!r}")
        self.stats.expands += 1
        refs = self._candidate_refs(vertex.gid, cond, direction, edge_types)
        if len(refs) > 1:
            # Batched FetchFromKV: pull every candidate's records with
            # one bounded range scan per segment instead of one KV seek
            # per edge (and per neighbour) — the expand cost on a
            # high-degree vertex stops scaling with its reclaimed
            # degree.
            self.history.preload_objects(
                "edge", (ref.edge_gid for ref in refs)
            )
            self.history.preload_objects(
                "vertex", (ref.other_gid for ref in refs)
            )
        for ref in refs:
            for edge in self.edge_versions(txn, ref.edge_gid, cond):
                if not intersects(
                    edge.tt_start, edge.tt_end, vertex.tt_start, vertex.tt_end
                ):
                    continue
                for neighbour in self.vertex_versions(txn, ref.other_gid, cond):
                    if intersects(
                        edge.tt_start,
                        edge.tt_end,
                        neighbour.tt_start,
                        neighbour.tt_end,
                    ):
                        yield edge, neighbour
                        if cond.is_point:
                            break
                if cond.is_point:
                    break

    def _candidate_refs(
        self,
        gid: int,
        cond: TemporalCondition,
        direction: str,
        edge_types: Optional[set[str]],
    ) -> list[EdgeRef]:
        want_out = direction in ("out", "both")
        want_in = direction in ("in", "both")
        selected: dict[int, EdgeRef] = {}

        def consider(ref, outgoing: bool) -> None:
            # Type and direction filters apply during collection so
            # high-degree vertices (many LIKES) stay cheap to expand.
            if outgoing and not want_out:
                return
            if not outgoing and not want_in:
                return
            if edge_types is not None and ref[0] not in edge_types:
                return
            if ref[2] not in selected:
                selected[ref[2]] = EdgeRef(ref[0], ref[1], ref[2])

        record = self.storage.vertex_record(gid)
        if record is not None:
            for ref in record.out_edges:
                consider(ref, True)
            for ref in record.in_edges:
                consider(ref, False)
            delta = record.delta_head
            while delta is not None:
                if delta.is_structural:
                    consider(delta.payload, "OUT" in delta.action.name)
                delta = delta.next
        if self.history.has_history("vertex", gid):
            hist_out, hist_in = self.history.topology_refs(gid, cond.t1)
            for ref in hist_out:
                consider(ref, True)
            for ref in hist_in:
                consider(ref, False)
        refs = list(selected.values())
        refs.sort(key=lambda r: r.edge_gid)
        return refs
