"""Whole-engine persistence: snapshot the hybrid store to a directory.

Memgraph persists via periodic snapshots + WAL; RocksDB persists its
SSTables.  This module provides the equivalent for the embedded
engine: ``save()`` writes

- ``current.bin`` — every committed vertex/edge record of the current
  store (labels, properties, adjacency, transaction-time fields);
- ``history/`` — the history store's key-value data (compacted
  SSTables + manifest, via :meth:`repro.kvstore.KVStore.save`);
- ``meta.bin`` — the timestamp oracle position and gid allocator
  frontier, so recovered engines continue the same timelines.

``load()`` rebuilds an engine whose current state, history, and
*future* commit timestamps are consistent with the saved one.  Saving
requires quiescence (no active transactions): like Memgraph's snapshot,
it captures the latest committed state; pending undo chains are
flushed through one final garbage-collection epoch first, so every
historical version lands in the (persisted) history store.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional

from repro.common.serde import decode_value, encode_value
from repro.errors import CorruptionError, StorageError
from repro.faults import DEFAULT_IO, FAILPOINTS, StorageIO
from repro.graph.edge import EdgeRecord
from repro.graph.vertex import EdgeRef, VertexRecord

_FORMAT_VERSION = 1

FAILPOINTS.register("checkpoint.current.write", "checkpoint.meta.write")


def save_engine(
    engine, directory: Path, storage_io: Optional[StorageIO] = None
) -> None:
    """Persist a quiescent engine to ``directory``.

    Write order is the crash-safety contract: history and the current
    store first, ``meta.bin`` last — each atomically (temp + rename).
    ``meta.bin`` is the snapshot's commit point; a directory without a
    readable one is an aborted save and is never loaded.
    """
    if engine.manager.active_count > 0:
        raise StorageError(
            "cannot save with active transactions "
            f"({engine.manager.active_count} running)"
        )
    io = (
        storage_io
        if storage_io is not None
        else getattr(engine, "_storage_io", DEFAULT_IO)
    )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    # Flush every reclaimable undo chain into the history store so the
    # persisted KV data is the complete historical record.
    engine.collect_garbage()
    current = {
        "version": _FORMAT_VERSION,
        "vertices": [
            _encode_vertex(record)
            for record in engine.storage.iter_vertex_records()
        ],
        "edges": [
            _encode_edge(record) for record in engine.storage.iter_edge_records()
        ],
    }
    engine.history.kv.save(directory / "history", storage_io=io)
    io.write_file(
        directory / "current.bin",
        encode_value(current),
        "checkpoint.current.write",
    )
    meta = {
        "version": _FORMAT_VERSION,
        "next_timestamp": engine.manager.oracle.peek(),
        "next_gid": engine.storage._gids.last_allocated + 1,
        "temporal": engine.temporal,
        "anchor_interval": engine.anchor_policy.interval,
        "model": engine.model.value,
    }
    io.write_file(
        directory / "meta.bin", encode_value(meta), "checkpoint.meta.write"
    )


def load_engine(directory: Path, **engine_kwargs):
    """Rebuild an engine saved by :func:`save_engine`.

    Raises :class:`StorageError` when no snapshot exists and
    :class:`CorruptionError` when one exists but fails integrity
    checks (truncated ``meta.bin``, unreadable sstables, …).
    """
    from repro.core.engine import AeonG
    from repro.core.temporal import GraphModel
    from repro.kvstore import KVStore

    directory = Path(directory)
    meta_path = directory / "meta.bin"
    if not meta_path.exists():
        raise StorageError(f"no engine snapshot in {directory}")
    meta = _decode_or_corrupt(meta_path.read_bytes(), meta_path)
    if meta.get("version") != _FORMAT_VERSION:
        raise StorageError(f"unsupported snapshot version {meta.get('version')}")
    kv = KVStore.load(directory / "history")
    engine_kwargs.setdefault("temporal", meta["temporal"])
    engine_kwargs.setdefault("anchor_interval", meta["anchor_interval"])
    engine_kwargs.setdefault("model", GraphModel(meta["model"]))
    engine = AeonG(kv=kv, **engine_kwargs)
    current_path = directory / "current.bin"
    current = _decode_or_corrupt(current_path.read_bytes(), current_path)
    storage = engine.storage
    for raw in current["vertices"]:
        record = _decode_vertex(raw)
        storage._vertices[record.gid] = record
    for raw in current["edges"]:
        record = _decode_edge(raw)
        storage._edges[record.gid] = record
    storage._gids.allocate_up_to(meta["next_gid"])
    engine.manager.oracle.advance_to(meta["next_timestamp"])
    return engine


def _decode_or_corrupt(data: bytes, path: Path):
    """Decode a snapshot file, mapping any parse failure to
    :class:`CorruptionError` (truncated or damaged on disk)."""
    try:
        return decode_value(data)
    except CorruptionError:
        raise
    except Exception as exc:
        raise CorruptionError(f"damaged snapshot file {path}: {exc}") from exc


def _encode_vertex(record: VertexRecord) -> dict[str, Any]:
    return {
        "g": record.gid,
        "l": sorted(record.labels),
        "p": dict(record.properties),
        "o": [list(ref) for ref in record.out_edges],
        "i": [list(ref) for ref in record.in_edges],
        "d": record.deleted,
        "ts": record.tt_start,
        "ss": record.tt_structure_start,
    }


def _decode_vertex(raw: dict[str, Any]) -> VertexRecord:
    record = VertexRecord(raw["g"])
    record.labels = set(raw["l"])
    record.properties = dict(raw["p"])
    record.out_edges = [EdgeRef(r[0], r[1], r[2]) for r in raw["o"]]
    record.in_edges = [EdgeRef(r[0], r[1], r[2]) for r in raw["i"]]
    record.deleted = raw["d"]
    record.tt_start = raw["ts"]
    record.tt_structure_start = raw["ss"]
    return record


def _encode_edge(record: EdgeRecord) -> dict[str, Any]:
    return {
        "g": record.gid,
        "t": record.edge_type,
        "f": record.from_gid,
        "o": record.to_gid,
        "p": dict(record.properties),
        "d": record.deleted,
        "ts": record.tt_start,
    }


def _decode_edge(raw: dict[str, Any]) -> EdgeRecord:
    record = EdgeRecord(raw["g"], raw["t"], raw["f"], raw["o"])
    record.properties = dict(raw["p"])
    record.deleted = raw["d"]
    record.tt_start = raw["ts"]
    return record
