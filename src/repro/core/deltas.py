"""Backward-diff record payloads and per-transaction delta merging.

``Migrate()`` converts the undo deltas of one committed transaction
into history-store records.  Deltas that touched the same object are
merged into a single key-value pair (paper section 4.2: "for the deltas
linked to a same object, we will merge those deltas in one key-value
pair"), with content changes and topology changes landing in separate
segments because they live on separate transaction-time timelines.

Payload schema (serialized with :mod:`repro.common.serde`):

Vertex/edge content record (segments ``V``/``E``)
    ``{"p": {name: older_value_or_None}, "la": [...], "lr": [...],
    "x": 0|1|2, "et"/"f"/"t": edge static info}``
    where applying the record to the *newer* state yields the older
    version: ``p`` restores properties (``None`` removes), ``la``/
    ``lr`` restore labels, ``x = 1`` marks "older version exists" (the
    transaction deleted the object), ``x = 2`` marks "older version
    does not exist" (the transaction created it).

Topology record (segment ``T``, keyed by the vertex gid)
    ``{"oa"/"ia": [[type, other, egid], ...], "or"/"ir": [...]}`` —
    out/in edge stubs to re-attach (``a``) or detach (``r``) when
    stepping backwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.serde import decode_value, encode_value
from repro.core.keys import (
    SEGMENT_EDGE,
    SEGMENT_TOPOLOGY,
    SEGMENT_VERTEX,
)
from repro.errors import StorageError
from repro.mvcc.delta import Delta, DeltaAction

#: ``x`` payload values.
EXISTENCE_UNCHANGED = 0
OLDER_EXISTS = 1  # the transaction deleted the object
OLDER_MISSING = 2  # the transaction created the object


@dataclass
class RecordDraft:
    """One history record before key/value encoding."""

    segment: bytes
    gid: int
    tt_start: int
    tt_end: int
    payload: dict[str, Any] = field(default_factory=dict)

    def encode_payload(self) -> bytes:
        return encode_value(self.payload)


def decode_payload(data: bytes) -> dict[str, Any]:
    """Inverse of :meth:`RecordDraft.encode_payload`."""
    payload = decode_value(data)
    if not isinstance(payload, dict):
        raise StorageError("history record payload is not a mapping")
    return payload


def merge_transaction_deltas(
    deltas: list[Delta],
    edge_statics: Optional[dict[int, tuple[str, int, int]]] = None,
) -> list[RecordDraft]:
    """Merge one committed transaction's deltas into history records.

    ``deltas`` must come from a single transaction's undo buffer, in
    creation order.  ``edge_statics`` supplies ``(edge_type, from_gid,
    to_gid)`` per edge gid so edge records are self-describing even
    after the current-store record is reclaimed.

    Returns at most one content record per object plus one topology
    record per vertex.
    """
    content: dict[tuple[str, int], RecordDraft] = {}
    topology: dict[int, RecordDraft] = {}
    for delta in deltas:
        if delta.is_structural:
            draft = topology.get(delta.object_gid)
            if draft is None:
                draft = RecordDraft(
                    SEGMENT_TOPOLOGY,
                    delta.object_gid,
                    delta.tt_start,
                    delta.tt_end,
                )
                topology[delta.object_gid] = draft
            _merge_structural(draft.payload, delta)
        else:
            key = (delta.object_kind, delta.object_gid)
            draft = content.get(key)
            if draft is None:
                segment = (
                    SEGMENT_VERTEX
                    if delta.object_kind == "vertex"
                    else SEGMENT_EDGE
                )
                draft = RecordDraft(
                    segment, delta.object_gid, delta.tt_start, delta.tt_end
                )
                if segment == SEGMENT_EDGE and edge_statics:
                    static = edge_statics.get(delta.object_gid)
                    if static is not None:
                        draft.payload["et"] = static[0]
                        draft.payload["f"] = static[1]
                        draft.payload["t"] = static[2]
                content[key] = draft
            _merge_content(draft.payload, delta)
    return list(content.values()) + list(topology.values())


def _merge_content(payload: dict[str, Any], delta: Delta) -> None:
    action = delta.action
    if action == DeltaAction.SET_PROPERTY:
        name, old_value = delta.payload
        diff = payload.setdefault("p", {})
        # Creation order means the first delta for a property holds the
        # true pre-transaction value; keep it.
        if name not in diff:
            diff[name] = old_value
    elif action == DeltaAction.ADD_LABEL:
        _toggle(payload, "la", "lr", delta.payload)
    elif action == DeltaAction.REMOVE_LABEL:
        _toggle(payload, "lr", "la", delta.payload)
    elif action == DeltaAction.RECREATE_OBJECT:
        # Keep-first: the undo of the transaction's *earliest* operation
        # decides the pre-transaction existence (e.g. an object created
        # and deleted in one transaction never existed before it).
        payload.setdefault("x", OLDER_EXISTS)
    elif action == DeltaAction.DELETE_OBJECT:
        payload.setdefault("x", OLDER_MISSING)
    else:  # pragma: no cover - structural actions filtered by caller
        raise StorageError(f"{action} is not a content delta")


def _merge_structural(payload: dict[str, Any], delta: Delta) -> None:
    ref = list(delta.payload)  # (edge_type, other_gid, edge_gid)
    action = delta.action
    if action == DeltaAction.ADD_OUT_EDGE:
        _toggle_ref(payload, "oa", "or", ref)
    elif action == DeltaAction.REMOVE_OUT_EDGE:
        _toggle_ref(payload, "or", "oa", ref)
    elif action == DeltaAction.ADD_IN_EDGE:
        _toggle_ref(payload, "ia", "ir", ref)
    elif action == DeltaAction.REMOVE_IN_EDGE:
        _toggle_ref(payload, "ir", "ia", ref)
    else:  # pragma: no cover - content actions filtered by caller
        raise StorageError(f"{action} is not a structural delta")


def _toggle(payload: dict[str, Any], target: str, opposite: str, item) -> None:
    """Add ``item`` to ``target`` unless it cancels one in ``opposite``.

    Within one transaction an add followed by a remove of the same
    label (or edge stub) is a no-op for the merged backward diff.
    """
    other = payload.get(opposite)
    if other is not None and item in other:
        other.remove(item)
        return
    payload.setdefault(target, []).append(item)


def _toggle_ref(
    payload: dict[str, Any], target: str, opposite: str, ref: list
) -> None:
    other = payload.get(opposite)
    if other is not None and ref in other:
        other.remove(ref)
        return
    payload.setdefault(target, []).append(ref)
