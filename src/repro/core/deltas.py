"""Backward-diff record payloads and per-transaction delta merging.

``Migrate()`` converts the undo deltas of one committed transaction
into history-store records.  Deltas that touched the same object are
merged into a single key-value pair (paper section 4.2: "for the deltas
linked to a same object, we will merge those deltas in one key-value
pair"), with content changes and topology changes landing in separate
segments because they live on separate transaction-time timelines.

Payload schema (serialized with :mod:`repro.common.serde`):

Vertex/edge content record (segments ``V``/``E``)
    ``{"p": {name: older_value_or_None}, "la": [...], "lr": [...],
    "x": 0|1|2, "et"/"f"/"t": edge static info}``
    where applying the record to the *newer* state yields the older
    version: ``p`` restores properties (``None`` removes), ``la``/
    ``lr`` restore labels, ``x = 1`` marks "older version exists" (the
    transaction deleted the object), ``x = 2`` marks "older version
    does not exist" (the transaction created it).

Topology record (segment ``T``, keyed by the vertex gid)
    ``{"oa"/"ia": [[type, other, egid], ...], "or"/"ir": [...]}`` —
    out/in edge stubs to re-attach (``a``) or detach (``r``) when
    stepping backwards.

Checksum envelope
-----------------

Every record value staged by ``Migrate()`` is wrapped in a 5-byte
envelope: ``0x01 | crc32(body, 4 bytes BE) | body``.  The sstable
footer only protects a table between encode and decode; the envelope
protects the *record* end to end — a payload bit-flipped after the
table checksum was computed (in the memtable, in a cache, by a buggy
compaction) fails verification at decode time with
:class:`~repro.errors.IntegrityError`.  The leading ``0x01`` byte is
unambiguous because bare serde values always start with an ASCII tag
letter, so records written before this format (no envelope) still
decode — counted as *legacy* rather than rejected.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.serde import decode_value, encode_value
from repro.errors import IntegrityError
from repro.core.keys import (
    SEGMENT_EDGE,
    SEGMENT_TOPOLOGY,
    SEGMENT_VERTEX,
)
from repro.errors import StorageError
from repro.mvcc.delta import Delta, DeltaAction

#: ``x`` payload values.
EXISTENCE_UNCHANGED = 0
OLDER_EXISTS = 1  # the transaction deleted the object
OLDER_MISSING = 2  # the transaction created the object

#: First byte of a checksummed record value (serde tags are ASCII
#: letters, so this never collides with a bare legacy payload).
ENVELOPE_MAGIC = b"\x01"

_ENVELOPE_CRC = struct.Struct(">I")
ENVELOPE_OVERHEAD = len(ENVELOPE_MAGIC) + _ENVELOPE_CRC.size


def encode_record_payload(payload: dict[str, Any]) -> bytes:
    """Serialize a record payload inside the checksum envelope."""
    body = encode_value(payload)
    return ENVELOPE_MAGIC + _ENVELOPE_CRC.pack(zlib.crc32(body)) + body


def decode_record_payload(data: bytes) -> tuple[dict[str, Any], bool]:
    """Decode (and verify) a record value; inverse of
    :func:`encode_record_payload`.

    Returns ``(payload, checksummed)`` — ``checksummed`` is False for
    legacy values written before the envelope existed, which still
    decode (databases saved by older versions keep opening; callers
    count them).  Raises :class:`~repro.errors.IntegrityError` on a
    checksum mismatch or an undecodable body.
    """
    if data[:1] == ENVELOPE_MAGIC:
        if len(data) < ENVELOPE_OVERHEAD:
            raise IntegrityError("history record envelope truncated")
        (expected,) = _ENVELOPE_CRC.unpack_from(data, 1)
        body = data[ENVELOPE_OVERHEAD:]
        if zlib.crc32(body) != expected:
            raise IntegrityError(
                "history record payload checksum mismatch "
                f"(stored {expected:#010x}, computed {zlib.crc32(body):#010x})"
            )
        return _decode_body(body), True
    return _decode_body(data), False


def _decode_body(body: bytes) -> dict[str, Any]:
    try:
        payload = decode_value(body)
    except IntegrityError:
        raise
    except Exception as exc:
        raise IntegrityError(f"undecodable history record payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise IntegrityError("history record payload is not a mapping")
    return payload


@dataclass
class RecordDraft:
    """One history record before key/value encoding."""

    segment: bytes
    gid: int
    tt_start: int
    tt_end: int
    payload: dict[str, Any] = field(default_factory=dict)

    def encode_payload(self) -> bytes:
        return encode_record_payload(self.payload)


def decode_payload(data: bytes) -> dict[str, Any]:
    """Inverse of :meth:`RecordDraft.encode_payload` (envelope-aware)."""
    payload, _checksummed = decode_record_payload(data)
    return payload


def merge_transaction_deltas(
    deltas: list[Delta],
    edge_statics: Optional[dict[int, tuple[str, int, int]]] = None,
) -> list[RecordDraft]:
    """Merge one committed transaction's deltas into history records.

    ``deltas`` must come from a single transaction's undo buffer, in
    creation order.  ``edge_statics`` supplies ``(edge_type, from_gid,
    to_gid)`` per edge gid so edge records are self-describing even
    after the current-store record is reclaimed.

    Returns at most one content record per object plus one topology
    record per vertex.
    """
    content: dict[tuple[str, int], RecordDraft] = {}
    topology: dict[int, RecordDraft] = {}
    for delta in deltas:
        if delta.is_structural:
            draft = topology.get(delta.object_gid)
            if draft is None:
                draft = RecordDraft(
                    SEGMENT_TOPOLOGY,
                    delta.object_gid,
                    delta.tt_start,
                    delta.tt_end,
                )
                topology[delta.object_gid] = draft
            _merge_structural(draft.payload, delta)
        else:
            key = (delta.object_kind, delta.object_gid)
            draft = content.get(key)
            if draft is None:
                segment = (
                    SEGMENT_VERTEX
                    if delta.object_kind == "vertex"
                    else SEGMENT_EDGE
                )
                draft = RecordDraft(
                    segment, delta.object_gid, delta.tt_start, delta.tt_end
                )
                if segment == SEGMENT_EDGE and edge_statics:
                    static = edge_statics.get(delta.object_gid)
                    if static is not None:
                        draft.payload["et"] = static[0]
                        draft.payload["f"] = static[1]
                        draft.payload["t"] = static[2]
                content[key] = draft
            _merge_content(draft.payload, delta)
    return list(content.values()) + list(topology.values())


def _merge_content(payload: dict[str, Any], delta: Delta) -> None:
    action = delta.action
    if action == DeltaAction.SET_PROPERTY:
        name, old_value = delta.payload
        diff = payload.setdefault("p", {})
        # Creation order means the first delta for a property holds the
        # true pre-transaction value; keep it.
        if name not in diff:
            diff[name] = old_value
    elif action == DeltaAction.ADD_LABEL:
        _toggle(payload, "la", "lr", delta.payload)
    elif action == DeltaAction.REMOVE_LABEL:
        _toggle(payload, "lr", "la", delta.payload)
    elif action == DeltaAction.RECREATE_OBJECT:
        # Keep-first: the undo of the transaction's *earliest* operation
        # decides the pre-transaction existence (e.g. an object created
        # and deleted in one transaction never existed before it).
        payload.setdefault("x", OLDER_EXISTS)
    elif action == DeltaAction.DELETE_OBJECT:
        payload.setdefault("x", OLDER_MISSING)
    else:  # pragma: no cover - structural actions filtered by caller
        raise StorageError(f"{action} is not a content delta")


def _merge_structural(payload: dict[str, Any], delta: Delta) -> None:
    ref = list(delta.payload)  # (edge_type, other_gid, edge_gid)
    action = delta.action
    if action == DeltaAction.ADD_OUT_EDGE:
        _toggle_ref(payload, "oa", "or", ref)
    elif action == DeltaAction.REMOVE_OUT_EDGE:
        _toggle_ref(payload, "or", "oa", ref)
    elif action == DeltaAction.ADD_IN_EDGE:
        _toggle_ref(payload, "ia", "ir", ref)
    elif action == DeltaAction.REMOVE_IN_EDGE:
        _toggle_ref(payload, "ir", "ia", ref)
    else:  # pragma: no cover - content actions filtered by caller
        raise StorageError(f"{action} is not a structural delta")


def _toggle(payload: dict[str, Any], target: str, opposite: str, item) -> None:
    """Add ``item`` to ``target`` unless it cancels one in ``opposite``.

    Within one transaction an add followed by a remove of the same
    label (or edge stub) is a no-op for the merged backward diff.
    """
    other = payload.get(opposite)
    if other is not None and item in other:
        other.remove(item)
        return
    payload.setdefault(target, []).append(item)


def _toggle_ref(
    payload: dict[str, Any], target: str, opposite: str, ref: list
) -> None:
    other = payload.get(opposite)
    if other is not None and ref in other:
        other.remove(ref)
        return
    payload.setdefault(target, []).append(ref)
