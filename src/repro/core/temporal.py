"""Temporal graph data model: intervals, Allen's algebra, conditions.

Implements section 2 of the paper:

- half-open intervals ``[start, end)`` for both transaction time (TT)
  and valid time (VT);
- the thirteen relations of Allen's interval algebra, which back the
  valid-time predicates of the query language (``OVERLAPS``,
  ``CONTAINS``, ...);
- :class:`TemporalCondition`, the normalized form of ``TT SNAPSHOT t``
  (time-point) and ``TT BETWEEN t1 AND t2`` (time-slice) used by the
  temporal operators, including Equation 1's match test;
- the three graph data models (transaction-time, valid-time,
  bi-temporal) and the constraint checks of section 2.3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.timeutil import MAX_TIMESTAMP, MIN_TIMESTAMP
from repro.errors import ImmutableHistoryError, InvalidInterval

#: Reserved property names storing an object's valid time.  Valid-time
#: queries are rewritten to plain predicates over these (section 3.2:
#: "valid-time queries can be considered as non-temporal queries with
#: time conditions").
VT_START_PROPERTY = "_vt_start"
VT_END_PROPERTY = "_vt_end"

#: Property names users may not write (transaction time is assigned
#: exclusively by the engine — constraint 2 of section 2.3).
RESERVED_PROPERTY_PREFIX = "_tt"


class GraphModel(enum.Enum):
    """Which timelines a temporal graph carries (section 2.1)."""

    TRANSACTION_TIME = "transaction_time"
    VALID_TIME = "valid_time"
    BITEMPORAL = "bitemporal"


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open time interval ``[start, end)``.

    ``end == MAX_TIMESTAMP`` encodes the paper's ``∞`` (a current
    version / an open valid time).
    """

    start: int
    end: int = MAX_TIMESTAMP

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise InvalidInterval(f"start {self.start} > end {self.end}")

    def contains_point(self, t: int) -> bool:
        """Whether instant ``t`` falls inside the interval."""
        return self.start <= t < self.end

    def contains(self, other: "Interval") -> bool:
        """Whether ``other`` lies fully inside this interval."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one instant."""
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "Interval") -> "Interval | None":
        """The common sub-interval, or None when disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        return Interval(start, end) if start < end else None

    @property
    def is_empty(self) -> bool:
        return self.start == self.end

    @property
    def is_current(self) -> bool:
        """Open-ended: the version has not been superseded."""
        return self.end == MAX_TIMESTAMP

    def __repr__(self) -> str:
        end = "∞" if self.end == MAX_TIMESTAMP else str(self.end)
        return f"[{self.start},{end})"


class AllenRelation(enum.Enum):
    """The thirteen basic relations of Allen's interval algebra."""

    BEFORE = "before"
    AFTER = "after"
    MEETS = "meets"
    MET_BY = "met_by"
    OVERLAPS = "overlaps"
    OVERLAPPED_BY = "overlapped_by"
    STARTS = "starts"
    STARTED_BY = "started_by"
    DURING = "during"
    CONTAINS = "contains"
    FINISHES = "finishes"
    FINISHED_BY = "finished_by"
    EQUALS = "equals"


def allen_relation(a: Interval, b: Interval) -> AllenRelation:
    """Classify the relation of ``a`` with respect to ``b``.

    Exactly one of the thirteen relations holds for any two non-empty
    intervals.
    """
    if a.is_empty or b.is_empty:
        raise InvalidInterval("Allen relations are undefined on empty intervals")
    if a.end < b.start:
        return AllenRelation.BEFORE
    if b.end < a.start:
        return AllenRelation.AFTER
    if a.end == b.start:
        return AllenRelation.MEETS
    if b.end == a.start:
        return AllenRelation.MET_BY
    if a.start == b.start and a.end == b.end:
        return AllenRelation.EQUALS
    if a.start == b.start:
        return AllenRelation.STARTS if a.end < b.end else AllenRelation.STARTED_BY
    if a.end == b.end:
        return AllenRelation.FINISHES if a.start > b.start else AllenRelation.FINISHED_BY
    if b.start < a.start and a.end < b.end:
        return AllenRelation.DURING
    if a.start < b.start and b.end < a.end:
        return AllenRelation.CONTAINS
    if a.start < b.start:
        return AllenRelation.OVERLAPS
    return AllenRelation.OVERLAPPED_BY


def satisfies_allen(a: Interval, b: Interval, relation: AllenRelation) -> bool:
    """Whether ``a <relation> b`` holds.

    For the two predicates the query language exposes most prominently
    we follow SQL:2011 semantics, which are laxer than the basic Allen
    relation of the same name: ``OVERLAPS`` means "shares an instant"
    and ``CONTAINS`` means "b lies within a" (endpoint equality
    allowed).  Every other name tests the exact Allen relation.
    """
    if relation == AllenRelation.OVERLAPS:
        return a.overlaps(b)
    if relation == AllenRelation.CONTAINS:
        return a.contains(b)
    return allen_relation(a, b) == relation


class TemporalCondition:
    """Normalized ``TT SNAPSHOT`` / ``TT BETWEEN`` condition (the ``C``
    of Algorithms 2 and 3)."""

    __slots__ = ("kind", "t1", "t2", "is_point")

    AS_OF = "as_of"
    BETWEEN = "between"

    def __init__(self, kind: str, t1: int, t2: int) -> None:
        if kind not in (self.AS_OF, self.BETWEEN):
            raise InvalidInterval(f"unknown temporal condition kind {kind!r}")
        if t1 > t2:
            raise InvalidInterval(f"t1 {t1} > t2 {t2}")
        if kind == self.AS_OF and t1 != t2:
            raise InvalidInterval("time-point condition requires t1 == t2")
        self.kind = kind
        self.t1 = t1
        self.t2 = t2
        # Plain attribute, not a property: the scan loop reads this per
        # candidate record.
        self.is_point = kind == self.AS_OF

    @classmethod
    def as_of(cls, t: int) -> "TemporalCondition":
        """``TT SNAPSHOT t`` — a time-point query."""
        return cls(cls.AS_OF, t, t)

    @classmethod
    def between(cls, t1: int, t2: int) -> "TemporalCondition":
        """``TT BETWEEN t1 AND t2`` — a time-slice query."""
        return cls(cls.BETWEEN, t1, t2)

    def matches(self, tt_start: int, tt_end: int) -> bool:
        """Equation 1: ``o.TT.st <= C.t2  and  o.TT.ed > C.t1``."""
        return tt_start <= self.t2 and tt_end > self.t1

    def __repr__(self) -> str:
        if self.is_point:
            return f"TT SNAPSHOT {self.t1}"
        return f"TT BETWEEN {self.t1} AND {self.t2}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TemporalCondition)
            and (self.kind, self.t1, self.t2) == (other.kind, other.t1, other.t2)
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.t1, self.t2))


def intersects(a_start: int, a_end: int, b_start: int, b_end: int) -> bool:
    """Equation 2's TT-intersection test between an edge and a vertex.

    The paper prints the equation with a typo (it is unsatisfiable as
    written); the prose — "check if the transaction time of the vertex
    and the edge have an intersection" — is the standard half-open
    overlap test, which we implement.
    """
    return a_start < b_end and b_start < a_end


def check_valid_time_value(vt_start: int, vt_end: int) -> None:
    """Validate a user-supplied valid-time interval."""
    if not (MIN_TIMESTAMP <= vt_start <= vt_end <= MAX_TIMESTAMP):
        raise InvalidInterval(
            f"invalid valid-time interval [{vt_start},{vt_end})"
        )


def check_property_writable(name: str) -> None:
    """Constraint: users never assign transaction time (section 2.3)."""
    if name.startswith(RESERVED_PROPERTY_PREFIX):
        raise ImmutableHistoryError(
            f"property {name!r} is reserved: transaction time is assigned "
            "by the engine only"
        )


def valid_time_of(properties: dict) -> Interval | None:
    """Extract the VT interval from a property map, if present."""
    start = properties.get(VT_START_PROPERTY)
    end = properties.get(VT_END_PROPERTY, MAX_TIMESTAMP)
    if start is None:
        return None
    return Interval(start, end)
