"""Shared measurement types for experiments and monitoring.

The paper's evaluation compares systems on storage consumption and
query latency; every backend in this repo (AeonG and both baselines)
reports through the same :class:`StorageReport` so benchmark numbers
are directly comparable.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class StorageReport:
    """Byte-accurate storage breakdown of one backend."""

    current_bytes: int
    history_bytes: int
    vertex_count: int
    edge_count: int
    history_records: int = 0
    anchors: int = 0

    @property
    def total_bytes(self) -> int:
        return self.current_bytes + self.history_bytes

    def __str__(self) -> str:
        return (
            f"current={self.current_bytes}B history={self.history_bytes}B "
            f"total={self.total_bytes}B vertices={self.vertex_count} "
            f"edges={self.edge_count} records={self.history_records} "
            f"anchors={self.anchors}"
        )


@dataclass
class LatencyRecorder:
    """Collects wall-clock samples; used by the benchmark harness."""

    samples_us: list[float] = field(default_factory=list)

    @contextmanager
    def measure(self):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.samples_us.append((time.perf_counter() - start) * 1e6)

    @property
    def count(self) -> int:
        return len(self.samples_us)

    @property
    def mean_us(self) -> float:
        if not self.samples_us:
            return 0.0
        return sum(self.samples_us) / len(self.samples_us)

    @property
    def p50_us(self) -> float:
        return self._percentile(50.0)

    @property
    def p99_us(self) -> float:
        return self._percentile(99.0)

    def _percentile(self, pct: float) -> float:
        if not self.samples_us:
            return 0.0
        ordered = sorted(self.samples_us)
        rank = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]
