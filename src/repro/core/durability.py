"""Engine-level durability: a logical write-ahead log + checkpoints.

Memgraph persists with periodic snapshots plus a WAL of logical
operations; this module is the equivalent for the embedded engine.
When an :class:`~repro.core.engine.AeonG` is constructed with
``durability_dir``, every committed transaction appends one WAL record
containing its commit timestamp and its logical operations.  Recovery
(:meth:`AeonG.open`) loads the newest checkpoint (if any) and replays
the WAL — *forcing the original commit timestamps and gids*, so the
recovered engine's transaction-time history is bit-for-bit the
original, including versions that were migrated to the history store.

``checkpoint()`` snapshots the engine (see
:mod:`repro.core.persistence`) and truncates the WAL, bounding
recovery time.

Crash-consistency contract
--------------------------

- A checkpoint is installed with write-temp → fsync → atomic-rename;
  the previous checkpoint is retired to ``checkpoint.old`` and only
  removed once the new one is durable.  Recovery falls back to
  ``checkpoint.old`` when the primary is missing or damaged.
- The checkpoint's ``next_timestamp`` is the replay fence: WAL records
  with ``commit_ts < next_timestamp`` are already inside the snapshot
  and are skipped, so the checkpoint-then-truncate pair needs no
  atomicity — a crash between the two double-logs but never
  double-applies.
- Replay classifies a torn *tail* (expected crash residue, silently
  discarded and repaired) separately from interior *corruption* (a
  damaged record followed by valid ones), which is surfaced in the
  :class:`RecoveryReport` and, with ``strict_recovery=True``, raised
  as :class:`~repro.errors.CorruptionError`.

WAL record payload (framed/checksummed by the kvstore WAL machinery)::

    {"ts": commit_ts, "ops": [[opcode, ...args], ...]}

opcodes: ``cv`` create vertex, ``ce`` create edge, ``svp``/``sep`` set
vertex/edge property, ``al``/``rl`` add/remove label, ``dv``/``de``
delete vertex/edge, ``vt`` set valid time.
"""

from __future__ import annotations

import shutil
import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Optional

from repro.common.serde import decode_value, encode_value
from repro.errors import CorruptionError, StorageError
from repro.faults import FAILPOINTS, MODE_PARTIAL_FSYNC, MODE_TORN_WRITE
from repro.kvstore.wal import WalScan, WriteAheadLog

WAL_FILENAME = "engine.wal"
CHECKPOINT_DIRNAME = "checkpoint"
CHECKPOINT_TMP_DIRNAME = "checkpoint.tmp"
CHECKPOINT_OLD_DIRNAME = "checkpoint.old"

#: Batch-level failpoint sites on the group-commit write path: one hit
#: per *batch* (vs ``engine.wal.append``/``engine.wal.sync``, which fire
#: per physical frame write / fsync).  A fault here kills a whole
#: group-commit epoch before any of its commits is acknowledged.
SITE_GROUP_APPEND = "wal.group.append"
SITE_GROUP_FSYNC = "wal.group.fsync"

# ``checkpoint.current.write`` / ``checkpoint.meta.write`` live in
# :mod:`repro.core.persistence`, which is imported lazily; registering
# them here too (idempotent) keeps the full site list discoverable the
# moment :mod:`repro` is imported.
FAILPOINTS.register(
    "engine.wal.append",
    "engine.wal.sync",
    "engine.wal.truncate",
    SITE_GROUP_APPEND,
    SITE_GROUP_FSYNC,
    "checkpoint.current.write",
    "checkpoint.meta.write",
    "checkpoint.retire",
    "checkpoint.install",
    "checkpoint.cleanup",
)


@dataclass
class RecoveryReport:
    """What :meth:`AeonG.open` found and did.

    Surfaced as ``engine.last_recovery`` and under ``metrics()``'s
    ``"recovery"`` key, so operators can tell a clean start from a
    post-crash one — and a routine torn tail from real damage.
    """

    checkpoint_loaded: bool = False
    #: True when the primary checkpoint was unusable and the retired
    #: ``checkpoint.old`` was recovered from instead.
    checkpoint_fallback: bool = False
    transactions_replayed: int = 0
    #: WAL records older than the checkpoint fence (already inside the
    #: snapshot; skipped to avoid double-apply).
    transactions_skipped: int = 0
    bytes_scanned: int = 0
    bytes_discarded: int = 0
    torn_tail: bool = False
    corruption_detected: bool = False
    #: True when a damaged tail was crash-safely truncated away.
    wal_repaired: bool = False

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)


class EngineWal:
    """Append-only log of committed transactions.

    One physical WAL frame holds one *or more* logical transaction
    records: the single-commit path writes one record per frame, while
    the group-commit path (:meth:`append_batch`) packs a whole epoch of
    concurrent commits into one frame — one append, one fsync, shared
    by every commit in the batch.  Because a frame is the unit of the
    framing checksum, a crash mid-batch tears the *whole* frame, and
    none of its commits was acknowledged (acks wait for the shared
    fsync) — recovery discards the torn frame and lands exactly on the
    acked prefix.

    Thread-safe: the async group-commit writer, the replication apply
    path, checkpoint truncation, and catch-up scans serialize on an
    internal lock.
    """

    def __init__(
        self, directory: Path, durability_mode: str = "flush"
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._wal = WriteAheadLog(
            self.directory / WAL_FILENAME,
            durability_mode=durability_mode,
            site_prefix="engine.wal",
        )
        self._lock = threading.RLock()
        self.records_appended = 0
        #: group-commit accounting: physical frames written / fsyncs
        #: issued (telemetry for the ``write_path`` metrics section)
        self.frames_appended = 0
        self.fsyncs = 0

    @property
    def durability_mode(self) -> str:
        return self._wal.durability_mode

    def append(self, commit_ts: int, journal: list[tuple]) -> None:
        """Durably record one committed transaction."""
        self.append_batch([(commit_ts, journal)])

    def append_batch(self, records: list[tuple[int, list[tuple]]]) -> None:
        """Durably record a whole group-commit batch in one frame.

        ``records`` is ``[(commit_ts, ops), ...]`` in commit-timestamp
        order.  The batch is encoded into a single checksummed WAL
        frame, appended once, and (in ``"fsync"`` mode) synced once —
        the group-commit amortization.  Two batch-level failpoint
        sites, ``wal.group.append`` and ``wal.group.fsync``, fire once
        per batch on top of the physical ``engine.wal.append`` /
        ``engine.wal.sync`` sites, so tests can kill a whole epoch
        mid-write (torn batch frame) or mid-sync (half-lost OS buffer).
        """
        if not records:
            return
        ops = [
            (
                b"txn",
                encode_value(
                    {"ts": ts, "ops": [list(op) for op in journal]}
                ),
            )
            for ts, journal in records
        ]
        with self._lock:
            mode = FAILPOINTS.check(SITE_GROUP_APPEND)
            if mode == MODE_TORN_WRITE:
                self._wal.append_torn(ops, SITE_GROUP_APPEND)
            self._wal.append(ops, sync=False)
            self.frames_appended += 1
            if self._wal.fsync_enabled:
                mode = FAILPOINTS.check(SITE_GROUP_FSYNC)
                if mode == MODE_PARTIAL_FSYNC:
                    self._wal.simulate_partial_fsync(SITE_GROUP_FSYNC)
                self._wal.sync()
                self.fsyncs += 1
            self.records_appended += len(records)

    def _scan_frames(
        self, strict: bool = False
    ) -> tuple[list[list[tuple[int, list[tuple]]]], WalScan]:
        """Parse the log into per-frame record lists plus the raw scan.

        Frames are the unit of checksumming and truncation; each inner
        list holds that frame's ``(commit_ts, ops)`` records (more than
        one for a group-commit batch).
        """
        with self._lock:
            scan = self._wal.scan(strict=strict)
        frames: list[list[tuple[int, list[tuple]]]] = []
        for index, batch in enumerate(scan.batches):
            try:
                frame = []
                for _key, payload in batch:
                    if payload is None:
                        continue
                    record = decode_value(payload)
                    frame.append(
                        (record["ts"], [tuple(op) for op in record["ops"]])
                    )
            except Exception as exc:
                if strict:
                    raise CorruptionError(
                        f"engine WAL record {index} has a valid checksum "
                        f"but an undecodable payload: {exc}"
                    ) from exc
                scan.corruption = True
                # Everything from the damaged record on is untrusted.
                del scan.batches[index:]
                del scan.extents[index:]
                break
            frames.append(frame)
        return frames, scan

    def scan(self, strict: bool = False) -> tuple[list, WalScan]:
        """Parse the log into ``[(commit_ts, ops), ...]`` plus the raw
        :class:`~repro.kvstore.wal.WalScan`.

        A record whose framing checksum passes but whose payload fails
        to decode is *corruption*, not a torn tail (torn writes cannot
        produce a valid checksum): ``strict=True`` raises
        :class:`CorruptionError`, otherwise replay stops there and the
        scan is flagged.
        """
        frames, scan = self._scan_frames(strict=strict)
        return [record for frame in frames for record in frame], scan

    def replay(self, strict: bool = False):
        """Yield ``(commit_ts, ops)`` in commit order; stops at a torn
        or corrupted tail (crash semantics)."""
        records, _scan = self.scan(strict=strict)
        yield from records

    def repair(self) -> bool:
        """Crash-safely drop a damaged tail found by the last scan."""
        with self._lock:
            return self._wal.repair()

    def records_with_extents(
        self, strict: bool = False
    ) -> list[tuple[int, list[tuple], int, int]]:
        """``[(commit_ts, ops, start_byte, end_byte), ...]`` — the log
        with each record's byte extent, for fence-aligned truncation
        and replication catch-up scans.  Records packed into one
        group-commit frame share that frame's extent (the frame is the
        smallest truncatable unit)."""
        frames, scan = self._scan_frames(strict=strict)
        return [
            (ts, ops, start, end)
            for frame, (start, end) in zip(frames, scan.extents)
            for ts, ops in frame
        ]

    def records_from(self, from_ts: int) -> list[tuple[int, list[tuple]]]:
        """Records with ``commit_ts >= from_ts``, oldest first — the
        replication stream's catch-up path for ranges that have left
        the primary's in-memory ring (e.g. after a primary restart)."""
        return [
            (ts, ops)
            for ts, ops, _start, _end in self.records_with_extents()
            if ts >= from_ts
        ]

    def truncate(self) -> None:
        with self._lock:
            self._wal.truncate()

    def truncate_keep_from(self, retain_ts: int) -> tuple[int, int]:
        """Drop every record with ``commit_ts < retain_ts``; keep the rest.

        The replication-fenced half of checkpoint truncation: a plain
        :meth:`truncate` would discard records a registered replica has
        not acknowledged yet.  Truncation is *frame-aligned*: a
        group-commit frame is dropped only when every record in it is
        below ``retain_ts`` (keeping an already-acknowledged record is
        harmless — replay and replication both dedupe below their
        fences; dropping an unacknowledged one would strand the
        replica).  Returns ``(records_dropped, highest_dropped_ts)`` —
        the latter is the new truncation fence.
        """
        with self._lock:
            frames, scan = self._scan_frames()
            drop_bytes = 0
            dropped = 0
            fence = 0
            for frame, (_start, end) in zip(frames, scan.extents):
                if any(ts >= retain_ts for ts, _ops in frame):
                    break
                drop_bytes = end
                dropped += len(frame)
                fence = max([fence] + [ts for ts, _ops in frame])
            if drop_bytes:
                self._wal.drop_prefix(drop_bytes)
            return dropped, fence

    def close(self) -> None:
        with self._lock:
            self._wal.close()


def replay_into(engine, wal: EngineWal, min_commit_ts: int = 0,
                strict: bool = False) -> tuple[int, int, WalScan]:
    """Re-execute WAL transactions against ``engine``.

    Records with ``commit_ts < min_commit_ts`` are skipped: they are
    already materialised in the checkpoint the engine was loaded from
    (the crash window between checkpoint install and WAL truncation
    leaves them in the log).  Returns ``(replayed, skipped, scan)``.
    The engine must not journal during replay (the caller suspends
    logging), and replay forces the recorded gids and commit
    timestamps.
    """
    replayed = 0
    skipped = 0
    records, scan = wal.scan(strict=strict)
    for commit_ts, ops in records:
        if commit_ts < min_commit_ts:
            skipped += 1
            continue
        # begin_replay, not begin(): a live begin consumes an oracle
        # timestamp, and concurrent committers pack WAL commit
        # timestamps one apart — replay's own begins would overrun
        # the next record's forced commit timestamp.
        txn = engine.manager.begin_replay()
        try:
            for op in ops:
                _apply_op(engine, txn, op)
        except BaseException:
            if txn.is_active:
                engine.abort(txn)
            raise
        engine.manager.commit(txn, commit_ts=commit_ts)
        replayed += 1
    return replayed, skipped, scan


def _apply_op(engine, txn, op: tuple) -> None:
    code = op[0]
    if code == "cv":
        _code, gid, labels, properties = op
        engine.storage.create_vertex(txn, labels, properties, gid=gid)
    elif code == "ce":
        _code, gid, src, dst, edge_type, properties = op
        engine.storage.create_edge(
            txn, src, dst, edge_type, properties, gid=gid
        )
    elif code == "svp":
        _code, gid, name, value = op
        engine.storage.set_vertex_property(txn, gid, name, value)
    elif code == "sep":
        _code, gid, name, value = op
        engine.storage.set_edge_property(txn, gid, name, value)
    elif code == "al":
        engine.storage.add_label(txn, op[1], op[2])
    elif code == "rl":
        engine.storage.remove_label(txn, op[1], op[2])
    elif code == "dv":
        engine.storage.delete_vertex(txn, op[1], detach=op[2])
    elif code == "de":
        engine.storage.delete_edge(txn, op[1])
    else:
        raise StorageError(f"unknown WAL opcode {code!r}")


def _resolve_checkpoint(directory: Path, engine_kwargs: dict):
    """Load the newest usable checkpoint under ``directory``.

    Returns ``(engine_or_None, fence_ts, used_fallback)``.  Resolution
    order: ``checkpoint`` (primary), then ``checkpoint.old`` (retired
    mid-swap by a crashed :meth:`AeonG.checkpoint`).  A primary that
    exists but is damaged falls back; if the fallback is also unusable
    the damage is not survivable and :class:`CorruptionError`
    propagates — silently starting fresh would drop committed data.
    """
    from repro.core.persistence import load_engine

    primary = directory / CHECKPOINT_DIRNAME
    retired = directory / CHECKPOINT_OLD_DIRNAME
    primary_error: Optional[Exception] = None
    if (primary / "meta.bin").exists():
        try:
            engine = load_engine(primary, **engine_kwargs)
            return engine, engine.manager.oracle.peek(), False
        except (StorageError, CorruptionError) as exc:
            primary_error = exc
    if (retired / "meta.bin").exists():
        try:
            engine = load_engine(retired, **engine_kwargs)
            return engine, engine.manager.oracle.peek(), True
        except (StorageError, CorruptionError):
            pass
    if primary_error is not None:
        raise CorruptionError(
            f"checkpoint at {primary} is damaged and no usable fallback "
            f"exists: {primary_error}"
        ) from primary_error
    return None, 0, False


def open_engine(directory, strict_recovery: bool = False, **engine_kwargs):
    """Open (or create) a durable engine rooted at ``directory``.

    Loads the newest usable checkpoint (falling back to the retired one
    after a mid-swap crash), replays the WAL on top — skipping records
    the checkpoint already contains — repairs any torn tail, and
    returns an engine that continues journaling to the same log, with
    ``engine.last_recovery`` describing what recovery found.
    """
    from repro.core.engine import AeonG

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    durability_mode = engine_kwargs.pop("durability_mode", "flush")
    engine_kwargs.pop("durability_dir", None)  # attached below, post-replay
    # A stale checkpoint.tmp is an aborted save: never valid, remove.
    tmp = directory / CHECKPOINT_TMP_DIRNAME
    if tmp.exists():
        shutil.rmtree(tmp)
    engine, fence_ts, used_fallback = _resolve_checkpoint(
        directory, dict(engine_kwargs, durability_mode=durability_mode)
    )
    loaded = engine is not None
    if engine is None:
        engine = AeonG(durability_mode=durability_mode, **engine_kwargs)
    wal = EngineWal(directory, durability_mode=durability_mode)
    replayed, skipped, scan = replay_into(
        engine, wal, min_commit_ts=fence_ts, strict=strict_recovery
    )
    repaired = wal.repair()
    engine.attach_wal(directory, wal)
    if loaded:
        # A checkpoint implies the WAL has been truncated at some
        # point; replicas fetching below the oldest surviving record
        # must resync.  (A replication-fenced checkpoint keeps records
        # below the checkpoint fence, so key off the log itself.)
        remaining, _scan = wal.scan()
        oldest = remaining[0][0] if remaining else fence_ts
        engine._wal_truncation_fence = max(
            engine._wal_truncation_fence, oldest - 1
        )
    engine.last_recovery = RecoveryReport(
        checkpoint_loaded=loaded,
        checkpoint_fallback=used_fallback,
        transactions_replayed=replayed,
        transactions_skipped=skipped,
        bytes_scanned=scan.bytes_scanned,
        bytes_discarded=scan.bytes_discarded,
        torn_tail=scan.torn_tail,
        corruption_detected=scan.corruption,
        wal_repaired=repaired,
    )
    return engine
