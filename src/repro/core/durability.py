"""Engine-level durability: a logical write-ahead log + checkpoints.

Memgraph persists with periodic snapshots plus a WAL of logical
operations; this module is the equivalent for the embedded engine.
When an :class:`~repro.core.engine.AeonG` is constructed with
``durability_dir``, every committed transaction appends one WAL record
containing its commit timestamp and its logical operations.  Recovery
(:meth:`AeonG.open`) loads the newest checkpoint (if any) and replays
the WAL — *forcing the original commit timestamps and gids*, so the
recovered engine's transaction-time history is bit-for-bit the
original, including versions that were migrated to the history store.

``checkpoint()`` snapshots the engine (see
:mod:`repro.core.persistence`) and truncates the WAL, bounding
recovery time.

WAL record payload (framed/checksummed by the kvstore WAL machinery)::

    {"ts": commit_ts, "ops": [[opcode, ...args], ...]}

opcodes: ``cv`` create vertex, ``ce`` create edge, ``svp``/``sep`` set
vertex/edge property, ``al``/``rl`` add/remove label, ``dv``/``de``
delete vertex/edge, ``vt`` set valid time.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.common.serde import decode_value, encode_value
from repro.errors import StorageError
from repro.kvstore.wal import WriteAheadLog

WAL_FILENAME = "engine.wal"
CHECKPOINT_DIRNAME = "checkpoint"


class EngineWal:
    """Append-only log of committed transactions."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._wal = WriteAheadLog(self.directory / WAL_FILENAME)
        self.records_appended = 0

    def append(self, commit_ts: int, journal: list[tuple]) -> None:
        """Durably record one committed transaction."""
        payload = encode_value(
            {"ts": commit_ts, "ops": [list(op) for op in journal]}
        )
        self._wal.append([(b"txn", payload)])
        self.records_appended += 1

    def replay(self):
        """Yield ``(commit_ts, ops)`` in commit order; stops at a torn
        or corrupted tail (crash semantics)."""
        for batch in self._wal.replay():
            for _key, payload in batch:
                if payload is None:
                    continue
                record = decode_value(payload)
                yield record["ts"], [tuple(op) for op in record["ops"]]

    def truncate(self) -> None:
        self._wal.truncate()

    def close(self) -> None:
        self._wal.close()


def replay_into(engine, wal: EngineWal) -> int:
    """Re-execute every WAL transaction against ``engine``.

    Returns the number of transactions replayed.  The engine must not
    journal during replay (the caller suspends logging), and replay
    forces the recorded gids and commit timestamps.
    """
    replayed = 0
    for commit_ts, ops in wal.replay():
        txn = engine.begin()
        try:
            for op in ops:
                _apply_op(engine, txn, op)
        except BaseException:
            if txn.is_active:
                engine.abort(txn)
            raise
        engine.manager.commit(txn, commit_ts=commit_ts)
        replayed += 1
    return replayed


def _apply_op(engine, txn, op: tuple) -> None:
    code = op[0]
    if code == "cv":
        _code, gid, labels, properties = op
        engine.storage.create_vertex(txn, labels, properties, gid=gid)
    elif code == "ce":
        _code, gid, src, dst, edge_type, properties = op
        engine.storage.create_edge(
            txn, src, dst, edge_type, properties, gid=gid
        )
    elif code == "svp":
        _code, gid, name, value = op
        engine.storage.set_vertex_property(txn, gid, name, value)
    elif code == "sep":
        _code, gid, name, value = op
        engine.storage.set_edge_property(txn, gid, name, value)
    elif code == "al":
        engine.storage.add_label(txn, op[1], op[2])
    elif code == "rl":
        engine.storage.remove_label(txn, op[1], op[2])
    elif code == "dv":
        engine.storage.delete_vertex(txn, op[1], detach=op[2])
    elif code == "de":
        engine.storage.delete_edge(txn, op[1])
    else:
        raise StorageError(f"unknown WAL opcode {code!r}")


def open_engine(directory, **engine_kwargs):
    """Open (or create) a durable engine rooted at ``directory``.

    Loads the newest checkpoint when one exists, replays the WAL on
    top, and returns an engine that continues journaling to the same
    log.
    """
    from repro.core.engine import AeonG
    from repro.core.persistence import load_engine

    directory = Path(directory)
    engine_kwargs.pop("durability_dir", None)  # attached below, post-replay
    checkpoint = directory / CHECKPOINT_DIRNAME
    if (checkpoint / "meta.bin").exists():
        engine = load_engine(checkpoint, **engine_kwargs)
    else:
        engine = AeonG(**engine_kwargs)
    wal = EngineWal(directory)
    replay_into(engine, wal)
    engine.attach_wal(directory, wal)
    return engine
