"""The paper's contribution: hybrid temporal storage + temporal operators.

``repro.core`` wires the MVCC current store (:mod:`repro.graph`) to a
key-value historical store (:mod:`repro.kvstore`) through the
garbage-collection migration hook, and implements the temporal Scan and
Expand operators on top.  The public entry point is
:class:`repro.core.engine.AeonG`.
"""

from repro.core.engine import AeonG
from repro.core.temporal import (
    AllenRelation,
    Interval,
    TemporalCondition,
    GraphModel,
)

__all__ = [
    "AeonG",
    "Interval",
    "TemporalCondition",
    "AllenRelation",
    "GraphModel",
]
