"""The AeonG engine facade: hybrid storage + temporal query surface.

``AeonG`` assembles the pieces exactly as Figure 2 of the paper draws
them: the MVCC property-graph store is the *current data storage
engine*, a key-value store is the *historical data storage engine*, and
the two are connected only through the garbage collector's migration
hook.  Constructing with ``temporal=False`` yields the vanilla system
(TGDB-noT in the paper's Figure 6(b) experiment): garbage collection
simply discards expired versions and temporal queries are rejected.

Typical use::

    db = AeonG()
    with db.transaction() as txn:
        jack = db.create_vertex(txn, labels=["Person"], properties={"name": "Jack"})
        card = db.create_vertex(txn, labels=["CreditCard"], properties={"balance": 270})
        db.create_edge(txn, jack, card, "OWNS")
    t_before = db.now()
    with db.transaction() as txn:
        db.set_vertex_property(txn, card, "balance", 200)
    with db.transaction() as txn:
        old = next(db.vertices_as_of(txn, t_before, label="CreditCard"))
        assert old.properties["balance"] == 270
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.core.anchors import AnchorPolicy
from repro.core.history_store import HistoricalStore
from repro.core.migration import Migrator
from repro.core.operators import TemporalOperators
from repro.core.stats import StorageReport
from repro.core.temporal import (
    GraphModel,
    Interval,
    TemporalCondition,
    VT_END_PROPERTY,
    VT_START_PROPERTY,
    check_property_writable,
    check_valid_time_value,
    valid_time_of,
)
from repro.errors import (
    ConstraintViolation,
    DegradedModeError,
    QueryError,
    SerializationConflict,
    StorageError,
    TemporalError,
    TransactionError,
)
from repro.graph.storage import GraphStorage
from repro.graph.views import EdgeView, VertexView
from repro.integrity import IntegrityReport, Scrubber
from repro.kvstore import KVStore
from repro.mvcc.gc import GarbageCollector
from repro.mvcc.transaction import Transaction
from repro.observability import Observability, ObservabilityConfig
from repro.replication import ReplicationConfig, ReplicationState
from repro.resilience import ResilienceConfig, ResilienceController, RetryPolicy


class AeonG:
    """An embedded temporal graph database.

    Parameters
    ----------
    temporal:
        When False, historical versions are discarded at garbage
        collection (the vanilla / TGDB-noT configuration).
    anchor_interval:
        The paper's ``u``: number of migrated delta records between two
        anchors of one object (0 disables anchors; default 10, the
        value the paper recommends for TPC-DS).
    gc_interval_transactions:
        Run one garbage-collection epoch automatically after this many
        commits ("the migration is invoked periodically"); 0 disables
        automatic collection — call :meth:`collect_garbage` manually.
    model:
        Which temporal dimensions the graph carries (section 2.1).
    enforce_vt_constraints:
        Check section 2.3's valid-time constraint — an edge's valid
        time must lie within both endpoints' — on edge creation and
        valid-time updates.
    kv:
        Inject a pre-configured key-value store (e.g. with a WAL).
    reconstruction_cache_size:
        Maximum objects whose reconstructed version lists the history
        store caches (epoch-invalidated LRU; 0 disables caching and
        every temporal read replays its anchor+delta chain).
    durability_dir:
        Enable the logical write-ahead log under this directory: every
        committed transaction is durably journaled, :meth:`checkpoint`
        snapshots + truncates, and :meth:`AeonG.open` recovers.  Only
        pass this for a *fresh* directory — use :meth:`open` for an
        existing one (it replays the log first).
    durability_mode:
        ``"fsync"`` syncs every WAL append and checkpoint file to the
        device before acknowledging; ``"flush"`` (default) stops at the
        OS buffer — fast, surviving process death but not power loss.
    group_commit:
        Route commits through the asynchronous group-commit writer
        (:mod:`repro.core.write_path`): concurrent committers share one
        WAL frame and one fsync per batch, and the engine lock is never
        held across durability I/O.  ``False`` restores the legacy
        synchronous one-commit-one-fsync path (the benchmark baseline).
        Only meaningful with ``durability_dir``.
    migration_workers:
        Worker threads for the migration epoch's delta *encoding* fan
        out (``merge_transaction_deltas`` per transaction); 0 (default)
        encodes serially on the GC thread.  Install order is always
        commit-timestamp order regardless of worker count.
    resilience:
        A :class:`~repro.resilience.ResilienceConfig` tuning conflict
        retry, transaction deadlines (``max_transaction_age`` and the
        watchdog), admission control
        (``max_concurrent_transactions``), and the history-store
        circuit breaker / degraded-read policy.  ``None`` applies the
        defaults (no admission limit, no engine-wide deadline, breaker
        armed with a 5-failure threshold).
    observability:
        An :class:`~repro.observability.ObservabilityConfig` tuning the
        metrics registry, trace spans, and slow-query log (see
        ``docs/OBSERVABILITY.md``).  ``None`` enables the defaults;
        ``ObservabilityConfig(enabled=False)`` turns spans and
        statement recording into no-ops.
    """

    def __init__(
        self,
        temporal: bool = True,
        anchor_interval: int = 10,
        gc_interval_transactions: int = 512,
        model: GraphModel = GraphModel.BITEMPORAL,
        enforce_vt_constraints: bool = False,
        kv: Optional[KVStore] = None,
        reconstruction_cache_size: int = 4096,
        durability_dir=None,
        durability_mode: str = "flush",
        group_commit: bool = True,
        migration_workers: int = 0,
        resilience: Optional[ResilienceConfig] = None,
        observability: Optional[ObservabilityConfig] = None,
        replication: Optional[ReplicationConfig] = None,
    ) -> None:
        from repro.faults import StorageIO

        self.temporal = temporal
        self.model = model
        self.enforce_vt_constraints = enforce_vt_constraints
        self.durability_mode = durability_mode
        self.group_commit = group_commit
        self._storage_io = StorageIO(durability_mode)
        self.resilience = ResilienceController(resilience)
        self.storage = GraphStorage()
        self.manager = self.storage.manager
        self.observability = (
            observability
            if isinstance(observability, Observability)
            else Observability(observability)
        )
        self.history = HistoricalStore(
            kv, reconstruction_cache_size=reconstruction_cache_size
        )
        self.history.resilience = self.resilience
        self.history.tracer = self.observability.tracer
        self.history.kv.tracer = self.observability.tracer
        self.anchor_policy = AnchorPolicy(anchor_interval)
        self.migrator = Migrator(
            self.storage,
            self.history,
            self.anchor_policy,
            workers=migration_workers,
        )
        self.gc = GarbageCollector(
            self.manager,
            migrate_hook=self._migrate_guarded if temporal else None,
            reclaim_object_hook=self._reclaim_record,
        )
        self.operators = TemporalOperators(self.storage, self.history)
        self.scrubber = Scrubber(
            self.history,
            storage=self.storage,
            anchor_interval=anchor_interval,
            resilience=self.resilience,
        )
        self.migrator.on_migrated = self.scrubber.note_migrated
        self._gc_interval = gc_interval_transactions
        self._commits_since_gc = 0
        self._gc_lock = threading.Lock()
        self._gc_thread: Optional[threading.Thread] = None
        self._gc_stop: Optional[threading.Event] = None
        self._scrub_thread: Optional[threading.Thread] = None
        self._scrub_stop: Optional[threading.Event] = None
        self._scrub_bg_errors = 0
        self._scrub_bg_last_error: Optional[str] = None
        self._gc_bg_errors = 0
        self._gc_bg_last_error: Optional[str] = None
        self._gc_deferred_errors = 0
        self._watchdog_thread: Optional[threading.Thread] = None
        self._watchdog_stop: Optional[threading.Event] = None
        self._closed = False
        # Serializes the closed-state transition against transaction
        # starts and the commit+WAL critical section, so a shutdown
        # racing an in-flight commit can neither strand a zombie
        # transaction nor close the WAL under an acknowledged append.
        self._close_lock = threading.Lock()
        self._wal = None
        #: The async group-commit writer (None when durability is off
        #: or ``group_commit=False`` — commits then append inline).
        self._wal_writer = None
        self._durability_dir = None
        #: RecoveryReport from :meth:`open`, None for a fresh engine.
        self.last_recovery = None
        #: Replication role/epoch/fence/peer state (every engine has
        #: one; a standalone node is a primary with no replicas).
        self.replication = ReplicationState(replication)
        self.replication.engine = self
        #: Highest commit timestamp known to have been truncated out of
        #: the WAL — a replica fetching at or below this must resync.
        self._wal_truncation_fence = 0
        # Every metrics() section flows through the registry, so the
        # Prometheus/JSON exporters cover the whole engine.
        self.observability.registry.register_provider(self.metrics)
        if durability_dir is not None:
            from repro.core.durability import EngineWal

            self.attach_wal(
                durability_dir,
                EngineWal(durability_dir, durability_mode=durability_mode),
            )

    # -- transactions -------------------------------------------------------

    def begin(self, timeout: Optional[float] = None) -> Transaction:
        """Start a snapshot-isolation transaction.

        ``timeout`` (seconds) sets a deadline for *this* transaction;
        without one, the engine's ``max_transaction_age`` (if
        configured) applies.  A transaction past its deadline is
        aborted by the watchdog so it cannot pin the GC watermark, and
        the owner's next operation raises
        :class:`~repro.errors.TransactionTimeout`.

        With admission control configured
        (``max_concurrent_transactions``), ``begin`` waits in a FIFO
        queue for a free slot and raises
        :class:`~repro.errors.OverloadError` past the queue deadline.
        """
        if self._closed:
            raise StorageError("engine is closed")
        ctrl = self.resilience
        gate = ctrl.gate
        if gate is not None:
            gate.acquire()
        try:
            # Re-check under the close lock: close() may have landed
            # while we waited in the admission queue.  Without this, a
            # begin racing close() would strand a transaction no
            # watchdog will ever sweep (and pin its admission slot).
            with self._close_lock:
                if self._closed:
                    raise StorageError("engine is closed")
                if self.replication.is_replica:
                    # Replica snapshots must not consume timestamps:
                    # the oracle tracks the primary's commits only, and
                    # a consumed tick would collide with the next
                    # replicated record's forced commit timestamp.
                    txn = self.manager.begin_readonly()
                else:
                    txn = self.manager.begin()
        except BaseException:
            if gate is not None:
                gate.release()
            raise
        if gate is not None:
            txn.on_commit(lambda _ts: gate.release())
            txn.on_abort(gate.release)
        age = timeout if timeout is not None else ctrl.config.max_transaction_age
        if age is not None:
            txn.deadline = ctrl.clock() + age
            self._ensure_watchdog()
        return txn

    def commit(self, txn: Transaction) -> int:
        """Commit; returns the commit timestamp (= the new TT.st).

        With the group-commit writer attached (``group_commit=True``
        and durability enabled), the close lock covers only the MVCC
        commit and the *enqueue* of the journal record — never the WAL
        append or fsync.  Durability I/O happens on the writer thread,
        shared across whatever batch of commits has accumulated, and
        this call blocks outside the lock on its batch ticket until the
        shared fsync lands — concurrent readers and committers proceed
        while a slow device syncs, yet the acknowledgement-after-
        durable contract is unchanged.
        """
        with self.observability.tracer.span("engine.commit"):
            ticket = None
            # The close lock makes commit-vs-close atomic: either the
            # commit (including its WAL submission) completes before
            # the WAL closes, or the transaction is cleanly aborted —
            # never an acknowledged commit whose journal record was
            # lost.  Enqueueing under the lock also makes queue order
            # identical to commit-timestamp order.
            with self._close_lock:
                if self._closed:
                    if txn.is_active:
                        self.manager.abort(txn)
                    raise StorageError(
                        "engine is closed; transaction aborted, not committed"
                    )
                commit_ts = self.manager.commit(txn)
                if txn.journal:
                    if self._wal_writer is not None:
                        ticket = self._wal_writer.submit(
                            commit_ts, list(txn.journal)
                        )
                    else:
                        # Legacy synchronous path: append + fsync inline
                        # (and publish to replication ourselves — with a
                        # writer, the writer does both post-fsync).
                        if self._wal is not None:
                            self._wal.append(commit_ts, txn.journal)
                        self.replication.note_commit(
                            commit_ts, list(txn.journal)
                        )
            if ticket is not None:
                # Block for the batch's shared append+fsync *outside*
                # the close lock; writer-side failures (including
                # injected crashes) re-raise here, before any ack.
                with self.observability.tracer.span("engine.commit.durable_wait"):
                    ticket.wait()
        repl = self.replication
        if (
            txn.journal
            and repl.role == "primary"
            and repl.config.sync_commit
            and repl.replicas
        ):
            # Semi-synchronous replication: hold the acknowledgement
            # until a replica has applied this commit.  On timeout the
            # transaction IS durably committed locally — the caller
            # must treat the outcome as unconfirmed, not failed, which
            # is why ReplicationTimeout is never retryable.
            with self.observability.tracer.span("repl.sync_wait"):
                if not repl.wait_replicated(
                    commit_ts, repl.config.sync_timeout
                ):
                    from repro.errors import ReplicationTimeout

                    raise ReplicationTimeout(
                        f"commit {commit_ts} is durable on the primary but "
                        f"no replica acknowledged applying it within "
                        f"{repl.config.sync_timeout}s"
                    )
        with self._gc_lock:
            self._commits_since_gc += 1
            due = (
                self._gc_interval > 0
                and self._commits_since_gc >= self._gc_interval
            )
            if due:
                self._commits_since_gc = 0
        if due:
            try:
                self.collect_garbage()
            except StorageError as exc:
                # The transaction is already durably committed; a
                # failed *epoch* must not read as a failed commit.  The
                # epoch's transactions were requeued (no history loss)
                # and the breaker counted the failure — record and
                # move on.
                self._gc_deferred_errors += 1
                self._gc_bg_last_error = repr(exc)
        return commit_ts

    def abort(self, txn: Transaction) -> None:
        """Roll back all of the transaction's changes."""
        self.manager.abort(txn)

    @contextmanager
    def transaction(self, timeout: Optional[float] = None):
        """``with db.transaction() as txn`` — commit on success,
        roll back on exception.

        Retry-friendly: if the commit itself fails (e.g. a
        :class:`~repro.errors.SerializationConflict`), the transaction
        is cleanly aborted before the original exception propagates —
        never left active to pin the GC watermark, and never
        double-aborted.
        """
        txn = self.begin(timeout=timeout)
        try:
            yield txn
        except BaseException:
            if txn.is_active:
                self.abort(txn)
            raise
        else:
            if txn.is_active:
                try:
                    self.commit(txn)
                except BaseException:
                    if txn.is_active:
                        try:
                            self.abort(txn)
                        except TransactionError:
                            pass  # never mask the commit failure
                    raise

    def run_transaction(
        self,
        fn,
        policy: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
    ):
        """Run ``fn(txn)`` in a transaction, retrying serialization
        conflicts; returns ``fn``'s result.

        The closure is re-executed from a fresh snapshot after each
        :class:`~repro.errors.SerializationConflict` (whether raised
        from a write or from the commit), waiting per ``policy`` —
        capped exponential backoff with jitter,
        ``ResilienceConfig.retry`` by default.  ``fn`` must therefore
        be safe to re-run; all other exceptions roll back and propagate
        immediately.  Once ``policy.max_attempts`` attempts are
        exhausted the last conflict is re-raised.
        """
        ctrl = self.resilience
        if policy is None:
            policy = ctrl.config.retry
        attempt = 0
        retried = False
        while True:
            attempt += 1
            txn = self.begin(timeout=timeout)
            try:
                result = fn(txn)
                if txn.is_active:
                    self.commit(txn)
                return result
            except SerializationConflict:
                if txn.is_active:
                    self.abort(txn)
                ctrl.note_conflict_retry()
                if not retried:
                    retried = True
                    ctrl.note_transaction_retried()
                if attempt >= policy.max_attempts:
                    ctrl.note_retries_exhausted()
                    raise
                policy.backoff(attempt)
            except BaseException:
                if txn.is_active:
                    self.abort(txn)
                raise

    # -- deadlines / watchdog ----------------------------------------------

    def sweep_expired(self) -> int:
        """Abort every active transaction past its deadline; returns
        the number aborted.

        This is the watchdog's work function — exposed so tests (and
        deployments with their own schedulers) can run it
        deterministically.  An aborted transaction stops pinning
        ``oldest_active_start_ts()``, so the next GC epoch can reclaim
        and migrate everything it was holding back.
        """
        now = self.resilience.clock()
        aborted = 0
        for txn in self.manager.expired_transactions(now):
            txn.expired = True
            try:
                self.manager.abort(txn)
            except TransactionError:
                txn.expired = False  # lost the race with commit/abort
                continue
            aborted += 1
        if aborted:
            self.resilience.note_watchdog_aborts(aborted)
        return aborted

    def _ensure_watchdog(self) -> None:
        """Start the deadline-watchdog daemon (idempotent).

        ``ResilienceConfig.watchdog_interval == 0`` disables the
        thread; deadlines are then enforced only by explicit
        :meth:`sweep_expired` calls.
        """
        interval = self.resilience.config.watchdog_interval
        if interval <= 0 or self._closed:
            return
        if self._watchdog_thread is not None and self._watchdog_thread.is_alive():
            return
        self._watchdog_stop = threading.Event()
        stop = self._watchdog_stop

        def loop() -> None:
            while not stop.wait(interval):
                try:
                    self.sweep_expired()
                except Exception:  # noqa: BLE001 — the watchdog must survive
                    pass

        self._watchdog_thread = threading.Thread(target=loop, daemon=True)
        self._watchdog_thread.start()

    def _stop_watchdog(self) -> None:
        if self._watchdog_thread is None:
            return
        self._watchdog_stop.set()
        self._watchdog_thread.join()
        self._watchdog_thread = None
        self._watchdog_stop = None

    def now(self) -> int:
        """The next commit timestamp the engine would assign; queries
        `as of now()` see everything committed so far."""
        return self.manager.oracle.peek()

    # -- garbage collection / migration -----------------------------------------

    def collect_garbage(self) -> int:
        """Run one GC epoch (with migration when temporal support is
        on); returns the number of undo deltas reclaimed."""
        return self.gc.collect()

    def prune_history(self, before_ts: int) -> int:
        """Retention: permanently drop historical versions that ended
        at or before ``before_ts``.

        Returns the number of history records removed.  Versions still
        current at ``before_ts`` (and everything newer) remain fully
        queryable.  With durability enabled, run :meth:`checkpoint`
        afterwards — otherwise a WAL replay would resurrect the pruned
        history.
        """
        self._require_temporal()
        return self.history.prune(before_ts)

    def start_background_gc(
        self,
        interval_seconds: float = 0.05,
        max_backoff_seconds: float = 1.0,
    ) -> None:
        """Run garbage collection periodically on a daemon thread.

        This is the paper's deployment model: migration happens
        asynchronously to user transactions ("is lightweight to the
        original databases").  Synchronous commit-count triggering is
        disabled while the thread runs.

        A failing epoch (e.g. an I/O error from the history store) no
        longer kills the thread silently: the exception is counted and
        recorded (see ``metrics()["gc"]``) and the loop retries with
        exponentially growing delay, capped at ``max_backoff_seconds``,
        resetting to the base cadence after the next clean epoch.
        """
        if self._gc_thread is not None:
            return
        self._gc_stop = threading.Event()
        self._gc_interval = 0

        def loop() -> None:
            delay = interval_seconds
            while not self._gc_stop.wait(delay):
                try:
                    self.gc.collect()
                    delay = interval_seconds
                except Exception as exc:  # noqa: BLE001 — record, back off, retry
                    self._gc_bg_errors += 1
                    self._gc_bg_last_error = repr(exc)
                    delay = min(delay * 2, max_backoff_seconds)

        self._gc_thread = threading.Thread(target=loop, daemon=True)
        self._gc_thread.start()

    def stop_background_gc(self) -> None:
        """Stop the background collector and run one final epoch
        (skipped when the engine is already closed)."""
        if self._gc_thread is None:
            return
        self._gc_stop.set()
        self._gc_thread.join()
        self._gc_thread = None
        if not self._closed:
            self.gc.collect()

    # -- integrity scrubbing ------------------------------------------------

    def scrub(self, budget: Optional[int] = None) -> IntegrityReport:
        """One incremental integrity pass over the history store.

        Checks up to ``budget`` objects (freshly migrated ones first,
        then resuming a round-robin cursor), repairing and quarantining
        as needed; see :mod:`repro.integrity` and
        ``metrics()["integrity"]``.
        """
        return self.scrubber.scrub(budget)

    def scrub_full(self) -> IntegrityReport:
        """Verify (and repair) every object in the history store."""
        return self.scrubber.scrub_full()

    def start_background_scrub(
        self,
        interval_seconds: float = 0.1,
        budget: Optional[int] = None,
        max_backoff_seconds: float = 2.0,
    ) -> None:
        """Run the integrity scrubber periodically on a daemon thread.

        Same shape as :meth:`start_background_gc`: budgeted passes at a
        fixed cadence, exceptions recorded and retried with capped
        exponential backoff rather than killing the thread.
        """
        if self._scrub_thread is not None:
            return
        self._scrub_stop = threading.Event()

        def loop() -> None:
            delay = interval_seconds
            while not self._scrub_stop.wait(delay):
                try:
                    self.scrubber.scrub(budget)
                    delay = interval_seconds
                except Exception as exc:  # noqa: BLE001 — record, back off, retry
                    self._scrub_bg_errors += 1
                    self._scrub_bg_last_error = repr(exc)
                    delay = min(delay * 2, max_backoff_seconds)

        self._scrub_thread = threading.Thread(target=loop, daemon=True)
        self._scrub_thread.start()

    def stop_background_scrub(self) -> None:
        """Stop the background scrubber thread (no final pass — scrub
        state is resumable, the next pass picks up where this left off)."""
        if self._scrub_thread is None:
            return
        self._scrub_stop.set()
        self._scrub_thread.join()
        self._scrub_thread = None

    def _reclaim_record(self, record) -> None:
        self.storage.drop_record(record)
        self.migrator.forget_object(record.kind, record.gid)

    def _migrate_guarded(self, transactions) -> int:
        """``Migrate(CT)`` behind the history-store circuit breaker.

        While the breaker is open, raises
        :class:`~repro.errors.DegradedModeError` — the GC treats that
        as "pause": it requeues the epoch's transactions and reports a
        clean zero-work epoch.  Storage failures feed the breaker; once
        the reset timeout elapses the next epoch runs as the half-open
        probe, and its success restores full migration.
        """
        ctrl = self.resilience
        if not ctrl.breaker.allow():
            ctrl.note_migration_paused()
            raise DegradedModeError(
                "migration paused: history-store circuit breaker is open"
            )
        try:
            with self.observability.tracer.span("gc.migrate"):
                staged = self.migrator.migrate(transactions)
        except StorageError:
            ctrl.history_failed()
            raise
        ctrl.history_ok()
        return staged

    # -- writes (current store) ------------------------------------------------

    def create_vertex(
        self,
        txn: Transaction,
        labels: tuple[str, ...] | list[str] = (),
        properties: Optional[dict[str, Any]] = None,
        valid_time: Optional[tuple[int, int]] = None,
    ) -> int:
        """Insert a vertex; optional ``valid_time=(start, end)``."""
        properties = dict(properties or {})
        for name in properties:
            check_property_writable(name)
        if valid_time is not None:
            self._require_vt_model()
            check_valid_time_value(*valid_time)
            properties[VT_START_PROPERTY] = valid_time[0]
            properties[VT_END_PROPERTY] = valid_time[1]
        gid = self.storage.create_vertex(txn, labels, properties)
        txn.journal.append(("cv", gid, list(labels), properties))
        return gid

    def create_edge(
        self,
        txn: Transaction,
        from_gid: int,
        to_gid: int,
        edge_type: str,
        properties: Optional[dict[str, Any]] = None,
        valid_time: Optional[tuple[int, int]] = None,
    ) -> int:
        """Insert an edge; optional ``valid_time=(start, end)``."""
        properties = dict(properties or {})
        for name in properties:
            check_property_writable(name)
        if valid_time is not None:
            self._require_vt_model()
            check_valid_time_value(*valid_time)
            if self.enforce_vt_constraints:
                self._check_edge_vt(txn, from_gid, to_gid, Interval(*valid_time))
            properties[VT_START_PROPERTY] = valid_time[0]
            properties[VT_END_PROPERTY] = valid_time[1]
        gid = self.storage.create_edge(
            txn, from_gid, to_gid, edge_type, properties
        )
        txn.journal.append(
            ("ce", gid, from_gid, to_gid, edge_type, properties)
        )
        return gid

    def set_vertex_property(self, txn: Transaction, gid: int, name: str, value: Any) -> None:
        """Set (``value=None`` removes) a vertex property."""
        check_property_writable(name)
        self.storage.set_vertex_property(txn, gid, name, value)
        txn.journal.append(("svp", gid, name, value))

    def set_edge_property(self, txn: Transaction, gid: int, name: str, value: Any) -> None:
        """Set (``value=None`` removes) an edge property."""
        check_property_writable(name)
        self.storage.set_edge_property(txn, gid, name, value)
        txn.journal.append(("sep", gid, name, value))

    def add_label(self, txn: Transaction, gid: int, label: str) -> bool:
        added = self.storage.add_label(txn, gid, label)
        if added:
            txn.journal.append(("al", gid, label))
        return added

    def remove_label(self, txn: Transaction, gid: int, label: str) -> bool:
        removed = self.storage.remove_label(txn, gid, label)
        if removed:
            txn.journal.append(("rl", gid, label))
        return removed

    def delete_vertex(self, txn: Transaction, gid: int, detach: bool = True) -> None:
        self.storage.delete_vertex(txn, gid, detach=detach)
        txn.journal.append(("dv", gid, detach))

    def delete_edge(self, txn: Transaction, gid: int) -> None:
        self.storage.delete_edge(txn, gid)
        txn.journal.append(("de", gid))

    def set_valid_time(
        self,
        txn: Transaction,
        object_kind: str,
        gid: int,
        vt_start: int,
        vt_end: int,
    ) -> None:
        """Update an object's valid time (user-maintained timeline)."""
        self._require_vt_model()
        check_valid_time_value(vt_start, vt_end)
        if object_kind == "vertex":
            self.storage.set_vertex_property(txn, gid, VT_START_PROPERTY, vt_start)
            self.storage.set_vertex_property(txn, gid, VT_END_PROPERTY, vt_end)
            txn.journal.append(("svp", gid, VT_START_PROPERTY, vt_start))
            txn.journal.append(("svp", gid, VT_END_PROPERTY, vt_end))
        elif object_kind == "edge":
            if self.enforce_vt_constraints:
                edge = self.storage.get_edge(txn, gid)
                if edge is not None:
                    self._check_edge_vt(
                        txn, edge.from_gid, edge.to_gid, Interval(vt_start, vt_end)
                    )
            self.storage.set_edge_property(txn, gid, VT_START_PROPERTY, vt_start)
            self.storage.set_edge_property(txn, gid, VT_END_PROPERTY, vt_end)
            txn.journal.append(("sep", gid, VT_START_PROPERTY, vt_start))
            txn.journal.append(("sep", gid, VT_END_PROPERTY, vt_end))
        else:
            raise ValueError(f"unknown object kind {object_kind!r}")

    def _require_vt_model(self) -> None:
        if self.model == GraphModel.TRANSACTION_TIME:
            raise TemporalError(
                "valid time is not part of the transaction-time graph model"
            )

    def _check_edge_vt(
        self, txn: Transaction, from_gid: int, to_gid: int, vt: Interval
    ) -> None:
        """Constraint (2) of section 2.3: each endpoint's valid time must
        contain the edge's."""
        for gid in (from_gid, to_gid):
            vertex = self.storage.get_vertex(txn, gid)
            if vertex is None:
                continue  # existence is checked by create_edge itself
            vertex_vt = valid_time_of(vertex.properties)
            if vertex_vt is not None and not vertex_vt.contains(vt):
                raise ConstraintViolation(
                    f"edge valid time {vt} not contained in vertex {gid}'s "
                    f"valid time {vertex_vt}"
                )

    # -- non-temporal reads ----------------------------------------------------

    def get_vertex(self, txn: Transaction, gid: int) -> Optional[VertexView]:
        return self.storage.get_vertex(txn, gid)

    def get_edge(self, txn: Transaction, gid: int) -> Optional[EdgeView]:
        return self.storage.get_edge(txn, gid)

    def iter_vertices(self, txn: Transaction) -> Iterator[VertexView]:
        return self.storage.iter_vertices(txn)

    def iter_edges(self, txn: Transaction) -> Iterator[EdgeView]:
        return self.storage.iter_edges(txn)

    # -- temporal reads (transaction-time queries) ---------------------------------

    def _require_temporal(self) -> None:
        if not self.temporal:
            raise TemporalError(
                "this engine was built with temporal=False (TGDB-noT)"
            )

    def vertices_as_of(
        self,
        txn: Transaction,
        t: int,
        label: Optional[str] = None,
        prop: Optional[str] = None,
        value: Any = None,
    ) -> Iterator[VertexView]:
        """``TT SNAPSHOT t`` scan."""
        self._require_temporal()
        cond = TemporalCondition.as_of(t)
        return self.operators.scan_vertices(txn, cond, label, prop, value)

    def vertices_between(
        self,
        txn: Transaction,
        t1: int,
        t2: int,
        label: Optional[str] = None,
        prop: Optional[str] = None,
        value: Any = None,
    ) -> Iterator[VertexView]:
        """``TT BETWEEN t1 AND t2`` scan."""
        self._require_temporal()
        cond = TemporalCondition.between(t1, t2)
        return self.operators.scan_vertices(txn, cond, label, prop, value)

    def vertex_versions(
        self, txn: Transaction, gid: int, cond: TemporalCondition
    ) -> Iterator[VertexView]:
        """Versions of one vertex satisfying ``cond``."""
        self._require_temporal()
        return self.operators.vertex_versions(txn, gid, cond)

    def edge_versions(
        self, txn: Transaction, gid: int, cond: TemporalCondition
    ) -> Iterator[EdgeView]:
        """Versions of one edge satisfying ``cond``."""
        self._require_temporal()
        return self.operators.edge_versions(txn, gid, cond)

    def expand(
        self,
        txn: Transaction,
        vertex: VertexView,
        cond: TemporalCondition,
        direction: str = "out",
        edge_types: Optional[set[str]] = None,
    ) -> Iterator[tuple[EdgeView, VertexView]]:
        """Temporal expand from one vertex version (Algorithm 3)."""
        self._require_temporal()
        return self.operators.expand(txn, vertex, cond, direction, edge_types)

    def diff_vertex(
        self, txn: Transaction, gid: int, t1: int, t2: int
    ) -> Optional[dict[str, Any]]:
        """What changed on a vertex between two instants.

        Returns ``None`` when the vertex exists at neither instant;
        otherwise a dict with ``added`` / ``removed`` / ``changed``
        property maps (changed maps to ``(old, new)`` tuples),
        ``labels_added`` / ``labels_removed``, and ``existence`` —
        ``"created"``, ``"deleted"`` or ``"unchanged"`` over the span.
        A typical audit primitive: "what did this account change
        between the two statements?"
        """
        self._require_temporal()
        before = next(
            iter(self.operators.vertex_versions(txn, gid, TemporalCondition.as_of(t1))),
            None,
        )
        after = next(
            iter(self.operators.vertex_versions(txn, gid, TemporalCondition.as_of(t2))),
            None,
        )
        if before is None and after is None:
            return None
        old_props = before.properties if before is not None else {}
        new_props = after.properties if after is not None else {}
        old_labels = before.labels if before is not None else set()
        new_labels = after.labels if after is not None else set()
        if before is None:
            existence = "created"
        elif after is None:
            existence = "deleted"
        else:
            existence = "unchanged"
        return {
            "existence": existence,
            "added": {
                name: value
                for name, value in new_props.items()
                if name not in old_props
            },
            "removed": {
                name: value
                for name, value in old_props.items()
                if name not in new_props
            },
            "changed": {
                name: (old_props[name], value)
                for name, value in new_props.items()
                if name in old_props and old_props[name] != value
            },
            "labels_added": sorted(new_labels - old_labels),
            "labels_removed": sorted(old_labels - new_labels),
        }

    def metrics(self) -> dict[str, Any]:
        """Operational counters across every component (monitoring).

        Safe to call at any time, including on a closed engine and
        concurrently with :meth:`close`: nullable components (WAL,
        background threads) are read once into locals, so a close
        racing between the None-check and the attribute access cannot
        raise.
        """
        from repro import backup as backup_module

        kv_stats = self.history.kv.stats
        wal = self._wal
        writer = self._wal_writer
        gc_thread = self._gc_thread
        scrub_thread = self._scrub_thread
        if writer is not None:
            write_path = writer.metrics()
        else:
            write_path = {
                "enabled": False,
                "commits_submitted": 0,
                "batches_written": 0,
                "records_written": 0,
                "max_batch": 0,
                "avg_batch": 0.0,
                "queue_depth": 0,
                "queue_limit": 0,
                "backpressure_waits": 0,
                "batch_errors": 0,
            }
        records = wal.records_appended if wal is not None else 0
        fsyncs = wal.fsyncs if wal is not None else 0
        write_path.update(
            {
                "frames_appended": (
                    wal.frames_appended if wal is not None else 0
                ),
                "fsyncs": fsyncs,
                "fsyncs_per_commit": (
                    round(fsyncs / records, 4) if records else 0.0
                ),
            }
        )
        return {
            "transactions": {
                "active": self.manager.active_count,
                "pending_gc": len(self.manager.committed_pending_gc),
                "next_timestamp": self.manager.oracle.peek(),
            },
            "gc": {
                "runs": self.gc.runs,
                "deltas_reclaimed": self.gc.deltas_reclaimed,
                "epochs_paused": self.gc.epochs_paused,
                "background_running": gc_thread is not None
                and gc_thread.is_alive(),
                "background_errors": self._gc_bg_errors,
                "background_last_error": self._gc_bg_last_error,
                "deferred_errors": self._gc_deferred_errors,
            },
            "migration": {
                "epochs": self.migrator.migrations,
                "parallel_epochs": self.migrator.parallel_epochs,
                "workers": self.migrator.workers,
                "failed_epochs": self.migrator.failed_epochs,
                "transactions_migrated": self.migrator.transactions_migrated,
                "records_written": self.history.records_written,
                "anchors_written": self.history.anchors_written,
            },
            "resilience": self.resilience.metrics(),
            "integrity": {
                **self.scrubber.metrics(),
                "background_running": scrub_thread is not None
                and scrub_thread.is_alive(),
                "background_errors": self._scrub_bg_errors,
                "background_last_error": self._scrub_bg_last_error,
            },
            "history_kv": {
                "puts": kv_stats.puts,
                "gets": kv_stats.gets,
                "seeks": kv_stats.seeks,
                "range_scans": kv_stats.range_scans,
                "flushes": kv_stats.flushes,
                "compactions": kv_stats.compactions,
                "batch_writes": kv_stats.batch_writes,
                "bytes": self.history.storage_bytes(),
            },
            "read_path": self.history.read_path_metrics(),
            "operators": self.operators.stats.as_dict(),
            "observability": self.observability.self_metrics(),
            "caches": {
                "payloads": len(self.history._payload_cache),
                "objects": len(self.history._object_cache),
                "mentions": len(self.history._mention_cache),
            },
            "current_store": {
                "vertices": self.storage.vertex_count(),
                "edges": self.storage.edge_count(),
                "bytes": self.storage.approximate_bytes(),
            },
            "wal": {
                "enabled": wal is not None,
                "records": (wal.records_appended if wal is not None else 0),
                "durability_mode": self.durability_mode,
            },
            "write_path": write_path,
            "replication": self.replication.metrics(),
            "backup": backup_module.backup_metrics(),
            "restore": backup_module.restore_metrics(),
            "resync": self.replication.resync_metrics(
                self.observability.registry
            ),
            "recovery": (
                self.last_recovery.as_dict()
                if self.last_recovery is not None
                else None
            ),
        }

    # -- query language -----------------------------------------------------------

    def execute(
        self,
        query: str,
        parameters: Optional[dict[str, Any]] = None,
        txn: Optional[Transaction] = None,
    ) -> list[dict[str, Any]]:
        """Run one query in the Cypher-ish surface language.

        Without an explicit ``txn`` the query runs in its own
        transaction (committed on success).
        """
        from repro.query.executor import execute_query, statement_prefix

        if txn is not None:
            return execute_query(self, txn, query, parameters)
        if statement_prefix(query) == "EXPLAIN":
            # EXPLAIN only plans — no transaction, no commit timestamp.
            return execute_query(self, None, query, parameters)
        # An implicit transaction is re-runnable by construction (the
        # whole statement re-executes from a fresh snapshot), so route
        # it through the conflict-retry loop.
        return self.run_transaction(
            lambda own: execute_query(self, own, query, parameters)
        )

    @property
    def last_read_degraded(self) -> bool:
        """Whether this thread's latest statement fell back to
        current-only results because the history store is degraded
        (``degraded_reads="current-only"``).  Cleared at the start of
        each :meth:`execute` call."""
        return self.resilience.last_read_degraded

    # -- durability (write-ahead log) --------------------------------------------

    def attach_wal(self, directory, wal) -> None:
        """Start journaling committed transactions to ``wal``.

        With ``group_commit=True`` this also starts the async
        group-commit writer thread; commits from here on are batched.
        """
        from pathlib import Path

        self._durability_dir = Path(directory)
        self._wal = wal
        if self.group_commit:
            from repro.core.write_path import GroupCommitWriter

            self._wal_writer = GroupCommitWriter(
                wal,
                replication=self.replication,
                tracer=self.observability.tracer,
                queue_limit=self.resilience.config.wal_queue_limit,
            )

    def detach_wal(self) -> None:
        """Stop journaling and close the WAL, keeping the engine open.

        The resync bootstrap's first step: the replica's stale log is
        about to be replaced wholesale, so no commit may append to it
        past this point.  ``_durability_dir`` is kept — the directory
        is still this engine's home."""
        with self._close_lock:
            wal = self._wal
            writer = self._wal_writer
            self._wal = None
            self._wal_writer = None
        if writer is not None:
            writer.stop()  # drains: every submitted record is persisted
        if wal is not None:
            wal.close()

    # -- replication (apply path + WAL shipping support) --------------------

    def apply_replicated(self, commit_ts: int, ops: list[tuple]) -> bool:
        """Apply one shipped WAL record at its original commit timestamp.

        The replica's write path: a replay transaction
        (:meth:`TransactionManager.begin_replay`) re-executes the
        primary's logical operations and commits at the *forced*
        ``commit_ts``, so the replica's transaction-time history is
        bit-for-bit the primary's.  **Idempotent**: a record at or
        below the applied watermark (``oracle.peek() - 1``) is a no-op
        returning False — re-shipping an overlapping range (resumed
        stream, checkpoint-fence overlap) cannot double-apply.  The
        record is also journaled to this node's own WAL, so a replica
        restart recovers its applied prefix locally.
        """
        with self._close_lock:
            if self._closed:
                raise StorageError("engine is closed")
            if commit_ts < self.manager.oracle.peek():
                return False
            with self.observability.tracer.span("repl.apply"):
                txn = self.manager.begin_replay()
                try:
                    from repro.core.durability import _apply_op

                    for op in ops:
                        _apply_op(self, txn, op)
                except BaseException:
                    if txn.is_active:
                        self.manager.abort(txn)
                    raise
                txn.journal = [tuple(op) for op in ops]
                self.manager.commit(txn, commit_ts=commit_ts)
                if self._wal is not None and txn.journal:
                    self._wal.append(commit_ts, txn.journal)
                self.replication.note_commit(commit_ts, list(txn.journal))
        self.replication.note_applied()
        return True

    def adopt_snapshot_state(self, donor: "AeonG") -> None:
        """Replace this engine's graph, history, and clock state with
        ``donor``'s — the replica-resync bootstrap.

        ``donor`` is a freshly opened engine (typically
        :meth:`AeonG.open` over a just-restored snapshot) that is
        *consumed*: its storage, transaction manager, history store,
        migrator, operators, scrubber, and WAL now belong to this
        engine, and the donor shell is marked closed so a stray
        ``close()`` on it cannot close the adopted components.  The
        adopting engine keeps its own identity — resilience controller,
        observability registry, replication state (role/epoch/peers),
        background threads — so the serving layer's references and the
        registered metrics provider stay valid across the swap.

        Callers must have detached/discarded this engine's previous
        WAL (see :meth:`detach_wal`) before adopting a durable donor.
        """
        if donor is self:
            raise StorageError("an engine cannot adopt itself")
        with self._close_lock:
            if self._closed:
                raise StorageError("engine is closed")
            old_wal = self._wal
            old_writer = self._wal_writer
            self._wal_writer = None
            # The donor's writer targets the donor's replication state;
            # stop it (its queue is empty — the donor never served
            # commits) and run a fresh one bound to this engine.
            donor_writer = donor._wal_writer
            donor._wal_writer = None
            if donor_writer is not None:
                donor_writer.stop()
            self.storage = donor.storage
            self.manager = donor.manager
            self.history = donor.history
            self.anchor_policy = donor.anchor_policy
            self.migrator = donor.migrator
            self.operators = donor.operators
            self.scrubber = donor.scrubber
            # Rewire the adopted components onto this engine's
            # cross-cutting services, exactly as ``__init__`` does.
            self.history.resilience = self.resilience
            self.history.tracer = self.observability.tracer
            self.history.kv.tracer = self.observability.tracer
            self.scrubber.resilience = self.resilience
            self.migrator.on_migrated = self.scrubber.note_migrated
            from repro.mvcc.gc import GarbageCollector

            self.gc = GarbageCollector(
                self.manager,
                migrate_hook=(
                    self._migrate_guarded if self.temporal else None
                ),
                reclaim_object_hook=self._reclaim_record,
            )
            self._wal = donor._wal
            if donor._durability_dir is not None:
                self._durability_dir = donor._durability_dir
            self._wal_truncation_fence = donor._wal_truncation_fence
            self.last_recovery = donor.last_recovery
            self._commits_since_gc = 0
            # Neutralize the donor shell: its components live here now.
            donor._wal = None
            donor._closed = True
            if self._wal is not None and self.group_commit:
                from repro.core.write_path import GroupCommitWriter

                self._wal_writer = GroupCommitWriter(
                    self._wal,
                    replication=self.replication,
                    tracer=self.observability.tracer,
                    queue_limit=self.resilience.config.wal_queue_limit,
                )
        if old_writer is not None:
            old_writer.stop()
        if old_wal is not None:
            old_wal.close()
        self.replication.reset_after_bootstrap()
        self.replication.note_applied()

    def wal_records_from(self, from_ts: int):
        """WAL records with ``commit_ts >= from_ts`` for the shipping
        stream's catch-up path; ``None`` when no WAL is attached."""
        wal = self._wal
        if wal is None:
            return None
        return wal.records_from(from_ts)

    def wal_truncation_fence(self) -> int:
        """Highest commit timestamp truncated out of the WAL (0 when
        every record ever journaled is still scannable)."""
        return self._wal_truncation_fence

    def checkpoint(self) -> None:
        """Snapshot the engine and truncate the WAL (bounds recovery).

        Requires durability to be enabled and quiescence (like
        :meth:`save`).  The install is crash-safe at every step:

        1. the snapshot is written to ``checkpoint.tmp`` (each file
           atomically; ``meta.bin`` last);
        2. the current ``checkpoint`` is retired to ``checkpoint.old``;
        3. ``checkpoint.tmp`` is atomically renamed to ``checkpoint``;
        4. ``checkpoint.old`` is removed;
        5. the WAL is truncated.

        A crash before (3) recovers from the old checkpoint (directly
        or via the ``checkpoint.old`` fallback) plus the intact WAL; a
        crash after (3) recovers from the new checkpoint, and any WAL
        records it already contains are skipped by the replay fence —
        so no window loses or double-applies a committed transaction.
        """
        import shutil

        from repro.core.durability import (
            CHECKPOINT_DIRNAME,
            CHECKPOINT_OLD_DIRNAME,
            CHECKPOINT_TMP_DIRNAME,
        )
        from repro.core.persistence import save_engine
        from repro.faults import FAILPOINTS

        if self._wal is None or self._durability_dir is None:
            raise StorageError("checkpoint requires durability_dir")
        writer = self._wal_writer
        if writer is not None:
            # Quiesce the async write path: every acknowledged commit
            # must be in the WAL before the snapshot that supersedes it.
            writer.flush()
        primary = self._durability_dir / CHECKPOINT_DIRNAME
        tmp = self._durability_dir / CHECKPOINT_TMP_DIRNAME
        old = self._durability_dir / CHECKPOINT_OLD_DIRNAME
        for stale in (tmp, old):
            if stale.exists():
                shutil.rmtree(stale)
        save_engine(self, tmp, storage_io=self._storage_io)
        if primary.exists():
            self._storage_io.rename(primary, old, "checkpoint.retire")
        self._storage_io.rename(tmp, primary, "checkpoint.install")
        FAILPOINTS.check("checkpoint.cleanup")
        if old.exists():
            shutil.rmtree(old)
        # WAL truncation is fenced by replication: records a registered
        # replica has not acknowledged must survive the checkpoint, or
        # the replica could never catch up without a full resync.
        retain_ts = self.replication.wal_retain_ts()
        if retain_ts is None:
            self._wal_truncation_fence = max(
                self._wal_truncation_fence, self.manager.oracle.peek() - 1
            )
            self._wal.truncate()
        else:
            _dropped, fence = self._wal.truncate_keep_from(retain_ts)
            if fence:
                self._wal_truncation_fence = max(
                    self._wal_truncation_fence, fence
                )

    @classmethod
    def open(cls, directory, **engine_kwargs) -> "AeonG":
        """Open (or create) a durable engine rooted at ``directory``:
        load the newest checkpoint, replay the write-ahead log with the
        original commit timestamps and gids, continue journaling.

        Accepts ``durability_mode="fsync"|"flush"`` and
        ``strict_recovery=True`` (raise :class:`CorruptionError` on
        interior WAL damage instead of flagging it).  The resulting
        engine's ``last_recovery`` is a
        :class:`~repro.core.durability.RecoveryReport`.
        """
        from repro.core.durability import open_engine

        return open_engine(directory, **engine_kwargs)

    def close(self) -> None:
        """Stop background work and close the WAL (idempotent).

        Ordering matters: the background GC thread is stopped *first*
        (its final epoch still runs against the open engine), then the
        watchdog, then the WAL.  After ``close()`` returns, further
        :meth:`begin` calls raise :class:`~repro.errors.StorageError`
        and a second ``close()`` is a no-op.
        """
        if self._closed:
            return
        self.stop_background_scrub()
        self.stop_background_gc()
        self._stop_watchdog()
        # Flip the flag and detach the WAL under the close lock: an
        # in-flight commit either finishes its submission first (we
        # wait for the lock) or observes the closed flag and aborts
        # cleanly.  The writer is stopped *before* the WAL closes —
        # stop() drains the queue, so every record a committer is still
        # waiting on gets durably written and acknowledged.
        with self._close_lock:
            self._closed = True
            wal = self._wal
            writer = self._wal_writer
            self._wal = None
            self._wal_writer = None
        if writer is not None:
            writer.stop()
        if wal is not None:
            wal.close()
        self.migrator.close()

    # -- persistence ----------------------------------------------------------------

    def save(self, directory) -> None:
        """Snapshot the whole engine (current store + history + clocks)
        to a directory.  Requires quiescence; see
        :mod:`repro.core.persistence`."""
        from repro.core.persistence import save_engine

        save_engine(self, directory)

    @classmethod
    def load(cls, directory, **engine_kwargs) -> "AeonG":
        """Rebuild an engine saved with :meth:`save`.  Indexes are not
        persisted — recreate them after loading."""
        from repro.core.persistence import load_engine

        return load_engine(directory, **engine_kwargs)

    def metrics_text(self) -> str:
        """Every metric in the Prometheus text exposition format.

        The registry flattens :meth:`metrics` sections into
        ``aeong_<section>_<field>`` samples and appends the native
        counters and span/statement histograms; also served by the
        ``aeong metrics DIR`` CLI subcommand.
        """
        return self.observability.registry.prometheus_text()

    def explain_tree(self, query: str) -> list[str]:
        """The operator tree for a statement, rendered as the indented
        ``EXPLAIN`` lines (see ``docs/OBSERVABILITY.md``), without
        executing anything.  :meth:`explain` keeps the original flat
        one-operator-per-line format."""
        from repro.query.profiler import explain_tree

        return explain_tree(self, query)

    def profile(self, query: str, parameters=None, txn: Optional[Transaction] = None):
        """Execute a statement with per-operator instrumentation.

        Returns a :class:`~repro.query.profiler.ProfileResult` —
        ``result.table()`` is what a ``PROFILE <stmt>`` statement
        returns through :meth:`execute`, and ``result.tree()`` is the
        annotated operator tree.  Without an explicit ``txn`` the
        statement runs in its own transaction (committed on success,
        conflict-retried like :meth:`execute`).
        """
        from repro.query.profiler import execute_profiled

        if txn is not None:
            return execute_profiled(self, txn, query, parameters)
        return self.run_transaction(
            lambda own: execute_profiled(self, own, query, parameters)
        )

    def explain(self, query: str) -> list[str]:
        """The physical plan for a statement, one operator per line.

        Plans against the current schema (indexes change scan choices),
        without executing anything.
        """
        from repro.query.parser import parse
        from repro.query.planner import plan_query

        plan = plan_query(parse(query), self)
        lines = plan.describe()
        if plan.tt is not None:
            kind = "SNAPSHOT" if plan.tt.kind == "snapshot" else "BETWEEN"
            lines.append(f"Temporal(TT {kind})")
        if plan.returns is not None:
            modifiers = []
            if plan.returns.distinct:
                modifiers.append("DISTINCT")
            if plan.returns.order_by:
                modifiers.append("ORDER BY")
            if plan.returns.limit is not None:
                modifiers.append("LIMIT")
            suffix = f" [{', '.join(modifiers)}]" if modifiers else ""
            lines.append(f"Produce({len(plan.returns.items)} columns){suffix}")
        return lines

    # -- indexes -------------------------------------------------------------------

    def create_label_index(self, label: str) -> None:
        self.storage.create_label_index(label)

    def create_label_property_index(self, label: str, prop: str) -> None:
        self.storage.create_label_property_index(label, prop)

    def create_unique_constraint(self, label: str, prop: str) -> None:
        """Enforce uniqueness of ``prop`` among ``:label`` vertices.

        Like indexes, constraints are in-memory schema: recreate them
        after :meth:`load`/:meth:`open`.
        """
        self.storage.create_unique_constraint(label, prop)

    def drop_unique_constraint(self, label: str, prop: str) -> None:
        self.storage.drop_unique_constraint(label, prop)

    # -- accounting ---------------------------------------------------------------

    def storage_report(self) -> StorageReport:
        """Byte-accurate storage breakdown (used by the benchmarks)."""
        return StorageReport(
            current_bytes=self.storage.approximate_bytes(),
            history_bytes=self.history.storage_bytes(),
            vertex_count=self.storage.vertex_count(),
            edge_count=self.storage.edge_count(),
            history_records=self.history.records_written,
            anchors=self.history.anchors_written,
        )
