"""``Migrate(CT)`` — paper Algorithm 1.

Called from the garbage collector with the committed transactions that
are no longer visible to any snapshot.  Each transaction's undo buffer
is merged into history records (``encode2KV``), anchors are interleaved
per the anchor policy, and the whole epoch is installed with one atomic
batch write (``putMultiples``).

Delta *encoding* (``merge_transaction_deltas``) is a pure function of
one transaction's undo buffer, so with ``workers > 0`` the epoch fans
the encoding out over a thread pool; everything stateful — anchor
cadence, validity frontiers, staging, the atomic install — still runs
serially in commit-timestamp order, so a parallel epoch is
byte-identical to a serial one.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.core.anchors import AnchorPolicy, historical_state
from repro.core.deltas import RecordDraft, merge_transaction_deltas
from repro.core.history_store import HistoricalStore
from repro.core.keys import SEGMENT_EDGE, SEGMENT_TOPOLOGY, SEGMENT_VERTEX
from repro.core.reconstruct import anchor_payload_from_view
from repro.faults import FAILPOINTS
from repro.graph.storage import GraphStorage
from repro.kvstore import WriteBatch
from repro.mvcc.transaction import Transaction

FAILPOINTS.register("migration.commit_batch")


class Migrator:
    """Encodes expiring undo deltas into the historical store."""

    def __init__(
        self,
        storage: GraphStorage,
        history: HistoricalStore,
        anchor_policy: Optional[AnchorPolicy] = None,
        workers: int = 0,
    ) -> None:
        self.storage = storage
        self.history = history
        self.anchor_policy = (
            anchor_policy if anchor_policy is not None else AnchorPolicy()
        )
        #: worker threads for the encoding fan-out; 0 = serial.  The
        #: pool is created lazily on the first epoch large enough to
        #: benefit and reused across epochs.
        self.workers = max(0, workers)
        self._pool = None
        self._pool_lock = threading.Lock()
        self.migrations = 0
        #: epochs whose encoding ran on the worker pool
        self.parallel_epochs = 0
        self.transactions_migrated = 0
        #: epochs whose atomic install failed and was rolled back (the
        #: transactions were requeued by the GC; nothing was lost)
        self.failed_epochs = 0
        #: callback ``(object_kind, gid)`` invoked once per object
        #: touched by a successfully installed epoch — the scrubber
        #: hooks this to prioritize freshly written records
        self.on_migrated = None
        #: newest migrated *content* version-end per object.  An
        #: anchor's interval is its content validity: it starts where
        #: the previous content record ended.  (Topology records track
        #: a separate timeline; anchor adjacency may be newer than the
        #: interval claims, which is safe because Expand re-checks
        #: every candidate edge's own transaction time.)
        self._last_content_end: dict[tuple[str, int], int] = {}

    def migrate(self, transactions: list[Transaction]) -> int:
        """Migrate the undo buffers of ``transactions``; returns the
        number of history records staged.

        Transactions are processed in commit order so per-object anchor
        counters and validity frontiers advance monotonically.
        """
        batch = WriteBatch()
        staged = 0
        ordered = sorted(
            transactions, key=lambda t: t.commit_ts if t.commit_ts else 0
        )
        # Staging mutates bookkeeping (counters, anchor cadence,
        # validity frontiers, read caches) before the epoch's single
        # atomic install.  Snapshot it so a failed install — I/O error,
        # injected fault — rolls everything back and the retried epoch
        # makes byte-identical decisions.
        counters_before = (
            self.transactions_migrated,
            self.history.records_written,
            self.history.anchors_written,
        )
        content_end_before = dict(self._last_content_end)
        anchor_state_before = self.anchor_policy.snapshot()
        touched: set[tuple[str, int]] = set()
        try:
            for txn, drafts in self._encode_epoch(ordered):
                if not drafts:
                    continue
                anchored: set[tuple[str, int]] = set()
                for draft in drafts:
                    self.history.stage_record(batch, draft)
                    staged += 1
                    touched.add((self._object_kind(draft), draft.gid))
                    self._maybe_stage_anchor(batch, draft, anchored)
                for draft in drafts:
                    if draft.segment != SEGMENT_TOPOLOGY:
                        key = (self._object_kind(draft), draft.gid)
                        self._last_content_end[key] = draft.tt_end
                self.transactions_migrated += 1
            # The epoch's atomic install (``putMultiples``).
            FAILPOINTS.check("migration.commit_batch")
            self.history.commit_batch(batch)
        except BaseException:
            (
                self.transactions_migrated,
                self.history.records_written,
                self.history.anchors_written,
            ) = counters_before
            self._last_content_end = content_end_before
            self.anchor_policy.restore(anchor_state_before)
            # Staging appended optimistically to the store's read
            # caches and key index; dropping them (which also advances
            # the read-cache epoch) guarantees no reader ever serves a
            # record from the rolled-back epoch.  The successful path
            # needs no call here: commit_batch itself bumps the epoch.
            self.history.invalidate_caches()
            self.failed_epochs += 1
            raise
        self.migrations += 1
        if self.on_migrated is not None:
            for object_kind, gid in sorted(touched):
                self.on_migrated(object_kind, gid)
        return staged

    def _encode_epoch(
        self, ordered: list[Transaction]
    ) -> list[tuple[Transaction, list[RecordDraft]]]:
        """Encode every transaction's deltas, returning commit order.

        The pure ``merge_transaction_deltas`` step is the epoch's CPU
        cost; with workers it fans out over the pool, but the returned
        list is always in ``ordered``'s (commit-timestamp) order, so
        the staging/install phase is identical either way.  A
        transaction with an empty undo buffer maps to ``[]``.
        """
        jobs = []
        for txn in ordered:
            deltas = [delta for _record, delta in txn.undo_buffer]
            jobs.append(
                (txn, deltas, self._edge_statics(txn) if deltas else {})
            )
        nonempty = sum(1 for _txn, deltas, _statics in jobs if deltas)
        if self.workers > 0 and nonempty > 1:
            pool = self._ensure_pool()
            drafts_list = list(
                pool.map(
                    lambda job: (
                        merge_transaction_deltas(job[1], job[2])
                        if job[1]
                        else []
                    ),
                    jobs,
                )
            )
            self.parallel_epochs += 1
        else:
            drafts_list = [
                merge_transaction_deltas(deltas, statics) if deltas else []
                for _txn, deltas, statics in jobs
            ]
        return [
            (txn, drafts)
            for (txn, _deltas, _statics), drafts in zip(jobs, drafts_list)
        ]

    def _ensure_pool(self):
        with self._pool_lock:
            if self._pool is None:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="aeong-migrate",
                )
            return self._pool

    def close(self) -> None:
        """Shut down the encoding pool (idempotent; a later epoch would
        lazily recreate it)."""
        with self._pool_lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)

    def forget_object(self, object_kind: str, gid: int) -> None:
        """Drop per-object migration state (after final reclamation)."""
        self._last_content_end.pop((object_kind, gid), None)
        self.anchor_policy.forget(object_kind, gid)

    @staticmethod
    def _object_kind(draft: RecordDraft) -> str:
        return "edge" if draft.segment == SEGMENT_EDGE else "vertex"

    def _edge_statics(self, txn: Transaction) -> dict[int, tuple[str, int, int]]:
        """Static (type, from, to) info for every edge the txn touched."""
        statics: dict[int, tuple[str, int, int]] = {}
        for record, delta in txn.undo_buffer:
            if delta.object_kind == "edge" and delta.object_gid not in statics:
                statics[delta.object_gid] = (
                    record.edge_type,
                    record.from_gid,
                    record.to_gid,
                )
        return statics

    def _maybe_stage_anchor(
        self, batch: WriteBatch, draft: RecordDraft, anchored: set
    ) -> None:
        object_kind = self._object_kind(draft)
        anchor_segment = (
            SEGMENT_EDGE if object_kind == "edge" else SEGMENT_VERTEX
        )
        if not self.anchor_policy.should_anchor(object_kind, draft.gid):
            return
        if (object_kind, draft.gid) in anchored:
            return  # one anchor per object per transaction
        valid_from = self._last_content_end.get((object_kind, draft.gid))
        if valid_from is None or valid_from >= draft.tt_end:
            # No content record migrated yet (nothing older exists in
            # the store, so a full-state copy adds nothing), or a
            # degenerate interval: skip.
            return
        record = (
            self.storage.vertex_record(draft.gid)
            if object_kind == "vertex"
            else self.storage.edge_record(draft.gid)
        )
        if record is None:
            return  # object already reclaimed; skip the anchor
        state = historical_state(record, draft.tt_end)
        if state is None:
            return  # the version did not exist (pre-creation)
        self.history.stage_anchor(
            batch,
            anchor_segment,
            draft.gid,
            valid_from,
            draft.tt_end,
            anchor_payload_from_view(state),
        )
        anchored.add((object_kind, draft.gid))
