"""Group commit: the engine's asynchronous, batching WAL write path.

The seed write path did one WAL append *and one fsync* per commit,
inside the engine's close lock — so N concurrent committers paid N
device syncs and serialized the slowest I/O in the hottest critical
section.  This module replaces that with the classic group-commit
design (the same shape as PostgreSQL's commit_delay path and RocksDB's
write group):

* Committers **enqueue** their journal record on a bounded queue while
  holding the close lock (so queue order is commit-timestamp order),
  then release the lock and block on a per-commit
  :class:`CommitTicket`.
* A single daemon **writer thread** drains whatever has accumulated,
  packs the whole batch into **one WAL frame**, appends once, fsyncs
  once, publishes the batch to replication in commit-ts order, and
  only then completes every ticket in the batch.
* A commit is **acknowledged only after the shared fsync** — exactly
  the ``durability_mode="fsync"`` contract of the per-commit path, at
  a fraction of the fsync count: at high concurrency fsyncs-per-commit
  drops well below 1.

Backpressure: :meth:`GroupCommitWriter.submit` blocks while the queue
holds ``wal_queue_limit`` records.  The blocked committer still holds
its :class:`~repro.resilience.AdmissionGate` slot, so sustained WAL
pressure fills the gate and *new* transactions are shed with
``OverloadError`` — bounded memory, no silent unbounded queueing.

Failure semantics: any exception the writer hits while persisting a
batch (including injected :class:`~repro.faults.SimulatedCrash` /
:class:`~repro.faults.FaultInjected` at the ``wal.group.*`` sites) is
delivered to **every ticket in that batch** — none of those commits is
acknowledged, and recovery lands on the acked prefix.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = ["CommitTicket", "GroupCommitWriter"]


class CommitTicket:
    """One committer's claim on a group-commit batch.

    ``wait()`` blocks until the writer thread has durably persisted the
    batch containing this commit, re-raising whatever the writer hit —
    including ``BaseException`` subclasses such as
    :class:`~repro.faults.SimulatedCrash`, which must propagate to the
    committer exactly as a synchronous append would have raised it.
    """

    __slots__ = ("commit_ts", "journal", "_done", "error")

    def __init__(self, commit_ts: int, journal: list) -> None:
        self.commit_ts = commit_ts
        self.journal = journal
        self._done = threading.Event()
        self.error: Optional[BaseException] = None

    def complete(self, error: Optional[BaseException] = None) -> None:
        self.error = error
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> None:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"commit {self.commit_ts} not durable within {timeout}s"
            )
        if self.error is not None:
            raise self.error


class GroupCommitWriter:
    """The async WAL writer: one thread, one frame and one fsync per
    batch of concurrent commits.

    Parameters
    ----------
    wal:
        An :class:`~repro.core.durability.EngineWal`; each drained
        batch goes through its :meth:`append_batch`.
    replication:
        A :class:`~repro.replication.ReplicationState`; durable batches
        are published via ``note_commit_batch`` *after* the fsync and
        in commit-ts order, so replicas only ever see acked records.
    tracer:
        The engine's span tracer; each physical batch write is timed
        under the ``wal.group_commit`` span (visible in PROFILE and
        ``metrics_text()`` histograms).
    queue_limit:
        ``ResilienceConfig.wal_queue_limit`` — submissions block while
        this many records are pending.
    """

    def __init__(
        self, wal, replication=None, tracer=None, queue_limit: int = 1024
    ) -> None:
        self.wal = wal
        self.replication = replication
        self.tracer = tracer
        self.queue_limit = max(1, queue_limit)
        self._cond = threading.Condition()
        self._pending: list[CommitTicket] = []
        self._writing = False
        self._stopping = False
        #: Set to the fatal exception once a batch dies on a
        #: ``BaseException`` that is not an ``Exception`` (e.g. an
        #: injected :class:`~repro.faults.SimulatedCrash`): the
        #: "process" is dead, and nothing may be appended past the
        #: crash point — later submissions fail with the same crash
        #: instead of writing after a torn frame.
        self._dead: Optional[BaseException] = None
        # -- telemetry (metrics()["write_path"]) --
        self.commits_submitted = 0
        self.batches_written = 0
        self.records_written = 0
        self.max_batch = 0
        self.backpressure_waits = 0
        self.batch_errors = 0
        self._thread = threading.Thread(
            target=self._run, name="aeong-wal-writer", daemon=True
        )
        self._thread.start()

    # -- producer side ---------------------------------------------------

    def submit(self, commit_ts: int, journal: list) -> CommitTicket:
        """Enqueue one committed transaction's journal for the next
        batch; returns the ticket to wait on.

        Called with the engine's close lock held, which is what makes
        queue order identical to commit-timestamp order.  Blocks (still
        holding that lock — deliberate backpressure, see module
        docstring) while the queue is at ``queue_limit``.
        """
        ticket = CommitTicket(commit_ts, journal)
        with self._cond:
            if self._dead is not None:
                raise self._dead
            if self._stopping:
                raise RuntimeError("group-commit writer is stopped")
            while len(self._pending) >= self.queue_limit:
                self.backpressure_waits += 1
                self._cond.wait()
                if self._dead is not None:
                    raise self._dead
                if self._stopping:
                    raise RuntimeError("group-commit writer is stopped")
            self._pending.append(ticket)
            self.commits_submitted += 1
            self._cond.notify_all()
        return ticket

    def flush(self, timeout: Optional[float] = None) -> None:
        """Barrier: block until everything submitted so far has been
        persisted (or failed).  Used by checkpoint/close to quiesce the
        write path before touching the WAL underneath it."""
        with self._cond:
            if not self._cond.wait_for(
                lambda: not self._pending and not self._writing, timeout
            ):
                raise TimeoutError("group-commit writer did not drain")

    def stop(self) -> None:
        """Drain the queue and join the writer thread (idempotent).

        Everything already submitted is still persisted — a committer
        blocked on its ticket gets a normal acknowledgement — but new
        submissions are refused.
        """
        with self._cond:
            if self._stopping:
                thread = None
            else:
                self._stopping = True
                thread = self._thread
            self._cond.notify_all()
        if thread is not None:
            thread.join()

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    def metrics(self) -> dict:
        batches = self.batches_written
        return {
            "enabled": True,
            "commits_submitted": self.commits_submitted,
            "batches_written": batches,
            "records_written": self.records_written,
            "max_batch": self.max_batch,
            "avg_batch": (
                round(self.records_written / batches, 3) if batches else 0.0
            ),
            "queue_depth": self.queue_depth,
            "queue_limit": self.queue_limit,
            "backpressure_waits": self.backpressure_waits,
            "batch_errors": self.batch_errors,
        }

    # -- writer thread ---------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._stopping:
                    self._cond.wait()
                if not self._pending and self._stopping:
                    return
                batch = self._pending
                self._pending = []
                self._writing = True
                # Wake any committer blocked on a full queue.
                self._cond.notify_all()
            error: Optional[BaseException] = self._dead
            if error is None:
                try:
                    self._persist(batch)
                except BaseException as exc:  # noqa: BLE001 — delivered per ticket
                    error = exc
                    if not isinstance(exc, Exception):
                        # A simulated crash killed the "process": never
                        # append past the crash point (a later write
                        # would turn the torn tail into interior
                        # corruption, which recovery rightly refuses to
                        # repair silently).
                        self._dead = exc
            if error is not None:
                self.batch_errors += 1
            with self._cond:
                self._writing = False
                self._cond.notify_all()
            for ticket in batch:
                ticket.complete(error)

    def _persist(self, batch: list[CommitTicket]) -> None:
        records = [(t.commit_ts, t.journal) for t in batch]
        if self.tracer is not None:
            with self.tracer.span("wal.group_commit"):
                self.wal.append_batch(records)
        else:
            self.wal.append_batch(records)
        self.batches_written += 1
        self.records_written += len(records)
        self.max_batch = max(self.max_batch, len(records))
        if self.replication is not None:
            # Only after the shared fsync: replicas must never apply a
            # record the primary could still lose.
            self.replication.note_commit_batch(
                [(ts, list(journal)) for ts, journal in records]
            )
