"""Anchor placement (paper section 4.2, "Anchor data").

Storing only backward diffs makes deep-history retrieval expensive:
reconstructing an old version means replaying every younger diff.  To
bound the replay chain the migrator inserts an **anchor** — a complete
materialized copy of the object's state — after every ``u`` migrated
delta records of that object.  Figure 6(a)'s experiment sweeps ``u``:
small values trade storage for shorter recovery chains.

The anchor for the version a delta record reconstructs is computed at
migration time by walking the in-place record's (still intact) delta
chain from the current state back past every change committed at or
after the version's end timestamp — including uncommitted changes of
live transactions, which are by definition newer.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.views import EdgeView, VertexView


class AnchorPolicy:
    """Decides which migrated records get a companion anchor."""

    def __init__(self, interval: int = 10) -> None:
        if interval < 0:
            raise ValueError("anchor interval must be >= 0 (0 disables)")
        self.interval = interval
        self._counters: dict[tuple[str, int], int] = {}

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    def should_anchor(self, object_kind: str, gid: int) -> bool:
        """Count one migrated record; True when an anchor is due."""
        if not self.enabled:
            return False
        key = (object_kind, gid)
        count = self._counters.get(key, 0) + 1
        if count >= self.interval:
            self._counters[key] = 0
            return True
        self._counters[key] = count
        return False

    def forget(self, object_kind: str, gid: int) -> None:
        """Drop counter state for a reclaimed object."""
        self._counters.pop((object_kind, gid), None)

    def snapshot(self) -> dict:
        """Copy the counter state (taken before a migration epoch)."""
        return dict(self._counters)

    def restore(self, state: dict) -> None:
        """Roll counters back after a failed epoch, so the retry makes
        identical anchor-placement decisions."""
        self._counters = dict(state)


def historical_state(record, version_tt_end: int) -> Optional[object]:
    """Materialize the full state of ``record``'s version ending at
    ``version_tt_end`` by replaying its in-place delta chain.

    Returns a :class:`VertexView`/:class:`EdgeView`, or ``None`` when
    the version did not exist (anchors are only placed on existing
    versions).  Called during migration, before the garbage collector
    truncates the chain, so every younger delta is still reachable.
    """
    from repro.graph.vertex import VertexRecord

    view = (
        VertexView(record)
        if isinstance(record, VertexRecord)
        else EdgeView(record)
    )
    delta = record.delta_head
    while delta is not None:
        commit_ts = delta.commit_info.commit_ts
        # Uncommitted deltas (commit_ts None) are newer than any
        # committed version; changes committed at or after the target
        # version's end must all be undone.
        if commit_ts is not None and commit_ts < version_tt_end:
            break
        view.step_back(delta)
        delta = delta.next
    return view if view.exists else None
