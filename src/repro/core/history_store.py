"""The historical data storage engine (paper section 4.2).

Wraps the key-value store with the AeonG record layout: merged backward
deltas under ``D`` keys, full-state anchors under ``A`` keys, topology
records in their own segment.  The central read operation,
:meth:`HistoricalStore.fetch_versions`, is the paper's ``FetchFromKV``:
seek the nearest anchor newer than the queried time, then walk the
younger-to-older delta records applying each backward diff, yielding
every reconstructed version that satisfies the temporal condition.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional

from repro.common.timeutil import MAX_TIMESTAMP
from repro.core import keys as history_keys
from repro.errors import IntegrityError, StorageError
from repro.faults import FAILPOINTS, MODE_CORRUPT, corrupt_bytes
from repro.core.deltas import (
    RecordDraft,
    decode_record_payload,
    encode_record_payload,
)
from repro.integrity import QuarantineSet
from repro.core.reconstruct import (
    apply_content_record,
    apply_topology_record,
    edge_view_from_anchor,
    vertex_view_from_anchor,
)
from repro.core.temporal import TemporalCondition
from repro.graph.views import EdgeView, VertexView, _copy_view as _clone
from repro.kvstore import KVStore, WriteBatch

FAILPOINTS.register("history.fetch")


class _QuarantineDegrade(Exception):
    """Internal control flow: a quarantined read degrading to
    current-only results.  Deliberately *not* a StorageError — policy
    degradation must not feed the circuit breaker."""


class _CorruptPayload:
    """Cache placeholder for a record value that failed its checksum.

    Decode failures are deferred to the point a replay actually *needs*
    the payload: a read whose range stops above the damaged record must
    still succeed (the record's key intervals stay trustworthy, so
    range filtering works), while any reconstruction that would step
    through the damage raises the original
    :class:`~repro.errors.IntegrityError`.
    """

    __slots__ = ("key", "error")

    def __init__(self, key: bytes, error: IntegrityError) -> None:
        self.key = key
        self.error = error

    def raise_(self) -> None:
        raise IntegrityError(
            f"history record {self.key.hex()} is unreadable: {self.error}"
        )


def _merge_mentions(payload: dict, labels: set, values: dict) -> None:
    """Fold one content payload into the pruning aggregates."""
    for field in ("la", "lr"):
        for label in payload.get(field, ()):
            labels.add(label)
    diff = payload.get("p")
    if diff:
        for name, value in diff.items():
            bucket = values.get(name)
            if bucket is None:
                values[name] = [value]
            elif value not in bucket:
                bucket.append(value)


class HistoricalStore:
    """AeonG's reclaimed-delta store over a key-value engine."""

    def __init__(self, kv: Optional[KVStore] = None) -> None:
        self.kv = kv if kv is not None else KVStore()
        #: the owning engine's ResilienceController (or None): gates
        #: fetches through the history-store circuit breaker and feeds
        #: it success/failure observations
        self.resilience = None
        self.records_written = 0
        self.anchors_written = 0
        self.reconstructions = 0
        #: record payloads that passed / predated checksum verification
        self.checksums_verified = 0
        self.legacy_records = 0
        #: transaction-time ranges the scrubber has found damaged and
        #: not yet repaired; fetches overlapping them refuse to serve
        #: silently-wrong reconstructions (see repro.integrity)
        self.quarantine = QuarantineSet()
        # Which objects have any migrated record, by kind.  Scans use
        # this to skip the KV store entirely for never-migrated objects
        # (the overwhelmingly common case in a mostly-static graph).
        self._known: dict[str, set[int]] = {"vertex": set(), "edge": set()}
        # History records are immutable once written, so decoded
        # payloads can be cached by key.  Consumers must not mutate the
        # cached dicts (reconstruction only reads them).
        self._payload_cache: dict[bytes, dict] = {}
        # Lazily built per-object record lists (the "block cache"):
        # (segment, kind, gid) -> [(tt_start, tt_end, payload)] sorted
        # ascending by tt_end.
        self._object_cache: dict[tuple[bytes, bytes, int], list] = {}
        # gid -> (labels mentioned in diffs, {prop: [values in diffs]});
        # the scan's O(1) pruning structure (see vertex_mentions).
        self._mention_cache: dict[int, tuple[set, dict]] = {}
        if len(self.kv) > 0:
            self._rebuild_known()

    _PAYLOAD_CACHE_LIMIT = 200_000

    def _decode_cached(self, key: bytes, value: bytes) -> dict:
        payload = self._payload_cache.get(key)
        if payload is None:
            payload, checksummed = decode_record_payload(value)
            if checksummed:
                self.checksums_verified += 1
            else:
                self.legacy_records += 1
            if len(self._payload_cache) >= self._PAYLOAD_CACHE_LIMIT:
                self._payload_cache.clear()
            self._payload_cache[key] = payload
        return payload

    def _rebuild_known(self) -> None:
        for key, _value in self.kv.scan_all():
            decoded = history_keys.decode_key(key)
            kind = "edge" if decoded.segment == history_keys.SEGMENT_EDGE else "vertex"
            self._known[kind].add(decoded.gid)

    def known_gids(self, object_kind: str) -> set[int]:
        """Gids with at least one migrated record (live reference)."""
        return self._known[object_kind]

    # -- write side (used by Migrate) ------------------------------------

    def stage_record(self, batch: WriteBatch, draft: RecordDraft) -> None:
        """Add one merged delta record to a migration batch."""
        key = history_keys.encode_key(
            draft.segment,
            history_keys.KIND_DELTA,
            draft.gid,
            draft.tt_start,
            draft.tt_end,
        )
        batch.put(key, draft.encode_payload())
        kind = "edge" if draft.segment == history_keys.SEGMENT_EDGE else "vertex"
        self._known[kind].add(draft.gid)
        self._cache_append(
            draft.segment,
            history_keys.KIND_DELTA,
            draft.gid,
            draft.tt_start,
            draft.tt_end,
            draft.payload,
        )
        self.records_written += 1

    def stage_anchor(
        self,
        batch: WriteBatch,
        segment: bytes,
        gid: int,
        tt_start: int,
        tt_end: int,
        payload: dict,
    ) -> None:
        """Add one full-state anchor record to a migration batch."""
        key = history_keys.encode_key(
            segment, history_keys.KIND_ANCHOR, gid, tt_start, tt_end
        )
        batch.put(key, encode_record_payload(payload))
        self._cache_append(
            segment, history_keys.KIND_ANCHOR, gid, tt_start, tt_end, payload
        )
        self.anchors_written += 1

    def commit_batch(self, batch: WriteBatch) -> None:
        """Atomically install a migration epoch (``putMultiples``)."""
        if batch:
            self.kv.write(batch)

    # -- read side (FetchFromKV) ---------------------------------------------

    def fetch_versions(
        self,
        object_kind: str,
        gid: int,
        cond: TemporalCondition,
        base_view=None,
    ) -> Iterator:
        """Reconstruct reclaimed versions of one object matching ``cond``.

        ``base_view`` is "the object's oldest version from current
        storage" (Algorithm 2 line 14) — the state reconstruction
        starts from when no anchor supersedes it.  Pass ``None`` for
        objects with no current-store record left.  Yields newest
        version first; a time-point caller can stop at the first hit.

        Routed through the engine's history-store circuit breaker when
        one is attached: while the breaker is open the fetch degrades
        per the ``degraded_reads`` policy (raise
        :class:`~repro.errors.DegradedModeError`, or yield nothing so
        callers serve current-only results), and every KV failure or
        success feeds the breaker.  The ``history.fetch`` failpoint
        fires here so tests can inject deterministic store failures.
        """
        ctrl = self.resilience
        if ctrl is not None and not ctrl.allow_history_read():
            return iter(())
        try:
            mode = FAILPOINTS.check("history.fetch")
            if mode == MODE_CORRUPT:
                # At-rest bit rot: damage the stored value itself, so
                # the failure surfaces where it would in production —
                # the record's checksum verification at decode time.
                self._corrupt_stored_record(object_kind, gid)
            if self.quarantine.blocks(object_kind, gid, cond.t1, cond.t2):
                if ctrl is None or ctrl.quarantined_read_raises():
                    raise IntegrityError(
                        f"{object_kind} gid={gid}: temporal read over a "
                        "quarantined transaction-time range (awaiting "
                        "scrub repair)"
                    )
                raise _QuarantineDegrade()
            versions = list(
                self._fetch_versions(object_kind, gid, cond, base_view)
            )
        except _QuarantineDegrade:
            # degraded_reads="current-only": serve no historical
            # versions rather than possibly-wrong ones
            return iter(())
        except StorageError:
            if ctrl is not None:
                ctrl.history_failed()
            raise
        if ctrl is not None:
            ctrl.history_ok()
        return iter(versions)

    def _corrupt_stored_record(self, object_kind: str, gid: int) -> bool:
        """Flip one bit in the object's first stored record value (the
        ``corrupt`` mode of the ``history.fetch`` failpoint).  Returns
        False when the object has no stored records to damage."""
        segment = (
            history_keys.SEGMENT_VERTEX
            if object_kind == "vertex"
            else history_keys.SEGMENT_EDGE
        )
        prefix = history_keys.object_prefix(
            segment, history_keys.KIND_DELTA, gid
        )
        for key, value in self.kv.scan_prefix(prefix):
            batch = WriteBatch()
            batch.put(key, corrupt_bytes(value))
            self.kv.write(batch)
            # decoded payloads may already be cached; drop them so the
            # damaged bytes are actually re-read and re-verified
            self.invalidate_caches()
            return True
        return False

    def _fetch_versions(
        self,
        object_kind: str,
        gid: int,
        cond: TemporalCondition,
        base_view=None,
    ) -> Iterator:
        segment = (
            history_keys.SEGMENT_VERTEX
            if object_kind == "vertex"
            else history_keys.SEGMENT_EDGE
        )
        base, include_base = self._reconstruction_base(
            segment, object_kind, gid, cond, base_view
        )
        if base is None:
            return
        records = self._collect_records(segment, gid, cond.t1, base.tt_start)
        if cond.is_point:
            # State-at-t semantics: undo *every* change that happened
            # after t (both the content and the topology timeline) and
            # surface the single resulting state.  The version interval
            # reported (and checked) is the content timeline's, which
            # rejects states that began only after t.
            content_tt = (base.tt_start, base.tt_end)
            for tt_start, tt_end, seg, payload in records:
                self.reconstructions += 1
                self._apply(base, seg, payload, tt_start, tt_end)
                if seg != history_keys.SEGMENT_TOPOLOGY:
                    content_tt = (tt_start, tt_end)
            base.tt_start, base.tt_end = content_tt
            if base.exists and cond.matches(base.tt_start, base.tt_end):
                yield base
            return
        # Time-slice: enumerate each distinct content state whose
        # interval touches the range, newest first.  Topology records
        # are applied silently — structural changes do not create
        # content versions (the separate structural transaction-time
        # field exists precisely for this, section 4.1).
        if include_base and base.exists and cond.matches(base.tt_start, base.tt_end):
            yield _clone(base)
        for tt_start, tt_end, seg, payload in records:
            self.reconstructions += 1
            self._apply(base, seg, payload, tt_start, tt_end)
            if seg == history_keys.SEGMENT_TOPOLOGY:
                continue
            if base.exists and cond.matches(base.tt_start, base.tt_end):
                yield _clone(base)

    @staticmethod
    def _apply(view, segment: bytes, payload: dict, tt_start: int, tt_end: int) -> None:
        if isinstance(payload, _CorruptPayload):
            payload.raise_()
        if segment == history_keys.SEGMENT_TOPOLOGY:
            apply_topology_record(view, payload, tt_start, tt_end)
        else:
            apply_content_record(view, payload, tt_start, tt_end)

    def _reconstruction_base(
        self, segment: bytes, object_kind: str, gid: int, cond, base_view
    ):
        """Pick anchor, current-store base, or blank placeholder.

        Returns ``(view, include_base)``; ``include_base`` marks an
        anchor whose own version may satisfy the condition (a
        current-store base was already surfaced by the caller's scan of
        unreclaimed versions, so it must not be yielded again).
        """
        anchor = self._seek_anchor(segment, gid, cond.t2)
        if anchor is not None:
            tt_start, tt_end, payload = anchor
            if isinstance(payload, _CorruptPayload):
                payload.raise_()
            if base_view is None or tt_end <= base_view.tt_start:
                if object_kind == "vertex":
                    view = vertex_view_from_anchor(gid, payload, tt_start, tt_end)
                else:
                    view = edge_view_from_anchor(gid, payload, tt_start, tt_end)
                return view, True
        if base_view is not None:
            return _clone(base_view), False
        newest_end = self._newest_record_end(segment, gid)
        if newest_end is None:
            return None, False
        blank = (
            VertexView.blank(gid, newest_end, MAX_TIMESTAMP)
            if object_kind == "vertex"
            else EdgeView.blank(gid, newest_end, MAX_TIMESTAMP)
        )
        return blank, False

    # -- per-object read cache -------------------------------------------
    #
    # The read path would otherwise pay one KV seek + key decode per
    # record per query.  A real RocksDB serves hot seeks from its
    # memtable and block cache at sub-microsecond cost; the equivalent
    # here is an in-memory mirror of each object's record list, built
    # lazily from the KV store on first access and appended to by the
    # migrator (records arrive in commit order, so the lists stay
    # sorted by ``tt_end``).

    def _records_for(
        self, segment: bytes, kind: bytes, gid: int
    ) -> list[tuple[int, int, dict]]:
        """The object's records in one segment, ascending by tt_end."""
        cache_key = (segment, kind, gid)
        records = self._object_cache.get(cache_key)
        if records is None:
            records = []
            prefix = history_keys.object_prefix(segment, kind, gid)
            for key, value in self.kv.scan_prefix(prefix):
                decoded = history_keys.decode_key(key)
                try:
                    payload = self._decode_cached(key, value)
                except IntegrityError as exc:
                    # Defer the failure: keys are still sound, so reads
                    # that never replay through this record may proceed.
                    payload = _CorruptPayload(key, exc)
                records.append((decoded.tt_start, decoded.tt_end, payload))
            self._object_cache[cache_key] = records
        return records

    def _cache_append(
        self, segment: bytes, kind: bytes, gid: int, tt_start: int, tt_end: int, payload: dict
    ) -> None:
        records = self._object_cache.get((segment, kind, gid))
        if records is not None:
            records.append((tt_start, tt_end, payload))
        if segment == history_keys.SEGMENT_VERTEX and kind == history_keys.KIND_DELTA:
            mentions = self._mention_cache.get(gid)
            if mentions is not None:
                _merge_mentions(payload, mentions[0], mentions[1])

    def _seek_anchor(self, segment: bytes, gid: int, t: int):
        """First anchor of ``gid`` with ``tt_end > t`` (nearest newer)."""
        anchors = self._records_for(segment, history_keys.KIND_ANCHOR, gid)
        index = bisect.bisect_right(anchors, t, key=lambda rec: rec[1])
        if index < len(anchors):
            return anchors[index]
        return None

    def _collect_records(
        self, segment: bytes, gid: int, t1: int, boundary: int
    ) -> list[tuple[int, int, bytes, dict]]:
        """All delta records with ``t1 < tt_end <= boundary``, newest
        first, merging the content and (for vertices) topology segments."""
        streams = [segment]
        if segment == history_keys.SEGMENT_VERTEX:
            streams.append(history_keys.SEGMENT_TOPOLOGY)
        collected: list[tuple[int, int, bytes, dict]] = []
        for seg in streams:
            records = self._records_for(seg, history_keys.KIND_DELTA, gid)
            low = bisect.bisect_right(records, t1, key=lambda rec: rec[1])
            for tt_start, tt_end, payload in records[low:]:
                if tt_end > boundary:
                    break
                collected.append((tt_start, tt_end, seg, payload))
        collected.sort(key=lambda rec: rec[1], reverse=True)
        return collected

    def _newest_record_end(self, segment: bytes, gid: int) -> Optional[int]:
        """Largest ``tt_end`` among the object's records (across the
        content and topology segments for vertices)."""
        streams = [segment]
        if segment == history_keys.SEGMENT_VERTEX:
            streams.append(history_keys.SEGMENT_TOPOLOGY)
        newest: Optional[int] = None
        for seg in streams:
            records = self._records_for(seg, history_keys.KIND_DELTA, gid)
            if records and (newest is None or records[-1][1] > newest):
                newest = records[-1][1]
        return newest

    # -- enumeration (for scans over reclaimed-only objects) ---------------

    def iter_gids(self, object_kind: str) -> Iterator[int]:
        """Distinct gids present in the store for one object kind.

        Uses a skip scan: after the first key of a gid, seek directly
        past that gid's prefix.
        """
        segment = (
            history_keys.SEGMENT_VERTEX
            if object_kind == "vertex"
            else history_keys.SEGMENT_EDGE
        )
        seg_prefix = history_keys.segment_prefix(
            segment, history_keys.KIND_DELTA
        )
        cursor = seg_prefix
        while True:
            found = None
            for key, _value in self.kv.seek(cursor):
                if not key.startswith(seg_prefix):
                    return
                found = history_keys.decode_key(key)
                break
            if found is None:
                return
            yield found.gid
            cursor = (
                history_keys.object_prefix(
                    segment, history_keys.KIND_DELTA, found.gid
                )
                + b"\xff" * 17
            )

    def content_payloads(self, object_kind: str, gid: int) -> list[dict]:
        """Every content-record payload of one object (cached).

        Used by the scan's pruning check: the set of values a property
        ever took is exactly {current value} ∪ {values in backward
        diffs}, so equality filters can reject an object without
        reconstructing any version.
        """
        segment = (
            history_keys.SEGMENT_VERTEX
            if object_kind == "vertex"
            else history_keys.SEGMENT_EDGE
        )
        records = self._records_for(segment, history_keys.KIND_DELTA, gid)
        return [payload for _s, _e, payload in records]

    def vertex_mentions(self, gid: int) -> tuple[set, dict]:
        """Aggregated pruning data for one vertex's reclaimed history:
        every label its diffs mention and every value each property
        ever took in a diff.  O(1) per scan candidate once built."""
        mentions = self._mention_cache.get(gid)
        if mentions is None:
            labels: set = set()
            values: dict = {}
            for payload in self.content_payloads("vertex", gid):
                if isinstance(payload, _CorruptPayload):
                    payload.raise_()
                _merge_mentions(payload, labels, values)
            mentions = (labels, values)
            self._mention_cache[gid] = mentions
        return mentions

    def topology_refs(
        self, gid: int, t1: int
    ) -> tuple[set[tuple[str, int, int]], set[tuple[str, int, int]]]:
        """Every out/in edge stub mentioned by topology records of
        ``gid`` ending after ``t1``.

        This is the ``VE`` lookup of Algorithm 3 (line 4): any edge
        alive at some instant ``>= t1`` but since detached appears in a
        topology record with ``tt_end > t1``, so the union of these
        stubs with the current adjacency over-approximates the
        candidate edge set; per-edge temporal checks then filter.
        """
        out_refs: set[tuple[str, int, int]] = set()
        in_refs: set[tuple[str, int, int]] = set()
        records = self._records_for(
            history_keys.SEGMENT_TOPOLOGY, history_keys.KIND_DELTA, gid
        )
        low = bisect.bisect_right(records, t1, key=lambda rec: rec[1])
        for _tt_start, _tt_end, payload in records[low:]:
            if isinstance(payload, _CorruptPayload):
                payload.raise_()
            for field in ("oa", "or"):
                for ref in payload.get(field, ()):
                    out_refs.add((ref[0], ref[1], ref[2]))
            for field in ("ia", "ir"):
                for ref in payload.get(field, ()):
                    in_refs.add((ref[0], ref[1], ref[2]))
        return out_refs, in_refs

    def has_history(self, object_kind: str, gid: int) -> bool:
        """Whether any reclaimed record exists for the object."""
        return gid in self._known[object_kind]

    def invalidate_caches(self) -> None:
        """Drop the read caches (rebuilt lazily from the KV store).

        Called after a failed migration epoch: staging optimistically
        appended to the caches, so a retry of the same drafts would
        otherwise leave duplicate cache entries.
        """
        self._payload_cache.clear()
        self._object_cache.clear()
        self._mention_cache.clear()

    # -- retention ---------------------------------------------------------------

    def prune(self, before_ts: int) -> int:
        """Drop every record of versions that ended at or before
        ``before_ts``; returns the number of records removed.

        Retention policy for the history store: temporal queries older
        than the cut-off stop finding those versions, while everything
        newer (including reconstructions that used to pass *through*
        the pruned region — they only ever replay records newer than
        the target version) is unaffected.
        """
        doomed: list[bytes] = []
        for key, _value in self.kv.scan_all():
            decoded = history_keys.decode_key(key)
            if decoded.tt_end <= before_ts:
                doomed.append(key)
        if not doomed:
            return 0
        batch = WriteBatch()
        for key in doomed:
            batch.delete(key)
        self.kv.write(batch)
        self.kv.compact()
        # Caches and the known-object set are rebuilt from scratch —
        # pruning is a rare administrative operation.
        self._payload_cache.clear()
        self._object_cache.clear()
        self._mention_cache.clear()
        self._known = {"vertex": set(), "edge": set()}
        self._rebuild_known()
        return len(doomed)

    # -- accounting --------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Physical footprint of the history store."""
        return self.kv.approximate_bytes()
