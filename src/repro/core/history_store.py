"""The historical data storage engine (paper section 4.2).

Wraps the key-value store with the AeonG record layout: merged backward
deltas under ``D`` keys, full-state anchors under ``A`` keys, topology
records in their own segment.  The central read operation,
:meth:`HistoricalStore.fetch_versions`, is the paper's ``FetchFromKV``:
seek the nearest anchor newer than the queried time, then walk the
younger-to-older delta records applying each backward diff, yielding
every reconstructed version that satisfies the temporal condition.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from typing import Iterable, Iterator, Optional

from repro.common.timeutil import MAX_TIMESTAMP
from repro.core import keys as history_keys
from repro.errors import IntegrityError, StorageError
from repro.faults import FAILPOINTS, MODE_CORRUPT, corrupt_bytes
from repro.core.deltas import (
    RecordDraft,
    decode_record_payload,
    encode_record_payload,
)
from repro.integrity import QuarantineSet
from repro.core.reconstruct import (
    apply_content_record,
    apply_topology_record,
    edge_view_from_anchor,
    vertex_view_from_anchor,
)
from repro.core.temporal import TemporalCondition
from repro.graph.views import EdgeView, VertexView, _copy_view as _clone
from repro.kvstore import KVStore, WriteBatch

FAILPOINTS.register("history.fetch")


class _QuarantineDegrade(Exception):
    """Internal control flow: a quarantined read degrading to
    current-only results.  Deliberately *not* a StorageError — policy
    degradation must not feed the circuit breaker."""


class _CorruptPayload:
    """Cache placeholder for a record value that failed its checksum.

    Decode failures are deferred to the point a replay actually *needs*
    the payload: a read whose range stops above the damaged record must
    still succeed (the record's key intervals stay trustworthy, so
    range filtering works), while any reconstruction that would step
    through the damage raises the original
    :class:`~repro.errors.IntegrityError`.
    """

    __slots__ = ("key", "error")

    def __init__(self, key: bytes, error: IntegrityError) -> None:
        self.key = key
        self.error = error

    def raise_(self) -> None:
        raise IntegrityError(
            f"history record {self.key.hex()} is unreadable: {self.error}"
        )


class ReadMetrics:
    """Read-path performance counters (``metrics()["read_path"]``).

    ``deltas_replayed`` counts backward-record applications actually
    paid; ``reconstructions_avoided`` counts the applications a cache
    hit saved (the hit entry's build cost — what serving the same fetch
    cold would have replayed).  ``versions_served`` counts reclaimed
    versions materialized for callers — the history-store side of the
    current-vs-reclaimed split whose current-store half is
    ``metrics()["operators"]["current_hits"]``.
    """

    __slots__ = (
        "fetches",
        "versions_served",
        "cache_hits",
        "cache_misses",
        "cache_evictions",
        "anchor_seeks",
        "deltas_replayed",
        "reconstructions_avoided",
        "preload_batches",
        "preload_objects",
    )

    def __init__(self) -> None:
        for slot in self.__slots__:
            setattr(self, slot, 0)

    def as_dict(self) -> dict[str, int]:
        return {slot: getattr(self, slot) for slot in self.__slots__}


def _merge_mentions(payload: dict, labels: set, values: dict) -> None:
    """Fold one content payload into the pruning aggregates."""
    for field in ("la", "lr"):
        for label in payload.get(field, ()):
            labels.add(label)
    diff = payload.get("p")
    if diff:
        for name, value in diff.items():
            bucket = values.get(name)
            if bucket is None:
                values[name] = [value]
            elif value not in bucket:
                bucket.append(value)


class HistoricalStore:
    """AeonG's reclaimed-delta store over a key-value engine."""

    def __init__(
        self,
        kv: Optional[KVStore] = None,
        reconstruction_cache_size: int = 4096,
    ) -> None:
        self.kv = kv if kv is not None else KVStore()
        #: the owning engine's ResilienceController (or None): gates
        #: fetches through the history-store circuit breaker and feeds
        #: it success/failure observations
        self.resilience = None
        #: the owning engine's Tracer (or None): brackets fetch and
        #: reconstruct work with ``history.*`` spans (repro.observability)
        self.tracer = None
        self.records_written = 0
        self.anchors_written = 0
        self.reconstructions = 0
        #: record payloads that passed / predated checksum verification
        self.checksums_verified = 0
        self.legacy_records = 0
        #: transaction-time ranges the scrubber has found damaged and
        #: not yet repaired; fetches overlapping them refuse to serve
        #: silently-wrong reconstructions (see repro.integrity)
        self.quarantine = QuarantineSet()
        # Which objects have any migrated record, by kind.  Scans use
        # this to skip the KV store entirely for never-migrated objects
        # (the overwhelmingly common case in a mostly-static graph).
        self._known: dict[str, set[int]] = {"vertex": set(), "edge": set()}
        # History records are immutable once written, so decoded
        # payloads can be cached by key.  Consumers must not mutate the
        # cached dicts (reconstruction only reads them).
        self._payload_cache: dict[bytes, dict] = {}
        # Lazily built per-object record lists (the "block cache"):
        # (segment, kind, gid) -> [(tt_start, tt_end, payload)] sorted
        # ascending by tt_end.
        self._object_cache: dict[tuple[bytes, bytes, int], list] = {}
        # gid -> (labels mentioned in diffs, {prop: [values in diffs]});
        # the scan's O(1) pruning structure (see vertex_mentions).
        self._mention_cache: dict[int, tuple[set, dict]] = {}
        #: read-path performance counters (surfaced via engine metrics)
        self.read_metrics = ReadMetrics()
        #: maximum entries in the reconstruction cache; 0 disables it
        self.reconstruction_cache_size = reconstruction_cache_size
        # Invalidation epoch for the derived read structures below.  It
        # advances whenever the stored record set can have changed — a
        # migration commit, prune(), invalidate_caches() (which repair
        # paths route through) — so correctness never depends on a
        # caller remembering to flush a specific cache.
        self._epoch = 0
        # (object_kind, gid) -> (base_sig, versions, build_replays):
        # the LRU cache of fully reconstructed version lists.  ``versions``
        # is ascending by tt_end, one entry per content record, each a
        # frozen view (None where the state is non-existence);
        # ``base_sig`` is the reconstruction base's content interval
        # (None for fully reclaimed objects) and guards against the
        # base advancing without an epoch bump; ``versions is None``
        # marks an object whose full chain failed to decode this epoch.
        self._reconstruction_cache: OrderedDict[
            tuple[str, int], tuple[Optional[tuple[int, int]], Optional[list], int]
        ] = OrderedDict()
        # (segment, kind) -> {gid: [(tt_start, tt_end)] ascending by
        # tt_end}: the key index, built from one key-only scan at open
        # and appended to by staging (records arrive in commit order).
        # Serves anchor seeks, newest-record lookups, gid enumeration
        # and preload sizing without touching the KV store.  ``None``
        # means dropped by invalidation; rebuilt lazily.
        self._gid_index: Optional[
            dict[tuple[bytes, bytes], dict[int, list[tuple[int, int]]]]
        ] = None
        # object_kind -> memoized sorted known-gid list (scan order).
        self._known_sorted: dict[str, Optional[list[int]]] = {
            "vertex": None,
            "edge": None,
        }
        if len(self.kv) > 0:
            self._rebuild_index()
        else:
            self._gid_index = {}

    _PAYLOAD_CACHE_LIMIT = 200_000

    def _decode_cached(self, key: bytes, value: bytes) -> dict:
        payload = self._payload_cache.get(key)
        if payload is None:
            payload, checksummed = decode_record_payload(value)
            if checksummed:
                self.checksums_verified += 1
            else:
                self.legacy_records += 1
            if len(self._payload_cache) >= self._PAYLOAD_CACHE_LIMIT:
                self._payload_cache.clear()
            self._payload_cache[key] = payload
        return payload

    def _rebuild_index(self) -> None:
        """One key-only pass over the store rebuilding the known-object
        sets and the per-(segment, kind) key index together."""
        known: dict[str, set[int]] = {"vertex": set(), "edge": set()}
        index: dict[tuple[bytes, bytes], dict[int, list[tuple[int, int]]]] = {}
        for key, _value in self.kv.scan_all():
            decoded = history_keys.decode_key(key)
            kind = "edge" if decoded.segment == history_keys.SEGMENT_EDGE else "vertex"
            known[kind].add(decoded.gid)
            per_gid = index.setdefault((decoded.segment, decoded.kind), {})
            # scan_all yields keys ascending, so per-gid rows arrive
            # sorted by tt_end (the key order within an object).
            per_gid.setdefault(decoded.gid, []).append(
                (decoded.tt_start, decoded.tt_end)
            )
        self._known = known
        self._gid_index = index
        self._known_sorted = {"vertex": None, "edge": None}

    def _ensure_index(
        self,
    ) -> dict[tuple[bytes, bytes], dict[int, list[tuple[int, int]]]]:
        if self._gid_index is None:
            self._rebuild_index()
        return self._gid_index

    def _index_append(
        self, segment: bytes, kind: bytes, gid: int, tt_start: int, tt_end: int
    ) -> None:
        if self._gid_index is not None:
            per_gid = self._gid_index.setdefault((segment, kind), {})
            per_gid.setdefault(gid, []).append((tt_start, tt_end))

    def _bump_epoch(self) -> None:
        self._epoch += 1
        self._reconstruction_cache.clear()
        self._known_sorted = {"vertex": None, "edge": None}

    @property
    def epoch(self) -> int:
        """Current invalidation epoch of the derived read structures."""
        return self._epoch

    def known_gids(self, object_kind: str) -> set[int]:
        """Gids with at least one migrated record (live reference)."""
        return self._known[object_kind]

    def sorted_known_gids(self, object_kind: str) -> list[int]:
        """Memoized ascending list of :meth:`known_gids` (treat as
        read-only — scans iterate it on every unindexed query)."""
        cached = self._known_sorted.get(object_kind)
        if cached is None:
            cached = sorted(self._known[object_kind])
            self._known_sorted[object_kind] = cached
        return cached

    def discard_known(self, object_kind: str, gid: int) -> None:
        """Drop one gid from the known-object set (used by integrity
        repairs after they empty an object's record set)."""
        self._known[object_kind].discard(gid)
        self._known_sorted[object_kind] = None
        self._reconstruction_cache.pop((object_kind, gid), None)

    # -- write side (used by Migrate) ------------------------------------

    def stage_record(self, batch: WriteBatch, draft: RecordDraft) -> None:
        """Add one merged delta record to a migration batch."""
        key = history_keys.encode_key(
            draft.segment,
            history_keys.KIND_DELTA,
            draft.gid,
            draft.tt_start,
            draft.tt_end,
        )
        batch.put(key, draft.encode_payload())
        kind = "edge" if draft.segment == history_keys.SEGMENT_EDGE else "vertex"
        if draft.gid not in self._known[kind]:
            self._known[kind].add(draft.gid)
            self._known_sorted[kind] = None
        self._index_append(
            draft.segment,
            history_keys.KIND_DELTA,
            draft.gid,
            draft.tt_start,
            draft.tt_end,
        )
        self._cache_append(
            draft.segment,
            history_keys.KIND_DELTA,
            draft.gid,
            draft.tt_start,
            draft.tt_end,
            draft.payload,
        )
        self.records_written += 1

    def stage_anchor(
        self,
        batch: WriteBatch,
        segment: bytes,
        gid: int,
        tt_start: int,
        tt_end: int,
        payload: dict,
    ) -> None:
        """Add one full-state anchor record to a migration batch."""
        key = history_keys.encode_key(
            segment, history_keys.KIND_ANCHOR, gid, tt_start, tt_end
        )
        batch.put(key, encode_record_payload(payload))
        self._index_append(
            segment, history_keys.KIND_ANCHOR, gid, tt_start, tt_end
        )
        self._cache_append(
            segment, history_keys.KIND_ANCHOR, gid, tt_start, tt_end, payload
        )
        self.anchors_written += 1

    def commit_batch(self, batch: WriteBatch) -> None:
        """Atomically install a migration epoch (``putMultiples``).

        Installing records changes what reconstruction must produce, so
        the read-cache epoch advances here — the reconstruction cache
        and memoized scan lists are rebuilt on next use.
        """
        if batch:
            self.kv.write(batch)
            self._bump_epoch()

    # -- read side (FetchFromKV) ---------------------------------------------

    def fetch_versions(
        self,
        object_kind: str,
        gid: int,
        cond: TemporalCondition,
        base_view=None,
    ) -> Iterator:
        """Reconstruct reclaimed versions of one object matching ``cond``.

        ``base_view`` is "the object's oldest version from current
        storage" (Algorithm 2 line 14) — the state reconstruction
        starts from when no anchor supersedes it.  Pass ``None`` for
        objects with no current-store record left.  Yields newest
        version first; a time-point caller can stop at the first hit.

        Routed through the engine's history-store circuit breaker when
        one is attached: while the breaker is open the fetch degrades
        per the ``degraded_reads`` policy (raise
        :class:`~repro.errors.DegradedModeError`, or yield nothing so
        callers serve current-only results), and every KV failure or
        success feeds the breaker.  The ``history.fetch`` failpoint
        fires here so tests can inject deterministic store failures.

        When a tracer is attached, the whole fetch (including list
        materialization, so reconstruction work is inside the span) is
        bracketed by a ``history.fetch`` span — recorded on the error
        path too, so injected faults leave the nesting well-formed.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return self._fetch_versions_guarded(object_kind, gid, cond, base_view)
        with tracer.span("history.fetch"):
            return self._fetch_versions_guarded(object_kind, gid, cond, base_view)

    def _fetch_versions_guarded(
        self,
        object_kind: str,
        gid: int,
        cond: TemporalCondition,
        base_view=None,
    ) -> Iterator:
        ctrl = self.resilience
        if ctrl is not None and not ctrl.allow_history_read():
            return iter(())
        try:
            mode = FAILPOINTS.check("history.fetch")
            if mode == MODE_CORRUPT:
                # At-rest bit rot: damage the stored value itself, so
                # the failure surfaces where it would in production —
                # the record's checksum verification at decode time.
                self._corrupt_stored_record(object_kind, gid)
            if self.quarantine.blocks(object_kind, gid, cond.t1, cond.t2):
                if ctrl is None or ctrl.quarantined_read_raises():
                    raise IntegrityError(
                        f"{object_kind} gid={gid}: temporal read over a "
                        "quarantined transaction-time range (awaiting "
                        "scrub repair)"
                    )
                raise _QuarantineDegrade()
            versions = list(
                self._fetch_versions(object_kind, gid, cond, base_view)
            )
        except _QuarantineDegrade:
            # degraded_reads="current-only": serve no historical
            # versions rather than possibly-wrong ones
            return iter(())
        except StorageError:
            if ctrl is not None:
                ctrl.history_failed()
            raise
        if ctrl is not None:
            ctrl.history_ok()
        self.read_metrics.versions_served += len(versions)
        return iter(versions)

    def _corrupt_stored_record(self, object_kind: str, gid: int) -> bool:
        """Flip one bit in the object's first stored record value (the
        ``corrupt`` mode of the ``history.fetch`` failpoint).  Returns
        False when the object has no stored records to damage."""
        segment = (
            history_keys.SEGMENT_VERTEX
            if object_kind == "vertex"
            else history_keys.SEGMENT_EDGE
        )
        prefix = history_keys.object_prefix(
            segment, history_keys.KIND_DELTA, gid
        )
        for key, value in self.kv.scan_prefix(prefix):
            batch = WriteBatch()
            batch.put(key, corrupt_bytes(value))
            self.kv.write(batch)
            # decoded payloads may already be cached; drop them so the
            # damaged bytes are actually re-read and re-verified
            self.invalidate_caches()
            return True
        return False

    def _fetch_versions(
        self,
        object_kind: str,
        gid: int,
        cond: TemporalCondition,
        base_view=None,
    ) -> Iterator:
        segment = (
            history_keys.SEGMENT_VERTEX
            if object_kind == "vertex"
            else history_keys.SEGMENT_EDGE
        )
        self.read_metrics.fetches += 1
        versions = self._cached_versions(object_kind, segment, gid, base_view)
        if versions is None:
            yield from self._fetch_versions_uncached(
                object_kind, segment, gid, cond, base_view
            )
            return
        if cond.is_point:
            yield from self._serve_cached_point(segment, gid, versions, cond)
            return
        for tt_start, tt_end, frozen in reversed(versions):
            if frozen is not None and cond.matches(tt_start, tt_end):
                yield _clone(frozen)

    # -- reconstruction cache ---------------------------------------------
    #
    # ``FetchFromKV`` replays the same anchor+delta chains on every
    # query.  The cache stores, per object, the *complete* reconstructed
    # version list (built once from the topmost base straight down), so
    # any later condition is served by bisect over the list instead of a
    # replay — the reconstruct-as-needed rule with the work memoized.
    # Entries are invalidated wholesale by the epoch bump, and each
    # entry additionally records the base it was built from: the
    # current-store base can advance (GC reclaim truncates undo chains
    # without a KV write), which changes which versions are the
    # history's to serve, so a signature mismatch forces a rebuild.

    def _cached_versions(
        self, object_kind: str, segment: bytes, gid: int, base_view
    ) -> Optional[list]:
        """The object's cached version list, building it on a miss.

        Returns ``None`` when caching is disabled or the object's full
        chain cannot be decoded (the caller falls back to the bounded
        per-query replay, which may avoid the damaged record).
        """
        if self.reconstruction_cache_size <= 0:
            return None
        base_sig = (
            (base_view.tt_start, base_view.tt_end)
            if base_view is not None
            else None
        )
        cache = self._reconstruction_cache
        key = (object_kind, gid)
        entry = cache.get(key)
        if entry is not None and entry[0] == base_sig:
            cache.move_to_end(key)
            if entry[1] is None:
                return None  # known-unbuildable this epoch
            self.read_metrics.cache_hits += 1
            self.read_metrics.reconstructions_avoided += entry[2]
            return entry[1]
        self.read_metrics.cache_misses += 1
        try:
            versions, replays = self._build_versions(
                object_kind, segment, gid, base_view
            )
        except IntegrityError:
            cache[key] = (base_sig, None, 0)
            return None
        cache[key] = (base_sig, versions, replays)
        cache.move_to_end(key)
        while len(cache) > self.reconstruction_cache_size:
            cache.popitem(last=False)
            self.read_metrics.cache_evictions += 1
        return versions

    def _build_versions(
        self, object_kind: str, segment: bytes, gid: int, base_view
    ) -> tuple[list, int]:
        """Replay the object's whole record set once, freezing every
        content state.  The list excludes the base itself (a
        current-store base is surfaced by the caller's chain walk) and
        keeps non-existence states as ``None`` placeholders so point
        lookups can distinguish "deleted at t" from "version at t"."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return self._build_versions_inner(object_kind, segment, gid, base_view)
        with tracer.span("history.reconstruct"):
            return self._build_versions_inner(object_kind, segment, gid, base_view)

    def _build_versions_inner(
        self, object_kind: str, segment: bytes, gid: int, base_view
    ) -> tuple[list, int]:
        if base_view is not None:
            base = _clone(base_view)
        else:
            newest_end = self._newest_record_end(segment, gid)
            if newest_end is None:
                return [], 0
            base = (
                VertexView.blank(gid, newest_end, MAX_TIMESTAMP)
                if object_kind == "vertex"
                else EdgeView.blank(gid, newest_end, MAX_TIMESTAMP)
            )
        records = self._collect_records(segment, gid, -1, base.tt_start)
        versions: list[tuple[int, int, Optional[object]]] = []
        replays = 0
        for tt_start, tt_end, seg, payload in records:
            self.reconstructions += 1
            self.read_metrics.deltas_replayed += 1
            replays += 1
            self._apply(base, seg, payload, tt_start, tt_end)
            if seg != history_keys.SEGMENT_TOPOLOGY:
                versions.append(
                    (tt_start, tt_end, _clone(base) if base.exists else None)
                )
        versions.reverse()  # ascending by tt_end for bisect serving
        return versions, replays

    def _serve_cached_point(
        self, segment: bytes, gid: int, versions: list, cond: TemporalCondition
    ) -> Iterator:
        """State-at-t from the cached list: bisect to the content
        version containing ``t``, then apply the few topology records
        ending in ``(t, version end]`` — the frozen view was captured
        just after its content record, i.e. with only the structural
        changes *newer* than the version already undone."""
        t = cond.t1
        index = bisect.bisect_right(versions, t, key=lambda v: v[1])
        if index >= len(versions):
            return
        tt_start, tt_end, frozen = versions[index]
        if frozen is None or tt_start > t:
            return
        view = _clone(frozen)
        if segment == history_keys.SEGMENT_VERTEX:
            topo = self._records_for(
                history_keys.SEGMENT_TOPOLOGY, history_keys.KIND_DELTA, gid
            )
            low = bisect.bisect_right(topo, t, key=lambda rec: rec[1])
            high = bisect.bisect_right(topo, tt_end, lo=low, key=lambda rec: rec[1])
            for r_start, r_end, payload in reversed(topo[low:high]):
                if isinstance(payload, _CorruptPayload):
                    payload.raise_()
                apply_topology_record(view, payload, r_start, r_end)
            view.tt_start, view.tt_end = tt_start, tt_end
        if view.exists and cond.matches(view.tt_start, view.tt_end):
            yield view

    def _fetch_versions_uncached(
        self,
        object_kind: str,
        segment: bytes,
        gid: int,
        cond: TemporalCondition,
        base_view=None,
    ) -> Iterator:
        base, include_base = self._reconstruction_base(
            segment, object_kind, gid, cond, base_view
        )
        if base is None:
            return
        records = self._collect_records(segment, gid, cond.t1, base.tt_start)
        if cond.is_point:
            # State-at-t semantics: undo *every* change that happened
            # after t (both the content and the topology timeline) and
            # surface the single resulting state.  The version interval
            # reported (and checked) is the content timeline's, which
            # rejects states that began only after t.
            content_tt = (base.tt_start, base.tt_end)
            for tt_start, tt_end, seg, payload in records:
                self.reconstructions += 1
                self.read_metrics.deltas_replayed += 1
                self._apply(base, seg, payload, tt_start, tt_end)
                if seg != history_keys.SEGMENT_TOPOLOGY:
                    content_tt = (tt_start, tt_end)
            base.tt_start, base.tt_end = content_tt
            if base.exists and cond.matches(base.tt_start, base.tt_end):
                yield base
            return
        # Time-slice: enumerate each distinct content state whose
        # interval touches the range, newest first.  Topology records
        # are applied silently — structural changes do not create
        # content versions (the separate structural transaction-time
        # field exists precisely for this, section 4.1).
        if include_base and base.exists and cond.matches(base.tt_start, base.tt_end):
            yield _clone(base)
        for tt_start, tt_end, seg, payload in records:
            self.reconstructions += 1
            self.read_metrics.deltas_replayed += 1
            self._apply(base, seg, payload, tt_start, tt_end)
            if seg == history_keys.SEGMENT_TOPOLOGY:
                continue
            if base.exists and cond.matches(base.tt_start, base.tt_end):
                yield _clone(base)

    @staticmethod
    def _apply(view, segment: bytes, payload: dict, tt_start: int, tt_end: int) -> None:
        if isinstance(payload, _CorruptPayload):
            payload.raise_()
        if segment == history_keys.SEGMENT_TOPOLOGY:
            apply_topology_record(view, payload, tt_start, tt_end)
        else:
            apply_content_record(view, payload, tt_start, tt_end)

    def _reconstruction_base(
        self, segment: bytes, object_kind: str, gid: int, cond, base_view
    ):
        """Pick anchor, current-store base, or blank placeholder.

        Returns ``(view, include_base)``; ``include_base`` marks an
        anchor whose own version may satisfy the condition (a
        current-store base was already surfaced by the caller's scan of
        unreclaimed versions, so it must not be yielded again).
        """
        anchor = self._seek_anchor(segment, gid, cond.t2)
        if anchor is not None:
            tt_start, tt_end, payload = anchor
            if isinstance(payload, _CorruptPayload):
                payload.raise_()
            if base_view is None or tt_end <= base_view.tt_start:
                # An anchor staged at a structural commit ends mid-way
                # through the content version containing it.  Widen to
                # the containing version's own interval (from its delta
                # record) so the version's reported identity never
                # depends on which anchor a query starts from.
                tt_start, tt_end = self._containing_version(
                    segment, gid, tt_start, tt_end
                )
                if object_kind == "vertex":
                    view = vertex_view_from_anchor(gid, payload, tt_start, tt_end)
                else:
                    view = edge_view_from_anchor(gid, payload, tt_start, tt_end)
                return view, True
        if base_view is not None:
            return _clone(base_view), False
        newest_end = self._newest_record_end(segment, gid)
        if newest_end is None:
            return None, False
        blank = (
            VertexView.blank(gid, newest_end, MAX_TIMESTAMP)
            if object_kind == "vertex"
            else EdgeView.blank(gid, newest_end, MAX_TIMESTAMP)
        )
        return blank, False

    def _containing_version(
        self, segment: bytes, gid: int, tt_start: int, tt_end: int
    ) -> tuple[int, int]:
        """The content version interval containing ``[tt_start, tt_end)``.

        Anchors start where the previous content record ended, so the
        first content record ending after the anchor's start is the
        record of the version the anchor snapshots; fall back to the
        given interval when no such record covers it (e.g. a store
        whose seam was disturbed)."""
        records = self._records_for(segment, history_keys.KIND_DELTA, gid)
        index = bisect.bisect_right(records, tt_start, key=lambda rec: rec[1])
        if index < len(records):
            rec_start, rec_end, _payload = records[index]
            if rec_start <= tt_start and rec_end >= tt_end:
                return rec_start, rec_end
        return tt_start, tt_end

    # -- per-object read cache -------------------------------------------
    #
    # The read path would otherwise pay one KV seek + key decode per
    # record per query.  A real RocksDB serves hot seeks from its
    # memtable and block cache at sub-microsecond cost; the equivalent
    # here is an in-memory mirror of each object's record list, built
    # lazily from the KV store on first access and appended to by the
    # migrator (records arrive in commit order, so the lists stay
    # sorted by ``tt_end``).

    def _records_for(
        self, segment: bytes, kind: bytes, gid: int
    ) -> list[tuple[int, int, dict]]:
        """The object's records in one segment, ascending by tt_end."""
        cache_key = (segment, kind, gid)
        records = self._object_cache.get(cache_key)
        if records is None:
            index = self._gid_index
            if index is not None:
                per_gid = index.get((segment, kind))
                if not per_gid or gid not in per_gid:
                    # The index is authoritative about absence: skip
                    # the KV seek entirely for record-less objects.
                    self._object_cache[cache_key] = []
                    return []
            records = []
            prefix = history_keys.object_prefix(segment, kind, gid)
            for key, value in self.kv.scan_prefix(prefix):
                decoded = history_keys.decode_key(key)
                try:
                    payload = self._decode_cached(key, value)
                except IntegrityError as exc:
                    # Defer the failure: keys are still sound, so reads
                    # that never replay through this record may proceed.
                    payload = _CorruptPayload(key, exc)
                records.append((decoded.tt_start, decoded.tt_end, payload))
            self._object_cache[cache_key] = records
        return records

    def _cache_append(
        self, segment: bytes, kind: bytes, gid: int, tt_start: int, tt_end: int, payload: dict
    ) -> None:
        records = self._object_cache.get((segment, kind, gid))
        if records is not None:
            records.append((tt_start, tt_end, payload))
        if segment == history_keys.SEGMENT_VERTEX and kind == history_keys.KIND_DELTA:
            mentions = self._mention_cache.get(gid)
            if mentions is not None:
                _merge_mentions(payload, mentions[0], mentions[1])

    def preload_objects(self, object_kind: str, gids: Iterable[int]) -> int:
        """Bulk-fill the per-object record cache for many objects with
        one bounded range scan per segment (Expand's batched
        ``FetchFromKV``-VE path: a high-degree vertex preloads every
        candidate edge in one KV iteration instead of one seek each).

        Skips objects with no history or already-cached records.  When
        the key index shows the gid range is mostly other objects'
        records (sparse candidates over a dense keyspace), the range
        scan would read more than it saves, so the call backs off and
        leaves the per-object lazy loads to do the work.  Returns the
        number of objects actually preloaded.
        """
        segment = (
            history_keys.SEGMENT_VERTEX
            if object_kind == "vertex"
            else history_keys.SEGMENT_EDGE
        )
        known = self._known[object_kind]
        loaded = 0
        streams = [segment]
        if segment == history_keys.SEGMENT_VERTEX:
            streams.append(history_keys.SEGMENT_TOPOLOGY)
        wanted_gids = {gid for gid in gids if gid in known}
        for seg in streams:
            loaded = max(loaded, self._preload_segment(seg, wanted_gids))
        return loaded

    def _preload_segment(self, segment: bytes, gids: set[int]) -> int:
        kind = history_keys.KIND_DELTA
        wanted = sorted(
            gid for gid in gids
            if (segment, kind, gid) not in self._object_cache
        )
        if len(wanted) < 2:
            return 0  # a single object's lazy prefix scan is already one seek
        per_gid = self._ensure_index().get((segment, kind)) or {}
        low_gid, high_gid = wanted[0], wanted[-1]
        goal = sum(len(per_gid.get(gid, ())) for gid in wanted)
        span = sum(
            len(rows)
            for gid, rows in per_gid.items()
            if low_gid <= gid <= high_gid
        )
        if span > 4 * goal + 16:
            return 0
        start = history_keys.object_prefix(segment, kind, low_gid)
        stop = history_keys.object_prefix(segment, kind, high_gid) + b"\xff" * 17
        wanted_set = set(wanted)
        rows: dict[int, list] = {gid: [] for gid in wanted_set}
        for key, value in self.kv.scan_range(start, stop):
            decoded = history_keys.decode_key(key)
            if decoded.gid not in wanted_set:
                continue
            try:
                payload = self._decode_cached(key, value)
            except IntegrityError as exc:
                payload = _CorruptPayload(key, exc)
            rows[decoded.gid].append(
                (decoded.tt_start, decoded.tt_end, payload)
            )
        for gid, records in rows.items():
            self._object_cache[(segment, kind, gid)] = records
        self.read_metrics.preload_batches += 1
        self.read_metrics.preload_objects += len(wanted)
        return len(wanted)

    def _seek_anchor(self, segment: bytes, gid: int, t: int):
        """First anchor of ``gid`` with ``tt_end > t`` (nearest newer)."""
        self.read_metrics.anchor_seeks += 1
        anchors = self._records_for(segment, history_keys.KIND_ANCHOR, gid)
        index = bisect.bisect_right(anchors, t, key=lambda rec: rec[1])
        if index < len(anchors):
            return anchors[index]
        return None

    def _collect_records(
        self, segment: bytes, gid: int, t1: int, boundary: int
    ) -> list[tuple[int, int, bytes, dict]]:
        """All delta records with ``t1 < tt_end <= boundary``, newest
        first, merging the content and (for vertices) topology segments."""
        streams = [segment]
        if segment == history_keys.SEGMENT_VERTEX:
            streams.append(history_keys.SEGMENT_TOPOLOGY)
        collected: list[tuple[int, int, bytes, dict]] = []
        for seg in streams:
            records = self._records_for(seg, history_keys.KIND_DELTA, gid)
            low = bisect.bisect_right(records, t1, key=lambda rec: rec[1])
            for tt_start, tt_end, payload in records[low:]:
                if tt_end > boundary:
                    break
                collected.append((tt_start, tt_end, seg, payload))
        collected.sort(key=lambda rec: rec[1], reverse=True)
        return collected

    def _newest_record_end(self, segment: bytes, gid: int) -> Optional[int]:
        """Largest ``tt_end`` among the object's records (across the
        content and topology segments for vertices).  Answered from the
        key index — no payload is decoded and no KV seek is paid."""
        index = self._ensure_index()
        streams = [segment]
        if segment == history_keys.SEGMENT_VERTEX:
            streams.append(history_keys.SEGMENT_TOPOLOGY)
        newest: Optional[int] = None
        for seg in streams:
            per_gid = index.get((seg, history_keys.KIND_DELTA))
            rows = per_gid.get(gid) if per_gid else None
            if rows and (newest is None or rows[-1][1] > newest):
                newest = rows[-1][1]
        return newest

    # -- enumeration (for scans over reclaimed-only objects) ---------------

    def iter_gids(self, object_kind: str) -> Iterator[int]:
        """Distinct gids present in the store for one object kind,
        ascending — served from the key index (the skip scan this used
        to run now happens at most once, inside the index rebuild)."""
        segment = (
            history_keys.SEGMENT_VERTEX
            if object_kind == "vertex"
            else history_keys.SEGMENT_EDGE
        )
        per_gid = self._ensure_index().get((segment, history_keys.KIND_DELTA))
        if per_gid:
            yield from sorted(per_gid)

    def content_payloads(self, object_kind: str, gid: int) -> list[dict]:
        """Every content-record payload of one object (cached).

        Used by the scan's pruning check: the set of values a property
        ever took is exactly {current value} ∪ {values in backward
        diffs}, so equality filters can reject an object without
        reconstructing any version.
        """
        segment = (
            history_keys.SEGMENT_VERTEX
            if object_kind == "vertex"
            else history_keys.SEGMENT_EDGE
        )
        records = self._records_for(segment, history_keys.KIND_DELTA, gid)
        return [payload for _s, _e, payload in records]

    def vertex_mentions(self, gid: int) -> tuple[set, dict]:
        """Aggregated pruning data for one vertex's reclaimed history:
        every label its diffs mention and every value each property
        ever took in a diff.  O(1) per scan candidate once built."""
        mentions = self._mention_cache.get(gid)
        if mentions is None:
            labels: set = set()
            values: dict = {}
            for payload in self.content_payloads("vertex", gid):
                if isinstance(payload, _CorruptPayload):
                    payload.raise_()
                _merge_mentions(payload, labels, values)
            mentions = (labels, values)
            self._mention_cache[gid] = mentions
        return mentions

    def topology_refs(
        self, gid: int, t1: int
    ) -> tuple[set[tuple[str, int, int]], set[tuple[str, int, int]]]:
        """Every out/in edge stub mentioned by topology records of
        ``gid`` ending after ``t1``.

        This is the ``VE`` lookup of Algorithm 3 (line 4): any edge
        alive at some instant ``>= t1`` but since detached appears in a
        topology record with ``tt_end > t1``, so the union of these
        stubs with the current adjacency over-approximates the
        candidate edge set; per-edge temporal checks then filter.
        """
        out_refs: set[tuple[str, int, int]] = set()
        in_refs: set[tuple[str, int, int]] = set()
        records = self._records_for(
            history_keys.SEGMENT_TOPOLOGY, history_keys.KIND_DELTA, gid
        )
        low = bisect.bisect_right(records, t1, key=lambda rec: rec[1])
        for _tt_start, _tt_end, payload in records[low:]:
            if isinstance(payload, _CorruptPayload):
                payload.raise_()
            for field in ("oa", "or"):
                for ref in payload.get(field, ()):
                    out_refs.add((ref[0], ref[1], ref[2]))
            for field in ("ia", "ir"):
                for ref in payload.get(field, ()):
                    in_refs.add((ref[0], ref[1], ref[2]))
        return out_refs, in_refs

    def has_history(self, object_kind: str, gid: int) -> bool:
        """Whether any reclaimed record exists for the object."""
        return gid in self._known[object_kind]

    def invalidate_caches(self) -> None:
        """Drop every derived read structure (rebuilt lazily from the
        KV store) and advance the invalidation epoch.

        Called after a failed migration epoch (staging optimistically
        appended to the caches, so a retry of the same drafts would
        otherwise leave duplicate entries) and by integrity repairs
        that rewrite records in place — both mean anything memoized
        about the record set may be wrong.
        """
        self._payload_cache.clear()
        self._object_cache.clear()
        self._mention_cache.clear()
        self._gid_index = None
        self._bump_epoch()

    # -- retention ---------------------------------------------------------------

    def prune(self, before_ts: int) -> int:
        """Drop every record of versions that ended at or before
        ``before_ts``; returns the number of records removed.

        Retention policy for the history store: temporal queries older
        than the cut-off stop finding those versions, while everything
        newer (including reconstructions that used to pass *through*
        the pruned region — they only ever replay records newer than
        the target version) is unaffected.
        """
        doomed: list[bytes] = []
        for key, _value in self.kv.scan_all():
            decoded = history_keys.decode_key(key)
            if decoded.tt_end <= before_ts:
                doomed.append(key)
        if not doomed:
            return 0
        batch = WriteBatch()
        for key in doomed:
            batch.delete(key)
        self.kv.write(batch)
        self.kv.compact()
        # Every derived structure — decode/object/mention caches, the
        # reconstruction cache, the key index and the known-object set
        # — is rebuilt from scratch; pruning is a rare administrative
        # operation and serving even one stale version would violate
        # the retention contract.
        self.invalidate_caches()
        self._rebuild_index()
        return len(doomed)

    # -- accounting --------------------------------------------------------------

    def read_path_metrics(self) -> dict[str, int]:
        """Read-path counters plus cache occupancy (monitoring)."""
        report = self.read_metrics.as_dict()
        report["epoch"] = self._epoch
        report["cache_entries"] = len(self._reconstruction_cache)
        report["cache_capacity"] = self.reconstruction_cache_size
        return report

    def storage_bytes(self) -> int:
        """Physical footprint of the history store."""
        return self.kv.approximate_bytes()
