"""Blocking client for the AeonG serving layer, with chaos-grade retry.

:class:`Client` speaks the length-prefixed JSON protocol of
:mod:`repro.server.protocol` over a plain socket and layers two kinds
of robustness on top:

* **Retryable server errors** — responses whose taxonomy entry says
  ``retryable`` (``OVERLOADED``, ``DEGRADED``, ``CONFLICT``,
  ``SHUTTING_DOWN``, …) are retried with the engine's own
  :class:`~repro.resilience.RetryPolicy` (capped exponential backoff
  with jitter), honouring the server's ``retry_after`` hint when it is
  larger than the policy's own delay.
* **Connection failures** — a reset or torn frame triggers a reconnect
  plus handshake and, for *idempotent* requests, a resend.  A
  ``commit`` is deliberately **never** resent across a reconnect: the
  first attempt may have committed before the ack was lost, and
  resending could double-apply.  Callers see
  :class:`ConnectionError` and must reconcile — exactly the at-most-
  once ack semantics the chaos example demonstrates.
* **Interactive-transaction loss** — a session transaction
  (``begin()``) lives in the *old* connection's server session; when
  that connection dies, the server rolls the transaction back.  The
  client therefore refuses to silently continue on a fresh session:
  the operation that discovers the loss raises a structured
  ``TXN_LOST`` :class:`~repro.errors.ServerError` (never retryable),
  and the caller decides whether to begin again and re-run.
* **Failover** — a ``NOT_PRIMARY`` rejection carries the primary's
  address; the client re-resolves to it (or rotates through its
  ``endpoints`` list), reconnects — replaying prepared statements onto
  the new server — and retries the statement there.
"""

from __future__ import annotations

import socket
import struct
from typing import Any, Optional

from repro.errors import ProtocolError, ServerError
from repro.resilience import RetryPolicy
from repro.server.protocol import (
    PROTOCOL_VERSION,
    decode_body,
    decode_length,
    encode_frame,
)

_HEADER_SIZE = struct.calcsize(">I")

#: Default retry schedule: a handful of capped-exponential attempts.
DEFAULT_POLICY = RetryPolicy(max_attempts=6, base_delay=0.02, max_delay=0.5)


class Client:
    """One connection-with-retries to an AeonG server.

    Usable as a context manager; reconnects transparently, so a single
    instance survives server restarts and injected disconnects.
    """

    def __init__(
        self,
        host: str,
        port: int,
        policy: Optional[RetryPolicy] = None,
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        endpoints: Optional[list[tuple[str, int]]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.policy = policy or DEFAULT_POLICY
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        #: Known cluster endpoints, rotated through on connection
        #: failure and ``NOT_PRIMARY`` rejections without an address
        #: hint.  Always contains the current ``(host, port)``.
        self.endpoints: list[tuple[str, int]] = list(endpoints or [])
        if (host, port) not in self.endpoints:
            self.endpoints.insert(0, (host, port))
        self._sock: Optional[socket.socket] = None
        self._next_id = 0
        self._prepared: dict[str, str] = {}
        #: True while a ``begin()``-opened transaction is (believed)
        #: live in the current server session.
        self._txn_active = False
        #: Observability for the harness: how often this client had to
        #: retry, reconnect, or wait out backpressure.
        self.stats = {
            "requests": 0,
            "retries": 0,
            "reconnects": 0,
            "shed_seen": 0,
            "degraded_seen": 0,
            "failovers": 0,
            "txn_lost": 0,
        }

    # -- connection management ---------------------------------------------

    def connect(self) -> dict[str, Any]:
        """(Re)connect and shake hands; returns the hello response.

        With more than one known endpoint, each is tried in turn
        starting from the current one, so a client aimed at a dead
        node comes up connected to a surviving one.
        """
        self.close()
        last_error: Optional[OSError] = None
        for _ in range(max(1, len(self.endpoints))):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
                break
            except OSError as exc:
                last_error = exc
                if len(self.endpoints) < 2:
                    raise
                self._rotate_endpoint()
        else:
            assert last_error is not None
            raise last_error
        sock.settimeout(self.request_timeout)
        # Small latency-sensitive frames: Nagle + delayed ACK would add
        # tens of milliseconds to every round trip.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        hello = self._roundtrip({"op": "hello", "version": PROTOCOL_VERSION})
        # Prepared statements are per-session server state: replay them
        # so a reconnect is invisible to callers of execute().
        for name, text in self._prepared.items():
            self._roundtrip({"op": "prepare", "name": name, "text": text})
        return hello

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "Client":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            if self._sock is not None:
                self._roundtrip({"op": "goodbye"})
        except (ConnectionError, OSError, ServerError, ProtocolError):
            pass
        self.close()

    # -- wire --------------------------------------------------------------

    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ConnectionResetError(
                    f"server closed mid-frame ({n - remaining}/{n} bytes)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _roundtrip(self, request: dict[str, Any]) -> dict[str, Any]:
        """One frame out, one frame in.  Raises :class:`ServerError`
        for ``ok=false`` responses, ``ConnectionError`` for transport
        failures (including timeouts, which leave the stream
        desynchronized and therefore poison the socket)."""
        if self._sock is None:
            raise ConnectionResetError("not connected")
        self._next_id += 1
        request = dict(request, id=self._next_id)
        try:
            self._sock.sendall(encode_frame(request))
            header = self._recv_exactly(_HEADER_SIZE)
            body = self._recv_exactly(decode_length(header))
        except socket.timeout as exc:
            self.close()
            raise ConnectionResetError(f"request timed out: {exc}") from None
        except (ConnectionError, OSError):
            self.close()
            raise
        response = decode_body(body)
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        exc = ServerError(
            error.get("code", "ERROR"),
            error.get("message", "unknown server error"),
            retryable=bool(error.get("retryable")),
            retry_after=error.get("retry_after"),
        )
        # NOT_PRIMARY responses carry the primary's address so the
        # retry loop can fail over without a directory service.
        exc.primary_address = error.get("primary")
        raise exc

    # -- failover ----------------------------------------------------------

    def _adopt_endpoint(self, host: str, port: int) -> None:
        if (host, port) not in self.endpoints:
            self.endpoints.append((host, port))
        if (host, port) != (self.host, self.port):
            self.host, self.port = host, port
            self.close()

    def _rotate_endpoint(self) -> None:
        """Move to the next known endpoint (no-op with only one)."""
        if len(self.endpoints) < 2:
            return
        try:
            index = self.endpoints.index((self.host, self.port))
        except ValueError:
            index = -1
        self.host, self.port = self.endpoints[
            (index + 1) % len(self.endpoints)
        ]
        self.close()

    def _handle_not_primary(self, exc: ServerError) -> None:
        """Re-resolve to the primary named in the rejection (or rotate)."""
        self.stats["failovers"] += 1
        hint = getattr(exc, "primary_address", None)
        if isinstance(hint, str) and ":" in hint:
            host, _, port_s = hint.rpartition(":")
            try:
                self._adopt_endpoint(host, int(port_s))
                return
            except ValueError:
                pass
        self._rotate_endpoint()

    def _lost_transaction(self) -> ServerError:
        """The structured error for a transaction that died with its
        connection.  Never retryable: the rollback already happened;
        only the caller knows whether re-running is correct."""
        self._txn_active = False
        self.stats["txn_lost"] += 1
        return ServerError(
            "TXN_LOST",
            "connection lost while an interactive transaction was open; "
            "the server rolled it back — begin again and re-run",
            retryable=False,
        )

    # -- the retry loop ----------------------------------------------------

    def request(
        self, request: dict[str, Any], idempotent: bool = True
    ) -> dict[str, Any]:
        """Send with retries.

        Retries (up to ``policy.max_attempts``) when the server said
        "try again" or the connection died — except that a
        non-idempotent request (``commit``) is never resent after its
        bytes may have reached the server.
        """
        self.stats["requests"] += 1
        policy = self.policy
        attempt = 0
        while True:
            attempt += 1
            sent = False
            try:
                if self._sock is None:
                    self.stats["reconnects"] += 1
                    self.connect()
                sent = True
                return self._roundtrip(request)
            except ServerError as exc:
                if exc.code == "NOT_PRIMARY":
                    self._handle_not_primary(exc)
                if not exc.retryable or attempt >= policy.max_attempts:
                    raise
                self.stats["shed_seen"] += 1
                delay = policy.delay(attempt)
                if exc.retry_after is not None:
                    delay = max(delay, float(exc.retry_after))
                policy.sleep(delay)
            except (ConnectionError, OSError):
                if sent and not idempotent:
                    # Outcome unknown (the frame may have been acted
                    # on); the caller reconciles.  The session — and
                    # any transaction in it — is gone either way.
                    self._txn_active = False
                    raise
                if self._txn_active:
                    # The dead connection took its server session — and
                    # the interactive transaction — with it.  Silently
                    # reconnecting would run this statement in
                    # autocommit on a fresh session: surface the loss
                    # as a structured, non-retryable error instead.
                    raise self._lost_transaction() from None
                if attempt >= policy.max_attempts:
                    raise
                self._rotate_endpoint()
                policy.sleep(policy.delay(attempt))
            self.stats["retries"] += 1

    # -- convenience ops ---------------------------------------------------

    def query(
        self,
        text: str,
        params: Optional[dict[str, Any]] = None,
        timeout: Optional[float] = None,
        idempotent: bool = True,
    ) -> list[dict[str, Any]]:
        request: dict[str, Any] = {"op": "query", "text": text}
        if params is not None:
            request["params"] = params
        if timeout is not None:
            request["timeout"] = timeout
        response = self.request(request, idempotent=idempotent)
        if response.get("degraded"):
            self.stats["degraded_seen"] += 1
        return response["rows"]

    def prepare(self, name: str, text: str) -> None:
        self._prepared[name] = text
        self.request({"op": "prepare", "name": name, "text": text})

    def execute(
        self,
        name: str,
        params: Optional[dict[str, Any]] = None,
        idempotent: bool = True,
    ) -> list[dict[str, Any]]:
        request: dict[str, Any] = {"op": "execute", "name": name}
        if params is not None:
            request["params"] = params
        response = self.request(request, idempotent=idempotent)
        if response.get("degraded"):
            self.stats["degraded_seen"] += 1
        return response["rows"]

    def begin(self, timeout: Optional[float] = None) -> int:
        request: dict[str, Any] = {"op": "begin"}
        if timeout is not None:
            request["timeout"] = timeout
        txn_id = self.request(request)["txn"]
        self._txn_active = True
        return txn_id

    def commit(self) -> int:
        """Commit the session transaction.

        Never resent across a reconnect — a lost ack after the commit
        frame reached the server would otherwise double-apply.  Raises
        ``ConnectionError`` in that window; the write may or may not be
        durable, and only the server's state can say which.
        """
        try:
            return self.request({"op": "commit"}, idempotent=False)[
                "commit_ts"
            ]
        finally:
            # Success, conflict, or lost ack: the transaction no longer
            # exists in the session either way.
            self._txn_active = False

    def abort(self) -> None:
        try:
            self.request({"op": "abort"})
        finally:
            self._txn_active = False

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def health(self) -> dict[str, Any]:
        return self.request({"op": "health"})

    def ready(self) -> bool:
        return bool(self.request({"op": "ready"}).get("ready"))

    def metrics(self) -> dict[str, Any]:
        return self.request({"op": "metrics"})["metrics"]


__all__ = ["Client", "DEFAULT_POLICY"]
