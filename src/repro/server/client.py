"""Blocking client for the AeonG serving layer, with chaos-grade retry.

:class:`Client` speaks the length-prefixed JSON protocol of
:mod:`repro.server.protocol` over a plain socket and layers two kinds
of robustness on top:

* **Retryable server errors** — responses whose taxonomy entry says
  ``retryable`` (``OVERLOADED``, ``DEGRADED``, ``CONFLICT``,
  ``SHUTTING_DOWN``, …) are retried with the engine's own
  :class:`~repro.resilience.RetryPolicy` (capped exponential backoff
  with jitter), honouring the server's ``retry_after`` hint when it is
  larger than the policy's own delay.
* **Connection failures** — a reset or torn frame triggers a reconnect
  plus handshake and, for *idempotent* requests, a resend.  A
  ``commit`` is deliberately **never** resent across a reconnect: the
  first attempt may have committed before the ack was lost, and
  resending could double-apply.  Callers see
  :class:`ConnectionError` and must reconcile — exactly the at-most-
  once ack semantics the chaos example demonstrates.
"""

from __future__ import annotations

import socket
import struct
from typing import Any, Optional

from repro.errors import ProtocolError, ServerError
from repro.resilience import RetryPolicy
from repro.server.protocol import (
    PROTOCOL_VERSION,
    decode_body,
    decode_length,
    encode_frame,
)

_HEADER_SIZE = struct.calcsize(">I")

#: Default retry schedule: a handful of capped-exponential attempts.
DEFAULT_POLICY = RetryPolicy(max_attempts=6, base_delay=0.02, max_delay=0.5)


class Client:
    """One connection-with-retries to an AeonG server.

    Usable as a context manager; reconnects transparently, so a single
    instance survives server restarts and injected disconnects.
    """

    def __init__(
        self,
        host: str,
        port: int,
        policy: Optional[RetryPolicy] = None,
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.policy = policy or DEFAULT_POLICY
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self._sock: Optional[socket.socket] = None
        self._next_id = 0
        self._prepared: dict[str, str] = {}
        #: Observability for the harness: how often this client had to
        #: retry, reconnect, or wait out backpressure.
        self.stats = {
            "requests": 0,
            "retries": 0,
            "reconnects": 0,
            "shed_seen": 0,
            "degraded_seen": 0,
        }

    # -- connection management ---------------------------------------------

    def connect(self) -> dict[str, Any]:
        """(Re)connect and shake hands; returns the hello response."""
        self.close()
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.request_timeout)
        # Small latency-sensitive frames: Nagle + delayed ACK would add
        # tens of milliseconds to every round trip.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        hello = self._roundtrip({"op": "hello", "version": PROTOCOL_VERSION})
        # Prepared statements are per-session server state: replay them
        # so a reconnect is invisible to callers of execute().
        for name, text in self._prepared.items():
            self._roundtrip({"op": "prepare", "name": name, "text": text})
        return hello

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "Client":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            if self._sock is not None:
                self._roundtrip({"op": "goodbye"})
        except (ConnectionError, OSError, ServerError, ProtocolError):
            pass
        self.close()

    # -- wire --------------------------------------------------------------

    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ConnectionResetError(
                    f"server closed mid-frame ({n - remaining}/{n} bytes)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _roundtrip(self, request: dict[str, Any]) -> dict[str, Any]:
        """One frame out, one frame in.  Raises :class:`ServerError`
        for ``ok=false`` responses, ``ConnectionError`` for transport
        failures (including timeouts, which leave the stream
        desynchronized and therefore poison the socket)."""
        if self._sock is None:
            raise ConnectionResetError("not connected")
        self._next_id += 1
        request = dict(request, id=self._next_id)
        try:
            self._sock.sendall(encode_frame(request))
            header = self._recv_exactly(_HEADER_SIZE)
            body = self._recv_exactly(decode_length(header))
        except socket.timeout as exc:
            self.close()
            raise ConnectionResetError(f"request timed out: {exc}") from None
        except (ConnectionError, OSError):
            self.close()
            raise
        response = decode_body(body)
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        raise ServerError(
            error.get("code", "ERROR"),
            error.get("message", "unknown server error"),
            retryable=bool(error.get("retryable")),
            retry_after=error.get("retry_after"),
        )

    # -- the retry loop ----------------------------------------------------

    def request(
        self, request: dict[str, Any], idempotent: bool = True
    ) -> dict[str, Any]:
        """Send with retries.

        Retries (up to ``policy.max_attempts``) when the server said
        "try again" or the connection died — except that a
        non-idempotent request (``commit``) is never resent after its
        bytes may have reached the server.
        """
        self.stats["requests"] += 1
        policy = self.policy
        attempt = 0
        while True:
            attempt += 1
            sent = False
            try:
                if self._sock is None:
                    self.stats["reconnects"] += 1
                    self.connect()
                sent = True
                return self._roundtrip(request)
            except ServerError as exc:
                if not exc.retryable or attempt >= policy.max_attempts:
                    raise
                self.stats["shed_seen"] += 1
                delay = policy.delay(attempt)
                if exc.retry_after is not None:
                    delay = max(delay, float(exc.retry_after))
                policy.sleep(delay)
            except (ConnectionError, OSError):
                if (sent and not idempotent) or attempt >= policy.max_attempts:
                    raise
                policy.sleep(policy.delay(attempt))
            self.stats["retries"] += 1

    # -- convenience ops ---------------------------------------------------

    def query(
        self,
        text: str,
        params: Optional[dict[str, Any]] = None,
        timeout: Optional[float] = None,
        idempotent: bool = True,
    ) -> list[dict[str, Any]]:
        request: dict[str, Any] = {"op": "query", "text": text}
        if params is not None:
            request["params"] = params
        if timeout is not None:
            request["timeout"] = timeout
        response = self.request(request, idempotent=idempotent)
        if response.get("degraded"):
            self.stats["degraded_seen"] += 1
        return response["rows"]

    def prepare(self, name: str, text: str) -> None:
        self._prepared[name] = text
        self.request({"op": "prepare", "name": name, "text": text})

    def execute(
        self,
        name: str,
        params: Optional[dict[str, Any]] = None,
        idempotent: bool = True,
    ) -> list[dict[str, Any]]:
        request: dict[str, Any] = {"op": "execute", "name": name}
        if params is not None:
            request["params"] = params
        response = self.request(request, idempotent=idempotent)
        if response.get("degraded"):
            self.stats["degraded_seen"] += 1
        return response["rows"]

    def begin(self, timeout: Optional[float] = None) -> int:
        request: dict[str, Any] = {"op": "begin"}
        if timeout is not None:
            request["timeout"] = timeout
        return self.request(request)["txn"]

    def commit(self) -> int:
        """Commit the session transaction.

        Never resent across a reconnect — a lost ack after the commit
        frame reached the server would otherwise double-apply.  Raises
        ``ConnectionError`` in that window; the write may or may not be
        durable, and only the server's state can say which.
        """
        return self.request({"op": "commit"}, idempotent=False)["commit_ts"]

    def abort(self) -> None:
        self.request({"op": "abort"})

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def health(self) -> dict[str, Any]:
        return self.request({"op": "health"})

    def ready(self) -> bool:
        return bool(self.request({"op": "ready"}).get("ready"))

    def metrics(self) -> dict[str, Any]:
        return self.request({"op": "metrics"})["metrics"]


__all__ = ["Client", "DEFAULT_POLICY"]
