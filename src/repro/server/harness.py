"""Async load harness: hundreds of simulated clients over one loop.

Replays Bi-LDBC operation streams (:mod:`repro.workloads.bildbc`)
against a running AeonG server, translating each
:class:`~repro.baselines.interface.GraphOp` into a parameterized
query-language statement.  Every simulated client runs the same
capped-exponential retry discipline as :class:`repro.server.client.
Client` — retryable server errors back off (honouring ``retry_after``),
connection drops reconnect — so the harness measures the *served*
experience under chaos, not just the happy path.

What it records, per load level:

* latency of admitted (served) requests — p50/p99/mean;
* served vs shed vs failed vs degraded counts, retries, disconnects;
* the ``ext_id`` of every **acknowledged** insert, so a kill-and-
  restart test can assert zero acknowledged writes were lost.

``saturation()`` sweeps client counts past the engine's admission
capacity and returns the curve that lands in
``benchmarks/results/BENCH_serving.json``.
"""

from __future__ import annotations

import asyncio
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.baselines.interface import (
    ADD_EDGE,
    ADD_VERTEX,
    DELETE_EDGE,
    DELETE_VERTEX,
    GraphOp,
    UPDATE_EDGE,
    UPDATE_VERTEX,
)
from repro.errors import ServerError
from repro.resilience import RetryPolicy
from repro.server.protocol import PROTOCOL_VERSION, read_frame, write_frame

#: Retry schedule for simulated clients: fast, bounded, jittered.
HARNESS_POLICY = RetryPolicy(max_attempts=6, base_delay=0.01, max_delay=0.25)

_IDENT_SAFE = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)


def _ident(name: str) -> str:
    """Reject property/label names that cannot appear in query text."""
    if not name or not set(name) <= _IDENT_SAFE or name[0].isdigit():
        raise ValueError(f"unsupported identifier in workload op: {name!r}")
    return name


def statement_for_op(op: GraphOp) -> tuple[str, dict[str, Any]]:
    """Translate one workload operation into ``(text, params)``.

    MATCH-based statements no-op (zero rows, no error) when their
    target is missing — so cross-client ordering races degrade
    gracefully instead of erroring the stream.
    """
    if op.kind == ADD_VERTEX:
        props = {"ext_id": op.ext_id, **(op.properties or {})}
        fields = ", ".join(f"{_ident(k)}: ${_ident(k)}" for k in props)
        return f"CREATE (n:{_ident(op.label)} {{{fields}}})", props
    if op.kind == ADD_EDGE:
        props = {"ext_id": op.ext_id, **(op.properties or {})}
        fields = ", ".join(f"{_ident(k)}: ${_ident(k)}" for k in props)
        text = (
            "MATCH (a {ext_id: $__src}), (b {ext_id: $__dst}) "
            f"CREATE (a)-[:{_ident(op.label)} {{{fields}}}]->(b)"
        )
        return text, dict(props, __src=op.src, __dst=op.dst)
    if op.kind == UPDATE_VERTEX:
        return (
            f"MATCH (n {{ext_id: $ext_id}}) SET n.{_ident(op.prop)} = $value",
            {"ext_id": op.ext_id, "value": op.value},
        )
    if op.kind == UPDATE_EDGE:
        return (
            "MATCH (a)-[r]->(b) WHERE r.ext_id = $ext_id "
            f"SET r.{_ident(op.prop)} = $value",
            {"ext_id": op.ext_id, "value": op.value},
        )
    if op.kind == DELETE_EDGE:
        return (
            "MATCH (a)-[r]->(b) WHERE r.ext_id = $ext_id DELETE r",
            {"ext_id": op.ext_id},
        )
    if op.kind == DELETE_VERTEX:
        return (
            "MATCH (n {ext_id: $ext_id}) DETACH DELETE n",
            {"ext_id": op.ext_id},
        )
    raise ValueError(f"unknown op kind {op.kind!r}")


@dataclass
class ClientStats:
    """One simulated client's view of the run."""

    served: int = 0
    shed: int = 0
    failed: int = 0
    degraded: int = 0
    retries: int = 0
    disconnects: int = 0
    #: Wall-clock seconds of each *served* request (first byte of the
    #: attempt that succeeded to its ack).
    latencies: list[float] = field(default_factory=list)
    #: ext_ids of acknowledged ADD_VERTEX statements — the set the
    #: kill-and-restart test checks against the recovered store.
    acked_inserts: list[str] = field(default_factory=list)


class _AsyncClient:
    """Minimal asyncio twin of :class:`repro.server.client.Client`."""

    def __init__(self, host: str, port: int, policy: RetryPolicy) -> None:
        self.host = host
        self.port = port
        self.policy = policy
        self.stats = ClientStats()
        self._reader = None
        self._writer = None
        self._next_id = 0

    async def connect(self) -> None:
        await self.close()
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        sock = self._writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        await self._roundtrip({"op": "hello", "version": PROTOCOL_VERSION})

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.transport.abort()
            finally:
                self._reader = self._writer = None

    async def _roundtrip(self, request: dict[str, Any]) -> dict[str, Any]:
        self._next_id += 1
        await write_frame(self._writer, dict(request, id=self._next_id))
        response = await read_frame(self._reader)
        if response is None:
            raise ConnectionResetError("server closed the connection")
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        raise ServerError(
            error.get("code", "ERROR"),
            error.get("message", "unknown server error"),
            retryable=bool(error.get("retryable")),
            retry_after=error.get("retry_after"),
        )

    async def request(self, request: dict[str, Any]) -> dict[str, Any]:
        """Send with the harness retry discipline; raises after the
        policy is exhausted (callers count that as ``failed``)."""
        policy = self.policy
        attempt = 0
        while True:
            attempt += 1
            try:
                if self._writer is None:
                    await self.connect()
                return await self._roundtrip(request)
            except ServerError as exc:
                if not exc.retryable or attempt >= policy.max_attempts:
                    raise
                self.stats.shed += 1
                delay = policy.delay(attempt)
                if exc.retry_after is not None:
                    delay = max(delay, float(exc.retry_after))
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                self.stats.disconnects += 1
                await self.close()
                if attempt >= policy.max_attempts:
                    raise
                delay = policy.delay(attempt)
            self.stats.retries += 1
            await asyncio.sleep(delay)


async def _replay(
    client: _AsyncClient,
    ops: Sequence[GraphOp],
    timeout: Optional[float],
) -> None:
    """One client's life: replay its slice of the stream, one
    auto-commit statement per op, recording served latency and acks."""
    stats = client.stats
    for op in ops:
        try:
            text, params = statement_for_op(op)
        except ValueError:
            stats.failed += 1
            continue
        request: dict[str, Any] = {"op": "query", "text": text,
                                   "params": params}
        if timeout is not None:
            request["timeout"] = timeout
        started = time.perf_counter()
        try:
            response = await client.request(request)
        except (ServerError, ConnectionError, OSError,
                asyncio.IncompleteReadError):
            stats.failed += 1
            continue
        stats.latencies.append(time.perf_counter() - started)
        stats.served += 1
        if response.get("degraded"):
            stats.degraded += 1
        if op.kind == ADD_VERTEX:
            # The server only acks after engine.commit() returned, and
            # commit appends to the WAL first — ack implies durable.
            stats.acked_inserts.append(op.ext_id)
    await client.close()


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty series."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def _partition(ops: Sequence[GraphOp], clients: int) -> list[list[GraphOp]]:
    slices: list[list[GraphOp]] = [[] for _ in range(clients)]
    for index, op in enumerate(ops):
        slices[index % clients].append(op)
    return slices


def run_load(
    host: str,
    port: int,
    ops: Sequence[GraphOp],
    clients: int = 10,
    timeout: Optional[float] = None,
    policy: Optional[RetryPolicy] = None,
) -> dict[str, Any]:
    """Replay ``ops`` from ``clients`` concurrent simulated clients.

    Returns the aggregated level record (counts, latency percentiles in
    milliseconds, acked insert ids) used by the bench and the example.
    """
    policy = policy or HARNESS_POLICY
    slices = _partition(ops, clients)

    async def main() -> list[ClientStats]:
        pool = [_AsyncClient(host, port, policy) for _ in slices]
        await asyncio.gather(
            *(
                _replay(client, ops_slice, timeout)
                for client, ops_slice in zip(pool, slices)
            )
        )
        return [client.stats for client in pool]

    started = time.perf_counter()
    all_stats = asyncio.run(main())
    wall = time.perf_counter() - started

    latencies = [s for stats in all_stats for s in stats.latencies]
    served = sum(s.served for s in all_stats)
    record = {
        "clients": clients,
        "offered": len(ops),
        "served": served,
        "shed": sum(s.shed for s in all_stats),
        "failed": sum(s.failed for s in all_stats),
        "degraded": sum(s.degraded for s in all_stats),
        "retries": sum(s.retries for s in all_stats),
        "disconnects": sum(s.disconnects for s in all_stats),
        "p50_ms": percentile(latencies, 0.50) * 1e3,
        "p99_ms": percentile(latencies, 0.99) * 1e3,
        "mean_ms": (sum(latencies) / len(latencies) * 1e3)
        if latencies
        else 0.0,
        "wall_seconds": wall,
        "served_per_second": served / wall if wall > 0 else 0.0,
        "acked_inserts": sorted(
            {e for s in all_stats for e in s.acked_inserts}
        ),
    }
    return record


def saturation(
    host: str,
    port: int,
    ops: Sequence[GraphOp],
    levels: Sequence[int] = (1, 4, 16, 64),
    timeout: Optional[float] = None,
    policy: Optional[RetryPolicy] = None,
) -> list[dict[str, Any]]:
    """Sweep client counts (the saturation curve of BENCH_serving).

    Each level replays the same-size stream from more clients; past the
    engine's admission capacity the shed share should rise while the
    p99 of *served* requests stays bounded — graceful degradation made
    measurable.
    """
    curve = []
    for clients in levels:
        curve.append(
            run_load(
                host, port, ops, clients=clients, timeout=timeout,
                policy=policy,
            )
        )
    return curve


__all__ = [
    "HARNESS_POLICY",
    "ClientStats",
    "statement_for_op",
    "percentile",
    "run_load",
    "saturation",
]
