"""The AeonG serving layer: an asyncio TCP server over the engine.

Engineered for graceful degradation rather than raw throughput:

* **Session layer** — each connection performs a ``hello`` handshake,
  then owns at most one interactive transaction plus a dictionary of
  prepared statements.  Per-request deadlines map onto the engine's
  ``begin(timeout=)`` / ``run_transaction(timeout=)``, so a stalled
  client cannot pin the GC watermark.  When a connection dies — cleanly
  or mid-frame — its transaction is aborted and its admission slot
  released before the session is forgotten.
* **Overload posture** — connection count is capped, and every
  transaction admission flows through the engine's ``AdmissionGate``.
  Saturation therefore surfaces as structured, retryable
  ``OVERLOADED`` / ``DEGRADED`` responses carrying ``retry_after``
  hints, never as stalls or connection resets.  ``health`` / ``ready``
  endpoints are fed from the engine's ``metrics()``.
* **Lifecycle** — SIGTERM/SIGINT (see :func:`serve`) trigger a drain:
  stop accepting, let in-flight sessions finish their transactions
  within a grace period (new work is shed with ``SHUTTING_DOWN``),
  then abort stragglers and close the engine cleanly.  A hard kill is
  recovered by the durability layer (``RecoveryReport``) on restart.

Engine calls run on a thread pool (the engine is blocking); tracer
spans are opened *inside* the pooled work so the tracer's per-thread
span stacks never interleave across coroutines on the event loop.
"""

from __future__ import annotations

import asyncio
import functools
import signal
import socket
import threading
from dataclasses import dataclass
from typing import Any, Optional

from concurrent.futures import ThreadPoolExecutor

from repro.errors import (
    DegradedModeError,
    NotPrimaryError,
    OverloadError,
    ProtocolError,
    ReproError,
    SerializationConflict,
    TransactionStateError,
)
from repro.server.protocol import (
    PROTOCOL_VERSION,
    SITE_CONN_READ,
    SITE_CONN_WRITE,
    error_response,
    read_frame,
    shed_response,
    write_frame,
)


@dataclass
class ServerConfig:
    """Tunables for one :class:`AeonGServer`."""

    #: Bind address; port 0 lets the OS pick (read it back from
    #: ``server.address`` after ``start()``).
    host: str = "127.0.0.1"
    port: int = 0
    #: Connections past this are greeted with a retryable ``OVERLOADED``
    #: frame and closed (never a silent reset).
    max_connections: int = 64
    #: How long a drain waits for in-flight sessions before aborting
    #: their transactions.
    drain_grace: float = 5.0
    #: Threads executing blocking engine calls.
    executor_workers: int = 8
    #: ``retry_after`` hint attached to connection-limit rejections and
    #: drain shedding.
    shed_retry_after: float = 0.1
    #: Serve ``GET /metrics`` (Prometheus text exposition) over HTTP on
    #: this port (0 = ephemeral; read back from
    #: ``server.metrics_address``).  ``None`` disables the endpoint.
    metrics_port: Optional[int] = None
    #: Longest long-poll window a ``repl_fetch`` may request.
    repl_max_wait: float = 5.0

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if self.executor_workers < 1:
            raise ValueError("executor_workers must be >= 1")


class _Session:
    """Per-connection state: handshake flag, live txn, prepared stmts."""

    __slots__ = ("sid", "ready", "txn", "prepared")

    def __init__(self, sid: int) -> None:
        self.sid = sid
        self.ready = False
        self.txn = None
        self.prepared: dict[str, str] = {}


def _set_nodelay(writer: asyncio.StreamWriter) -> None:
    """Disable Nagle: frames are small and latency-sensitive, and the
    request/response rhythm otherwise collides with delayed ACKs."""
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP transports
            pass


#: Ops a client may send before the ``hello`` handshake completes.
_PRE_HANDSHAKE_OPS = frozenset({"hello", "ping", "health", "ready"})

#: Ops still served while the server drains (finishing is encouraged;
#: starting new work is not).
_DRAIN_OPS = frozenset(
    {"commit", "abort", "goodbye", "ping", "health", "ready", "hello"}
)


class AeonGServer:
    """Asyncio TCP server exposing one engine over the wire protocol."""

    def __init__(self, engine, config: Optional[ServerConfig] = None) -> None:
        self.engine = engine
        self.config = config or ServerConfig()
        self.address: Optional[tuple[str, int]] = None
        #: Bound ``(host, port)`` of the HTTP metrics endpoint, when
        #: ``config.metrics_port`` is set.
        self.metrics_address: Optional[tuple[str, int]] = None
        #: ``"host:port"`` of this node's primary, attached to
        #: ``NOT_PRIMARY`` rejections so clients can fail over without
        #: a directory service (set by :func:`serve` for replicas).
        self.primary_hint: Optional[str] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._metrics_server: Optional[asyncio.base_events.Server] = None
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="aeong-serve",
        )
        # Replication stream ops get their own tiny pool: under
        # semi-sync replication every committing query blocks its
        # executor worker in wait_replicated(), and the repl_fetch that
        # delivers the releasing ack must never queue behind them
        # (saturated query pool -> ack starvation -> REPL_TIMEOUT).
        self._repl_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="aeong-repl"
        )
        self._sessions = 0
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._stopped = False
        self.counters = {
            "connections_accepted": 0,
            "connections_rejected": 0,
            "connections_active": 0,
            "connections_peak": 0,
            "requests_served": 0,
            "requests_failed": 0,
            "requests_shed": 0,
            "requests_degraded": 0,
            "sessions_killed": 0,
            "protocol_errors": 0,
            "io_faults": 0,
            "bytes_out": 0,
            "repl_fetches": 0,
            "repl_applies": 0,
            "repl_snapshots": 0,
            "not_primary_rejections": 0,
            "metrics_scrapes": 0,
        }
        engine.observability.registry.register_provider(self._provide_metrics)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http,
                self.config.host,
                self.config.metrics_port,
            )
            msock = self._metrics_server.sockets[0]
            self.metrics_address = msock.getsockname()[:2]
        return self.address

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, wait ``drain_grace`` for
        in-flight sessions, then cancel stragglers (their transactions
        are aborted by each session's cleanup path)."""
        if self._stopped:
            return
        self._draining = True
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {t for t in self._conn_tasks if not t.done()}
        if pending:
            _, pending = await asyncio.wait(
                pending, timeout=self.config.drain_grace
            )
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._stopped = True
        self._executor.shutdown(wait=True)
        self._repl_executor.shutdown(wait=True)

    @property
    def draining(self) -> bool:
        return self._draining

    # -- metrics -----------------------------------------------------------

    def metrics(self) -> dict[str, Any]:
        """The server's own operational counters."""
        return dict(self.counters, draining=self._draining)

    def _provide_metrics(self) -> dict[str, Any]:
        return {"server": self.metrics()}

    async def _handle_metrics_http(self, reader, writer) -> None:
        """Minimal HTTP/1.1 handler for Prometheus scrapes.

        ``GET /metrics`` returns the registry's text exposition; any
        other path is 404.  One request per connection (``Connection:
        close``) — exactly what a scraper needs, nothing a framework
        would add.
        """
        try:
            request_line = await reader.readline()
            while True:  # drain headers
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            path = parts[1].split("?", 1)[0] if len(parts) > 1 else "/"
            if method in ("GET", "HEAD") and path == "/metrics":
                text = await self._run(
                    "server.metrics_http",
                    self.engine.observability.registry.prometheus_text,
                )
                body = text.encode()
                status = b"200 OK"
                ctype = b"text/plain; version=0.0.4; charset=utf-8"
                self.counters["metrics_scrapes"] += 1
            else:
                body = b"not found; try GET /metrics\n"
                status = b"404 Not Found"
                ctype = b"text/plain; charset=utf-8"
            if method == "HEAD":
                payload = b""
            else:
                payload = body
            writer.write(
                b"HTTP/1.1 " + status
                + b"\r\nContent-Type: " + ctype
                + b"\r\nContent-Length: " + str(len(body)).encode()
                + b"\r\nConnection: close\r\n\r\n"
                + payload
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport races
                pass

    # -- engine plumbing ---------------------------------------------------

    async def _run(self, span: str, fn, *args, executor=None, **kwargs):
        """Run a blocking engine call on the pool, inside a tracer span.

        The span must open and close on the executor thread: the tracer
        keeps per-thread span stacks, and interleaved coroutines on the
        loop thread would corrupt them.
        """
        tracer = self.engine.observability.tracer

        def work():
            with tracer.span(span):
                return fn(*args, **kwargs)

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            executor if executor is not None else self._executor,
            functools.partial(work),
        )

    def _retry_hint(self, exc: BaseException) -> Optional[float]:
        """The server's backoff suggestion for a retryable failure."""
        cfg = self.engine.resilience.config
        if isinstance(exc, OverloadError):
            return cfg.admission_timeout
        if isinstance(exc, DegradedModeError):
            return cfg.breaker_reset_timeout
        if isinstance(exc, SerializationConflict):
            return cfg.retry.base_delay
        return self.config.shed_retry_after

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        _set_nodelay(writer)
        self.counters["connections_accepted"] += 1
        if self.counters["connections_active"] >= self.config.max_connections:
            self.counters["connections_rejected"] += 1
            await self._farewell(
                writer,
                shed_response(
                    None,
                    "connection limit reached",
                    retry_after=self.config.shed_retry_after,
                    code="OVERLOADED",
                ),
            )
            self._conn_tasks.discard(task)
            return
        self.counters["connections_active"] += 1
        self.counters["connections_peak"] = max(
            self.counters["connections_peak"],
            self.counters["connections_active"],
        )
        self._sessions += 1
        session = _Session(self._sessions)
        try:
            await self._serve_session(session, reader, writer)
        except asyncio.CancelledError:
            # The drain cancelled this session past its grace period.
            # Finish the task cleanly instead of re-raising: asyncio's
            # stream-protocol callback calls task.exception(), which
            # would log a spurious error for a cancelled task, and the
            # cleanup below aborts the transaction either way.
            pass
        finally:
            self._cleanup_session(session)
            self.counters["connections_active"] -= 1
            self._conn_tasks.discard(task)
            writer.transport.abort()

    def _cleanup_session(self, session: _Session) -> None:
        """Abort a dead session's transaction (releases its admission
        slot via the txn's on-abort hook).  Synchronous on purpose —
        abort is an in-memory rollback, and running it inline keeps the
        cleanup immune to executor shutdown races."""
        txn = session.txn
        session.txn = None
        if txn is not None and txn.is_active:
            self.counters["sessions_killed"] += 1
            try:
                self.engine.abort(txn)
            except ReproError:
                pass  # watchdog beat us to it; slot already released

    async def _farewell(self, writer, payload: dict[str, Any]) -> None:
        """Best-effort final frame before closing a connection."""
        try:
            await write_frame(writer, payload)
        except (ConnectionError, OSError):
            pass
        finally:
            writer.transport.abort()

    async def _serve_session(self, session, reader, writer) -> None:
        while True:
            try:
                request = await read_frame(reader, site=SITE_CONN_READ)
            except ProtocolError as exc:
                self.counters["protocol_errors"] += 1
                await self._farewell(writer, error_response(None, exc))
                return
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                return  # peer died mid-frame; cleanup aborts its txn
            except ReproError as exc:
                # An armed server.conn.read failpoint in ``error`` mode:
                # the read never happened, so the connection is toast —
                # but unlike a storage EIO this is transient transport
                # trouble, so the farewell frame is marked retryable.
                self.counters["io_faults"] += 1
                await self._farewell(
                    writer,
                    shed_response(
                        None,
                        f"connection I/O failure: {exc}",
                        retry_after=self.config.shed_retry_after,
                        code="IO_ERROR",
                    ),
                )
                return
            if request is None:
                return  # clean EOF at a frame boundary
            goodbye = await self._answer(session, writer, request)
            if goodbye:
                return

    async def _answer(self, session, writer, request) -> bool:
        """Dispatch one request and write its response; returns True
        when the connection should close (goodbye)."""
        request_id = request.get("id")
        op = request.get("op")
        goodbye = False
        try:
            response = await self._dispatch(session, request)
            if op == "goodbye":
                goodbye = True
        except ConnectionError:
            # An injected stream disconnect (repl.stream.write) or a
            # peer reset surfaced by a handler: tear the connection
            # down instead of answering on a dead/poisoned stream.
            self.counters["io_faults"] += 1
            return True
        except Exception as exc:
            response = self._failure(session, request_id, exc)
        try:
            self.counters["bytes_out"] += await write_frame(
                writer, response, site=SITE_CONN_WRITE
            )
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            return True  # peer gone; cleanup aborts its txn
        except ReproError:
            # Armed server.conn.write failpoint in ``error`` mode: the
            # response cannot be delivered; drop the connection rather
            # than desynchronize the request/response pairing.
            self.counters["io_faults"] += 1
            return True
        return goodbye

    def _failure(self, session, request_id, exc: BaseException):
        """Build the structured error response and update counters."""
        if isinstance(exc, ProtocolError):
            self.counters["protocol_errors"] += 1
        if isinstance(exc, (OverloadError, DegradedModeError)):
            self.counters["requests_shed"] += 1
        else:
            self.counters["requests_failed"] += 1
        # The engine aborts a transaction that conflicts, times out, or
        # trips integrity checks — stop tracking it once it is dead.
        txn = session.txn
        if txn is not None and not txn.is_active:
            session.txn = None
        return error_response(
            request_id, exc, retry_after=self._retry_hint(exc)
        )

    async def _dispatch(self, session, request) -> dict[str, Any]:
        op = request.get("op")
        request_id = request.get("id")
        if not isinstance(op, str):
            raise ProtocolError("request is missing its 'op' field")
        if not session.ready and op not in _PRE_HANDSHAKE_OPS:
            raise ProtocolError(f"op {op!r} before the hello handshake")
        if self._draining and op not in _DRAIN_OPS:
            self.counters["requests_shed"] += 1
            return shed_response(
                request_id,
                "server is draining",
                retry_after=self.config.shed_retry_after,
            )

        if op == "hello":
            version = request.get("version", PROTOCOL_VERSION)
            if not isinstance(version, int) or version < 1:
                raise ProtocolError(f"bad protocol version {version!r}")
            if version > PROTOCOL_VERSION:
                raise ProtocolError(
                    f"client speaks protocol {version}, server tops out "
                    f"at {PROTOCOL_VERSION}"
                )
            session.ready = True
            self.counters["requests_served"] += 1
            return {
                "ok": True,
                "id": request_id,
                "server": "aeong",
                "protocol": PROTOCOL_VERSION,
                "session": session.sid,
            }
        if op == "ping":
            self.counters["requests_served"] += 1
            return {"ok": True, "id": request_id, "pong": True}
        if op == "health":
            return self._health(request_id)
        if op == "ready":
            return self._ready(request_id)
        if op == "metrics":
            # registry.sections() merges every provider: the engine's
            # full metrics() plus this server's own "server" section.
            snapshot = await self._run(
                "server.metrics",
                self.engine.observability.registry.sections,
            )
            self.counters["requests_served"] += 1
            return {"ok": True, "id": request_id, "metrics": snapshot}
        if op == "goodbye":
            self.counters["requests_served"] += 1
            return {"ok": True, "id": request_id, "bye": True}

        if op == "query":
            return await self._op_query(
                session,
                request_id,
                request.get("text"),
                request.get("params"),
                request.get("timeout"),
            )
        if op == "prepare":
            return self._op_prepare(
                session, request_id, request.get("name"), request.get("text")
            )
        if op == "execute":
            name = request.get("name")
            if not isinstance(name, str) or name not in session.prepared:
                raise ProtocolError(f"no prepared statement named {name!r}")
            return await self._op_query(
                session,
                request_id,
                session.prepared[name],
                request.get("params"),
                request.get("timeout"),
            )
        if op == "begin":
            return await self._op_begin(
                session, request_id, request.get("timeout")
            )
        if op == "commit":
            return await self._op_commit(session, request_id)
        if op == "abort":
            return await self._op_abort(session, request_id)

        if op == "repl_register":
            return await self._op_repl_register(request_id, request)
        if op == "repl_fetch":
            return await self._op_repl_fetch(request_id, request)
        if op == "repl_apply":
            return await self._op_repl_apply(request_id, request)
        if op == "repl_snapshot":
            return await self._op_repl_snapshot(request_id, request)
        if op == "repl_status":
            return self._op_repl_status(request_id)
        if op == "promote":
            return self._op_promote(request_id)
        raise ProtocolError(f"unknown op {op!r}")

    # -- status ops --------------------------------------------------------

    def _health(self, request_id) -> dict[str, Any]:
        """Liveness: answers even while degraded or draining."""
        ctrl = self.engine.resilience
        degraded = ctrl.degraded
        self.counters["requests_served"] += 1
        return {
            "ok": True,
            "id": request_id,
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "draining": self._draining,
            "connections": self.counters["connections_active"],
            "active_transactions": self.engine.manager.active_count,
        }

    def _ready(self, request_id) -> dict[str, Any]:
        """Readiness: should this server receive *new* traffic?"""
        gate = self.engine.resilience.gate
        saturated = False
        if gate is not None:
            snap = gate.snapshot()
            saturated = snap["in_flight"] >= snap["max_concurrent"]
        ready = not self._draining and not saturated
        self.counters["requests_served"] += 1
        return {
            "ok": True,
            "id": request_id,
            "ready": ready,
            "draining": self._draining,
            "saturated": saturated,
        }

    # -- replication ops ---------------------------------------------------

    @staticmethod
    def _repl_int(request, field, default=None) -> int:
        value = request.get(field, default)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ProtocolError(
                f"{field} must be a non-negative integer, got {value!r}"
            )
        return value

    def _require_primary_role(self, op: str) -> None:
        state = self.engine.replication
        if state.is_replica:
            self.counters["not_primary_rejections"] += 1
            raise NotPrimaryError(
                f"op {op!r} must go to the primary; this node is a replica",
                primary_address=self.primary_hint,
            )

    async def _op_repl_register(self, request_id, request) -> dict[str, Any]:
        self._require_primary_role("repl_register")
        replica_id = request.get("replica_id")
        if not isinstance(replica_id, str) or not replica_id:
            raise ProtocolError("repl_register requires a 'replica_id'")
        watermark = self._repl_int(request, "watermark", 0)
        epoch = self._repl_int(request, "epoch", 1)
        state = self.engine.replication
        state.register_replica(replica_id, watermark, epoch)
        self.counters["requests_served"] += 1
        return {
            "ok": True,
            "id": request_id,
            "role": state.role,
            "epoch": state.epoch,
            "fence_ts": state.fence_ts,
            "watermark": state.watermark(),
        }

    async def _op_repl_fetch(self, request_id, request) -> dict[str, Any]:
        from repro.replication import build_fetch_response

        self._require_primary_role("repl_fetch")
        replica_id = request.get("replica_id")
        if not isinstance(replica_id, str) or not replica_id:
            raise ProtocolError("repl_fetch requires a 'replica_id'")
        from_ts = self._repl_int(request, "from_ts", 1)
        ack = self._repl_int(request, "ack", 0)
        epoch = self._repl_int(request, "epoch", 1)
        wait = request.get("wait", 0)
        if not isinstance(wait, (int, float)) or wait < 0:
            raise ProtocolError("wait must be a non-negative number")
        limit = self._repl_int(request, "limit", 512)
        response = await self._run(
            "repl.ship",
            build_fetch_response,
            self.engine,
            replica_id,
            from_ts,
            ack,
            epoch,
            min(float(wait), self.config.repl_max_wait),
            max(1, min(limit, 4096)),
            executor=self._repl_executor,
        )
        self.counters["repl_fetches"] += 1
        self.counters["requests_served"] += 1
        return {"ok": True, "id": request_id, **response}

    async def _op_repl_snapshot(self, request_id, request) -> dict[str, Any]:
        # Not in _DRAIN_OPS on purpose: a drain sheds snapshot traffic
        # with a retryable SHUTTING_DOWN instead of racing the stream
        # against shutdown, and the replica resumes at the same offset
        # against the next primary.
        from repro.replication import serve_snapshot_request

        self._require_primary_role("repl_snapshot")
        response = await self._run(
            "repl.snapshot",
            serve_snapshot_request,
            self.engine,
            request,
            executor=self._repl_executor,
        )
        self.counters["repl_snapshots"] += 1
        self.counters["requests_served"] += 1
        return {"ok": True, "id": request_id, **response}

    async def _op_repl_apply(self, request_id, request) -> dict[str, Any]:
        from repro.replication import apply_pushed_records

        epoch = self._repl_int(request, "epoch", 1)
        records = request.get("records")
        if not isinstance(records, list) or not all(
            isinstance(r, str) for r in records
        ):
            raise ProtocolError(
                "repl_apply requires 'records': a list of base64 envelopes"
            )
        result = await self._run(
            "repl.apply_push", apply_pushed_records, self.engine, epoch,
            records, executor=self._repl_executor,
        )
        self.counters["repl_applies"] += 1
        self.counters["requests_served"] += 1
        return {"ok": True, "id": request_id, **result}

    def _op_repl_status(self, request_id) -> dict[str, Any]:
        state = self.engine.replication
        self.counters["requests_served"] += 1
        return {
            "ok": True,
            "id": request_id,
            "replication": state.metrics(),
            "primary_hint": self.primary_hint,
        }

    def _op_promote(self, request_id) -> dict[str, Any]:
        """Operator-initiated failover: make this node the primary."""
        status = self.engine.replication.promote()
        self.counters["requests_served"] += 1
        return {"ok": True, "id": request_id, **status}

    # -- statement ops -----------------------------------------------------

    def _validate_params(self, params) -> Optional[dict[str, Any]]:
        if params is None:
            return None
        if not isinstance(params, dict):
            raise ProtocolError("params must be a JSON object")
        return params

    async def _op_query(
        self, session, request_id, text, params, timeout
    ) -> dict[str, Any]:
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError("query requires a non-empty 'text'")
        params = self._validate_params(params)
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ProtocolError("timeout must be a number of seconds")
        if session.txn is not None:
            # Surface a watchdog-aborted transaction now (TXN_TIMEOUT)
            # instead of silently reading a dead snapshot; _failure()
            # drops the dead txn from the session.
            session.txn.check_active()
        engine = self.engine
        if engine.replication.is_replica:
            # Replicas serve snapshot reads at their applied watermark;
            # writes must go to the primary.  Reject with the primary's
            # address so the retrying client can fail over (retryable:
            # the same statement succeeds there — or here, once this
            # node is promoted).
            from repro.query.executor import statement_prefix
            from repro.query.parser import parse

            if statement_prefix(text) is None and parse(text).is_write:
                self.counters["not_primary_rejections"] += 1
                raise NotPrimaryError(
                    "write routed to a replica",
                    primary_address=self.primary_hint,
                )

        def work():
            from repro.query.executor import execute_query, statement_prefix

            if session.txn is not None:
                rows = execute_query(engine, session.txn, text, params)
            elif timeout is not None and statement_prefix(text) != "EXPLAIN":
                rows = engine.run_transaction(
                    lambda txn: execute_query(engine, txn, text, params),
                    timeout=timeout,
                )
            else:
                rows = engine.execute(text, params)
            return rows, engine.last_read_degraded

        rows, degraded = await self._run("server.query", work)
        if degraded:
            self.counters["requests_degraded"] += 1
        self.counters["requests_served"] += 1
        response = {"ok": True, "id": request_id, "rows": rows}
        if degraded:
            response["degraded"] = True
        return response

    def _op_prepare(self, session, request_id, name, text) -> dict[str, Any]:
        if not isinstance(name, str) or not name:
            raise ProtocolError("prepare requires a statement 'name'")
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError("prepare requires a non-empty 'text'")
        # Validate eagerly so a typo fails at prepare time, not on the
        # Nth execute (EXPLAIN/PROFILE-prefixed statements validate at
        # execution, where the prefix is stripped).
        from repro.query.executor import statement_prefix
        from repro.query.parser import parse

        if statement_prefix(text) is None:
            parse(text)
        session.prepared[name] = text
        self.counters["requests_served"] += 1
        return {"ok": True, "id": request_id, "prepared": name}

    # -- transaction ops ---------------------------------------------------

    async def _op_begin(self, session, request_id, timeout) -> dict[str, Any]:
        if session.txn is not None and session.txn.is_active:
            raise TransactionStateError(
                "session already has an open transaction"
            )
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ProtocolError("timeout must be a number of seconds")
        session.txn = await self._run(
            "server.begin", self.engine.begin, timeout=timeout
        )
        self.counters["requests_served"] += 1
        return {"ok": True, "id": request_id, "txn": session.txn.id}

    async def _op_commit(self, session, request_id) -> dict[str, Any]:
        txn = session.txn
        if txn is None:
            raise TransactionStateError("no open transaction to commit")
        commit_ts = await self._run("server.commit", self.engine.commit, txn)
        session.txn = None
        self.counters["requests_served"] += 1
        return {"ok": True, "id": request_id, "commit_ts": commit_ts}

    async def _op_abort(self, session, request_id) -> dict[str, Any]:
        txn = session.txn
        if txn is None:
            raise TransactionStateError("no open transaction to abort")
        session.txn = None
        await self._run("server.abort", self.engine.abort, txn)
        self.counters["requests_served"] += 1
        return {"ok": True, "id": request_id, "aborted": True}


class ServerThread:
    """Run an :class:`AeonGServer` on a dedicated event-loop thread.

    The blocking façade used by tests, the example, and the load
    harness's in-process mode::

        thread = ServerThread(engine)
        host, port = thread.start()
        ...
        thread.stop()   # graceful drain
    """

    def __init__(self, engine, config: Optional[ServerConfig] = None) -> None:
        self.server = AeonGServer(engine, config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def start(self, timeout: float = 10.0) -> tuple[str, int]:
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="aeong-server-loop", daemon=True
        )
        self._thread.start()
        started.wait(timeout)
        future = asyncio.run_coroutine_threadsafe(
            self.server.start(), self._loop
        )
        return future.result(timeout)

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        )
        future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._loop.close()
        self._loop = None


def serve(
    directory,
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[ServerConfig] = None,
    replica_of: Optional[str] = None,
    replica_id: str = "replica-1",
    lease_timeout: float = 2.0,
    poll_interval: float = 0.2,
    auto_promote: bool = True,
    sync_replication: bool = False,
    metrics_port: Optional[int] = None,
    **engine_kwargs,
) -> None:
    """Blocking entry point behind ``aeong serve DIR``.

    Opens (or creates) a durable engine at ``directory`` — replaying
    its WAL and reporting recovery — then serves until SIGTERM/SIGINT,
    drains, and closes the engine cleanly.

    With ``replica_of="HOST:PORT"`` the node starts as a replica: a
    :class:`~repro.replication.ReplicaRunner` streams the primary's
    WAL, the node serves snapshot reads at its applied watermark, and
    on lease expiry (``lease_timeout`` seconds without a successful
    fetch, ``auto_promote`` on) it promotes itself and starts accepting
    writes.  ``sync_replication`` makes a *primary* hold each commit
    acknowledgement until a replica has applied it.

    Startup prints machine-readable lines (stable format; the harness
    and tests parse them)::

        aeong serving on 127.0.0.1:43117
        aeong metrics on 127.0.0.1:9464        (with --metrics-port)
        aeong role replica of 127.0.0.1:43000  (with --replica-of)
    """
    from repro.core.durability import open_engine
    from repro.replication import ReplicaRunner, ReplicationConfig

    repl_config: Optional[ReplicationConfig] = None
    if replica_of is not None:
        try:
            primary_host, primary_port_s = replica_of.rsplit(":", 1)
            primary_port = int(primary_port_s)
        except ValueError:
            raise SystemExit(
                f"--replica-of must be HOST:PORT, got {replica_of!r}"
            )
        repl_config = ReplicationConfig(
            role="replica",
            replica_id=replica_id,
            primary_host=primary_host,
            primary_port=primary_port,
            lease_timeout=lease_timeout,
            poll_interval=poll_interval,
            auto_promote=auto_promote,
        )
    elif sync_replication:
        repl_config = ReplicationConfig(role="primary", sync_commit=True)

    engine = open_engine(directory, replication=repl_config, **engine_kwargs)
    report = engine.last_recovery
    if report is not None:
        print(
            f"recovery: {report.transactions_replayed} txns replayed, "
            f"torn_tail={report.torn_tail}, "
            f"corruption_detected={report.corruption_detected}",
            flush=True,
        )
    cfg = config or ServerConfig(host=host, port=port)
    if metrics_port is not None:
        cfg.metrics_port = metrics_port
    runner: Optional[ReplicaRunner] = None

    async def main() -> None:
        nonlocal runner
        server = AeonGServer(engine, cfg)
        bound_host, bound_port = await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        print(f"aeong serving on {bound_host}:{bound_port}", flush=True)
        if server.metrics_address is not None:
            mhost, mport = server.metrics_address
            print(f"aeong metrics on {mhost}:{mport}", flush=True)
        if repl_config is not None and repl_config.role == "replica":
            server.primary_hint = (
                f"{repl_config.primary_host}:{repl_config.primary_port}"
            )
            runner = ReplicaRunner(engine, repl_config)
            runner.start()
            print(
                f"aeong role replica of {server.primary_hint}", flush=True
            )
        else:
            print("aeong role primary", flush=True)
        await stop.wait()
        print("aeong draining", flush=True)
        await server.shutdown()

    try:
        asyncio.run(main())
    finally:
        if runner is not None:
            runner.stop()
        engine.close()
    print("aeong closed cleanly", flush=True)


__all__ = ["ServerConfig", "AeonGServer", "ServerThread", "serve"]
