"""The AeonG serving layer (see ``docs/SERVING.md``).

An asyncio TCP server exposing the query language over a
length-prefixed JSON protocol, built for graceful degradation:
admission-gated overload shedding with structured retryable errors,
guaranteed transaction cleanup on session death, SIGTERM drain, and
socket-level failpoints for chaos testing.

Layout:

* :mod:`repro.server.protocol` — framing, failpoint sites, error
  taxonomy;
* :mod:`repro.server.app` — :class:`AeonGServer`, the blocking
  :class:`ServerThread` façade, and the :func:`serve` CLI entry;
* :mod:`repro.server.client` — blocking client with capped-exponential
  retry;
* :mod:`repro.server.harness` — async multi-client load/chaos harness.
"""

from repro.server.app import AeonGServer, ServerConfig, ServerThread, serve
from repro.server.client import Client
from repro.server.protocol import (
    PROTOCOL_VERSION,
    SITE_CONN_READ,
    SITE_CONN_WRITE,
)

__all__ = [
    "AeonGServer",
    "ServerConfig",
    "ServerThread",
    "serve",
    "Client",
    "PROTOCOL_VERSION",
    "SITE_CONN_READ",
    "SITE_CONN_WRITE",
]
