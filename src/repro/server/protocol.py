"""Wire protocol for the AeonG serving layer.

Documented in ``docs/SERVING.md`` (frame format, request/response
schema, and the full error taxonomy with its retryability table).

Frames are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON.  One request frame yields
exactly one response frame; requests on one connection are processed
in order.  The JSON payloads are plain objects — every request carries
an ``op`` and an ``id``, every response echoes the ``id`` and carries
``ok`` plus either result fields or a structured ``error`` object::

    {"ok": false, "id": 7,
     "error": {"code": "OVERLOADED", "message": "...",
               "retryable": true, "retry_after": 0.05}}

The module also owns the serving layer's *socket failpoints*: the
``server.conn.read`` / ``server.conn.write`` sites evaluated by the
async framing helpers, interpreting the network-flavoured modes of
:mod:`repro.faults` (``delay``, ``disconnect``, ``short-read``,
``torn-write``) so the chaos harness can tear connections at exactly
the byte boundary it wants.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Optional

from repro import faults
from repro.errors import (
    DegradedModeError,
    FaultInjected,
    IntegrityError,
    CorruptionError,
    GraphError,
    NotPrimaryError,
    OverloadError,
    ProtocolError,
    QueryError,
    ReplicationDivergedError,
    ReplicationFencedError,
    ReplicationResyncRequired,
    ReplicationTimeout,
    ReproError,
    SerializationConflict,
    StorageError,
    TemporalError,
    TransactionStateError,
    TransactionTimeout,
)
from repro.faults import (
    FAILPOINTS,
    MODE_DELAY,
    MODE_DISCONNECT,
    MODE_SHORT_READ,
    MODE_TORN_WRITE,
)

#: Protocol version spoken by this server and client.
PROTOCOL_VERSION = 1

#: A frame larger than this is a protocol violation (guards the server
#: against a client asking it to buffer gigabytes).
MAX_FRAME_BYTES = 4 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: The serving layer's socket failpoint sites (armable like any
#: storage site; exercised by the fault matrix).
SITE_CONN_READ = "server.conn.read"
SITE_CONN_WRITE = "server.conn.write"
FAILPOINTS.register(SITE_CONN_READ, SITE_CONN_WRITE)


# -- framing (sync: used by the blocking client) ---------------------------


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialize one message to its wire form (header + JSON body)."""
    body = json.dumps(payload, separators=(",", ":"), default=str).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict[str, Any]:
    """Parse a frame body; anything but a JSON object is a violation."""
    try:
        payload = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable frame body: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def decode_length(header: bytes) -> int:
    """Validate and unpack a frame header."""
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return length


# -- framing (async: the server's injectable I/O) --------------------------


async def _apply_read_fault(mode: Optional[str], reader, site: str):
    """Interpret a socket fault mode on the read path.

    Returns the truncated bytes consumed so far for ``short-read`` (the
    caller raises after observing them); raises directly for the
    abrupt modes.
    """
    if mode == MODE_DELAY:
        await asyncio.sleep(faults.FAULT_DELAY_SECONDS)
    elif mode == MODE_DISCONNECT:
        raise ConnectionResetError(f"injected disconnect at {site}")


async def read_frame(reader: asyncio.StreamReader, site: Optional[str] = None):
    """Read one frame; returns the decoded payload or ``None`` on a
    clean EOF at a frame boundary.

    With ``site`` given, evaluates that failpoint before the read:
    ``delay`` injects latency, ``disconnect`` raises
    ``ConnectionResetError``, and ``short-read`` consumes the header
    plus half the body and then dies mid-frame — exactly what a peer
    crash between two TCP segments looks like.
    """
    mode = None
    if site is not None:
        mode = FAILPOINTS.check(site)  # error -> FaultInjected
        await _apply_read_fault(mode, reader, site)
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)}/4 bytes)"
        ) from None
    length = decode_length(header)
    if mode == MODE_SHORT_READ:
        # Consume what the "peer" managed to send, then die mid-frame.
        await reader.read(max(1, length // 2))
        raise ConnectionResetError(f"injected short read at {site}")
    body = await reader.readexactly(length)
    return decode_body(body)


async def write_frame(
    writer: asyncio.StreamWriter,
    payload: dict[str, Any],
    site: Optional[str] = None,
) -> int:
    """Write one frame; returns the bytes put on the wire.

    With ``site`` given, evaluates that failpoint first: ``delay``
    injects latency, ``disconnect`` aborts the transport before any
    byte is sent, ``torn-write`` puts half the frame on the wire and
    then aborts — the peer sees torn bytes followed by a reset.
    """
    data = encode_frame(payload)
    if site is not None:
        mode = FAILPOINTS.check(site)
        if mode == MODE_DELAY:
            await asyncio.sleep(faults.FAULT_DELAY_SECONDS)
        elif mode == MODE_DISCONNECT:
            writer.transport.abort()
            raise ConnectionResetError(f"injected disconnect at {site}")
        elif mode == MODE_TORN_WRITE:
            writer.write(data[: len(data) // 2])
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.transport.abort()
            raise ConnectionResetError(f"injected torn write at {site}")
    writer.write(data)
    await writer.drain()
    return len(data)


# -- error taxonomy --------------------------------------------------------

#: Taxonomy codes, most specific exception first (isinstance dispatch).
#: ``retryable`` means "the same request can succeed later without the
#: client changing anything"; ``retry_after`` hints are filled in by
#: the server from its engine's resilience configuration.
_TAXONOMY: tuple[tuple[type, str, bool], ...] = (
    (OverloadError, "OVERLOADED", True),
    (DegradedModeError, "DEGRADED", True),
    (SerializationConflict, "CONFLICT", True),
    (TransactionTimeout, "TXN_TIMEOUT", True),
    (TransactionStateError, "TXN_STATE", False),
    (IntegrityError, "INTEGRITY", False),
    (CorruptionError, "CORRUPTION", False),
    (FaultInjected, "IO_ERROR", False),
    # NOT_PRIMARY is retryable: the same statement succeeds once the
    # client re-resolves to the primary (the response carries its
    # address as a hint).  The other replication codes are terminal for
    # the sender: a fenced zombie, a diverged replica, and a node below
    # the truncation fence all need operator action, and REPL_TIMEOUT
    # must not be retried — the write IS committed on the primary, so a
    # resend would double-apply it.
    (NotPrimaryError, "NOT_PRIMARY", True),
    (ReplicationFencedError, "REPL_FENCED", False),
    (ReplicationDivergedError, "REPL_DIVERGED", False),
    (ReplicationResyncRequired, "REPL_RESYNC", False),
    (ReplicationTimeout, "REPL_TIMEOUT", False),
    (QueryError, "QUERY_ERROR", False),
    (GraphError, "GRAPH_ERROR", False),
    (TemporalError, "TEMPORAL_ERROR", False),
    (ProtocolError, "PROTOCOL", False),
    (StorageError, "STORAGE", False),
    (ReproError, "ERROR", False),
)

#: The code used when the server sheds work because it is draining.
CODE_SHUTTING_DOWN = "SHUTTING_DOWN"
#: The code used for exceptions outside the ReproError family.
CODE_INTERNAL = "INTERNAL"


def classify(exc: BaseException) -> tuple[str, bool]:
    """Map an exception to its ``(code, retryable)`` taxonomy entry."""
    for exc_type, code, retryable in _TAXONOMY:
        if isinstance(exc, exc_type):
            return code, retryable
    return CODE_INTERNAL, False


def error_response(
    request_id: Any,
    exc: BaseException,
    retry_after: Optional[float] = None,
) -> dict[str, Any]:
    """The structured ``ok=false`` response for one failed request."""
    code, retryable = classify(exc)
    error: dict[str, Any] = {
        "code": code,
        "message": str(exc) or type(exc).__name__,
        "retryable": retryable,
    }
    if retryable and retry_after is not None:
        error["retry_after"] = retry_after
    primary = getattr(exc, "primary_address", None)
    if primary is not None:
        # NOT_PRIMARY responses tell the client where to fail over to.
        error["primary"] = primary
    return {"ok": False, "id": request_id, "error": error}


def shed_response(
    request_id: Any,
    message: str,
    retry_after: Optional[float] = None,
    code: str = CODE_SHUTTING_DOWN,
) -> dict[str, Any]:
    """A structured retryable rejection (drain or connection limit)."""
    error: dict[str, Any] = {
        "code": code,
        "message": message,
        "retryable": True,
    }
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {"ok": False, "id": request_id, "error": error}


__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "SITE_CONN_READ",
    "SITE_CONN_WRITE",
    "CODE_SHUTTING_DOWN",
    "CODE_INTERNAL",
    "encode_frame",
    "decode_body",
    "decode_length",
    "read_frame",
    "write_frame",
    "classify",
    "error_response",
    "shed_response",
]
