"""Temporal graph analysis on top of the engine's time-travel reads.

The paper motivates temporal support with evolving-graph analyses —
"understand the spreading of rumors in a social network", fraud
tracing, manufacturing-delay causality.  This module provides those
building blocks over the public temporal API:

- :func:`reachable_at` / :func:`shortest_path_at` — connectivity *as
  the graph stood* at one instant (``TT SNAPSHOT`` semantics);
- :func:`time_respecting_paths` — spread analysis: paths whose hops
  occur at non-decreasing times within a window, the standard model of
  information/disease propagation on temporal graphs;
- :func:`version_history_stats` — per-object churn statistics.

Everything runs inside a caller-supplied transaction and only uses the
engine's temporal operators, so results are consistent snapshots even
while writers run.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.core.temporal import TemporalCondition
from repro.errors import TemporalError


def reachable_at(
    engine,
    txn,
    source_gid: int,
    target_gid: int,
    t: int,
    edge_types: Optional[set[str]] = None,
    max_depth: int = 25,
) -> bool:
    """Was ``target`` reachable from ``source`` at instant ``t``?

    Breadth-first search over the graph *as of* ``t`` (deleted edges
    are traversed if they were alive then; later edges are invisible).
    """
    return (
        shortest_path_at(
            engine, txn, source_gid, target_gid, t, edge_types, max_depth
        )
        is not None
    )


def shortest_path_at(
    engine,
    txn,
    source_gid: int,
    target_gid: int,
    t: int,
    edge_types: Optional[set[str]] = None,
    max_depth: int = 25,
) -> Optional[list[int]]:
    """The hop-minimal vertex path from source to target as of ``t``
    (inclusive of both endpoints), or None if disconnected."""
    cond = TemporalCondition.as_of(t)
    start = next(iter(engine.vertex_versions(txn, source_gid, cond)), None)
    if start is None:
        return None
    if source_gid == target_gid:
        return [source_gid]
    parents: dict[int, int] = {source_gid: source_gid}
    frontier = deque([(start, 0)])
    while frontier:
        vertex, depth = frontier.popleft()
        if depth >= max_depth:
            continue
        for _edge, neighbour in engine.expand(
            txn, vertex, cond, direction="both", edge_types=edge_types
        ):
            if neighbour.gid in parents:
                continue
            parents[neighbour.gid] = vertex.gid
            if neighbour.gid == target_gid:
                return _unwind_path(parents, source_gid, target_gid)
            frontier.append((neighbour, depth + 1))
    return None


def _unwind_path(parents: dict[int, int], source: int, target: int) -> list[int]:
    path = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return path


@dataclass(frozen=True)
class TemporalPath:
    """One time-respecting path: vertices visited and hop times."""

    vertices: tuple[int, ...]
    hop_times: tuple[int, ...]

    @property
    def arrival_time(self) -> int:
        return self.hop_times[-1]

    def __len__(self) -> int:
        return len(self.hop_times)


def time_respecting_paths(
    engine,
    txn,
    source_gid: int,
    t1: int,
    t2: int,
    edge_types: Optional[set[str]] = None,
    max_hops: int = 10,
) -> dict[int, TemporalPath]:
    """Earliest-arrival time-respecting paths from ``source``.

    Standard temporal-path semantics over interval-valid edges:
    information arriving at a vertex at time τ crosses an edge if the
    edge is *alive at some instant in [τ, t2]* — either it already
    existed (hop time τ) or it appears later (hop time = its creation)
    — and has not been deleted before the hop.  Returns, per reachable
    vertex, the path with the earliest arrival time (source excluded).

    This is the "rumor spreading" primitive: seed a post at its
    creation time and see who could have seen it, in what order.
    """
    if t1 > t2:
        raise TemporalError(f"empty window [{t1}, {t2}]")
    cond = TemporalCondition.between(t1, t2)
    best: dict[int, TemporalPath] = {}
    # Dijkstra-style on arrival time (hop times are monotone per path).
    frontier: list[tuple[int, int, tuple[int, ...], tuple[int, ...]]] = [
        (t1, source_gid, (source_gid,), ())
    ]
    visited_at: dict[int, int] = {source_gid: t1}
    while frontier:
        arrived, gid, vertices, times = heapq.heappop(frontier)
        if len(times) >= max_hops:
            continue
        vertex = next(iter(engine.vertex_versions(txn, gid, cond)), None)
        if vertex is None:
            continue
        for edge, neighbour in engine.expand(
            txn, vertex, cond, direction="both", edge_types=edge_types
        ):
            # The hop happens as soon as both the information and the
            # edge exist; the edge must still be alive at that moment.
            hop_time = max(arrived, edge.tt_start)
            if hop_time > t2 or edge.tt_end <= hop_time:
                continue
            if neighbour.gid in visited_at and visited_at[neighbour.gid] <= hop_time:
                continue
            visited_at[neighbour.gid] = hop_time
            path = TemporalPath(vertices + (neighbour.gid,), times + (hop_time,))
            if neighbour.gid != source_gid:
                current = best.get(neighbour.gid)
                if current is None or path.arrival_time < current.arrival_time:
                    best[neighbour.gid] = path
            heapq.heappush(
                frontier,
                (hop_time, neighbour.gid, path.vertices, path.hop_times),
            )
    return best


@dataclass(frozen=True)
class HistoryStats:
    """Churn statistics for one object's recorded history."""

    versions: int
    first_seen: int
    last_changed: int
    lifetime: int
    changed_properties: tuple[str, ...]


def version_history_stats(engine, txn, gid: int) -> Optional[HistoryStats]:
    """Summarize an object's version history (None if no trace)."""
    cond = TemporalCondition.between(0, engine.now())
    versions = list(engine.vertex_versions(txn, gid, cond))
    if not versions:
        return None
    oldest = versions[-1]
    newest = versions[0]
    changed: set[str] = set()
    for newer, older in zip(versions, versions[1:]):
        for name in set(newer.properties) | set(older.properties):
            if newer.properties.get(name) != older.properties.get(name):
                changed.add(name)
    return HistoryStats(
        versions=len(versions),
        first_seen=oldest.tt_start,
        last_changed=newest.tt_start,
        lifetime=newest.tt_end - oldest.tt_start
        if newest.tt_end != 2**63 - 1
        else engine.now() - oldest.tt_start,
        changed_properties=tuple(sorted(changed)),
    )
