"""Graph import/export: JSONL and CSV, current-state and full history.

Interchange formats for getting data in and out of the engine:

- **JSONL** — one JSON object per line; vertices carry ``labels`` and
  ``properties``, edges carry ``type``, endpoints and ``properties``.
  ``export_history_jsonl`` additionally dumps *every version* of every
  object with its transaction-time interval — an audit-grade export
  only a temporal database can produce.
- **CSV** — ``vertices.csv`` / ``edges.csv`` with a JSON-encoded
  property column, the common denominator for spreadsheet-style
  tooling and bulk loaders.

Imports allocate fresh gids; both importers return the old-id → new-id
mapping so callers can rewire references.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Optional

from repro.common.timeutil import MAX_TIMESTAMP
from repro.core.temporal import TemporalCondition
from repro.errors import StorageError


# -- JSONL ---------------------------------------------------------------------


def export_jsonl(engine, path) -> int:
    """Write the current visible graph as JSONL; returns line count."""
    path = Path(path)
    count = 0
    txn = engine.begin()
    try:
        with open(path, "w", encoding="utf-8") as handle:
            for vertex in engine.iter_vertices(txn):
                handle.write(
                    json.dumps(
                        {
                            "kind": "vertex",
                            "id": vertex.gid,
                            "labels": sorted(vertex.labels),
                            "properties": vertex.properties,
                        },
                        default=_json_fallback,
                    )
                    + "\n"
                )
                count += 1
            for edge in engine.iter_edges(txn):
                handle.write(
                    json.dumps(
                        {
                            "kind": "edge",
                            "id": edge.gid,
                            "type": edge.edge_type,
                            "from": edge.from_gid,
                            "to": edge.to_gid,
                            "properties": edge.properties,
                        },
                        default=_json_fallback,
                    )
                    + "\n"
                )
                count += 1
    finally:
        engine.abort(txn)
    return count


def export_history_jsonl(engine, path) -> int:
    """Write *every version* of every vertex and edge as JSONL.

    Each line carries the version's transaction-time interval
    (``tt: [start, end]``; ``end: null`` for current versions) — the
    complete audit trail, reconstructed from the hybrid store.
    """
    path = Path(path)
    cond = TemporalCondition.between(0, engine.now())
    count = 0
    txn = engine.begin()
    try:
        with open(path, "w", encoding="utf-8") as handle:
            seen_vertices: set[int] = set()
            for record in engine.storage.iter_vertex_records():
                seen_vertices.add(record.gid)
            for gid in engine.history.known_gids("vertex"):
                seen_vertices.add(gid)
            for gid in sorted(seen_vertices):
                for view in engine.vertex_versions(txn, gid, cond):
                    handle.write(_version_line("vertex", gid, view) + "\n")
                    count += 1
            seen_edges: set[int] = set()
            for record in engine.storage.iter_edge_records():
                seen_edges.add(record.gid)
            for gid in engine.history.known_gids("edge"):
                seen_edges.add(gid)
            for gid in sorted(seen_edges):
                for view in engine.edge_versions(txn, gid, cond):
                    handle.write(_version_line("edge", gid, view) + "\n")
                    count += 1
    finally:
        engine.abort(txn)
    return count


def _version_line(kind: str, gid: int, view) -> str:
    payload: dict[str, Any] = {
        "kind": kind,
        "id": gid,
        "properties": view.properties,
        "tt": [
            view.tt_start,
            None if view.tt_end == MAX_TIMESTAMP else view.tt_end,
        ],
    }
    if kind == "vertex":
        payload["labels"] = sorted(view.labels)
    else:
        payload["type"] = view.edge_type
        payload["from"] = view.from_gid
        payload["to"] = view.to_gid
    return json.dumps(payload, default=_json_fallback)


def import_jsonl(engine, path, txn=None) -> dict[int, int]:
    """Load a JSONL export; returns {exported id -> new gid}.

    Vertices must precede the edges that reference them (the exporters
    guarantee this).  Runs in one transaction (the caller's, if given).
    """
    path = Path(path)
    own_txn = txn is None
    if own_txn:
        txn = engine.begin()
    mapping: dict[int, int] = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.get("kind")
                if kind == "vertex":
                    gid = engine.create_vertex(
                        txn, record.get("labels", ()), record.get("properties")
                    )
                    mapping[record["id"]] = gid
                elif kind == "edge":
                    source = mapping.get(record["from"])
                    target = mapping.get(record["to"])
                    if source is None or target is None:
                        raise StorageError(
                            f"line {line_no}: edge references unknown vertex"
                        )
                    gid = engine.create_edge(
                        txn,
                        source,
                        target,
                        record["type"],
                        record.get("properties"),
                    )
                    mapping[record["id"]] = gid
                else:
                    raise StorageError(f"line {line_no}: unknown kind {kind!r}")
    except BaseException:
        if own_txn and txn.is_active:
            engine.abort(txn)
        raise
    if own_txn:
        engine.commit(txn)
    return mapping


# -- CSV ---------------------------------------------------------------------------


def export_csv(engine, directory) -> tuple[int, int]:
    """Write ``vertices.csv`` and ``edges.csv``; returns (v, e) counts."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    txn = engine.begin()
    vertices = edges = 0
    try:
        with open(directory / "vertices.csv", "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["id", "labels", "properties"])
            for vertex in engine.iter_vertices(txn):
                writer.writerow(
                    [
                        vertex.gid,
                        ";".join(sorted(vertex.labels)),
                        json.dumps(vertex.properties, default=_json_fallback),
                    ]
                )
                vertices += 1
        with open(directory / "edges.csv", "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["id", "type", "from", "to", "properties"])
            for edge in engine.iter_edges(txn):
                writer.writerow(
                    [
                        edge.gid,
                        edge.edge_type,
                        edge.from_gid,
                        edge.to_gid,
                        json.dumps(edge.properties, default=_json_fallback),
                    ]
                )
                edges += 1
    finally:
        engine.abort(txn)
    return vertices, edges


def import_csv(engine, directory, txn=None) -> dict[int, int]:
    """Load a CSV export; returns {exported id -> new gid}."""
    directory = Path(directory)
    own_txn = txn is None
    if own_txn:
        txn = engine.begin()
    mapping: dict[int, int] = {}
    try:
        with open(directory / "vertices.csv", newline="", encoding="utf-8") as handle:
            for row in csv.DictReader(handle):
                labels = [l for l in row["labels"].split(";") if l]
                gid = engine.create_vertex(
                    txn, labels, json.loads(row["properties"])
                )
                mapping[int(row["id"])] = gid
        with open(directory / "edges.csv", newline="", encoding="utf-8") as handle:
            for row in csv.DictReader(handle):
                source = mapping.get(int(row["from"]))
                target = mapping.get(int(row["to"]))
                if source is None or target is None:
                    raise StorageError("edge references unknown vertex")
                gid = engine.create_edge(
                    txn, source, target, row["type"], json.loads(row["properties"])
                )
                mapping[int(row["id"])] = gid
    except BaseException:
        if own_txn and txn.is_active:
            engine.abort(txn)
        raise
    if own_txn:
        engine.commit(txn)
    return mapping


def _json_fallback(value: Any) -> Any:
    if isinstance(value, bytes):
        return value.hex()
    raise TypeError(f"not JSON serializable: {type(value)!r}")
