"""Online integrity verification and self-healing for the hybrid store.

Documented in ``docs/API.md`` ("Integrity") — scrub scheduling,
quarantine semantics, the ``aeong verify`` subcommand, and the
``metrics()["integrity"]`` counters live there.

The history store is append-mostly and immutable by design, which makes
it verifiable: every record carries a payload checksum (see
:mod:`repro.core.deltas`), and the temporal layout obeys invariants
that follow from the paper's model (section 2.3) and ``Migrate()``
(Algorithm 1):

* one object's content deltas tile transaction time contiguously — no
  gaps, no overlaps, no degenerate intervals (per segment: content and
  topology are independent timelines, section 4.1);
* every anchor's ``tt_end`` equals some delta's ``tt_end`` (they are
  staged in the same epoch and pruned together), and its payload equals
  the state obtained by replaying the deltas above it from the next
  anchor (or from the current store's oldest unreclaimed version);
* consecutive anchors are at most ``u`` records apart (the anchor
  policy's cadence — a *warning* when violated, reconstruction still
  works, just slower);
* the newest reclaimed content version ends exactly where the current
  store's oldest version begins — an overlap would yield duplicate or
  contradictory versions for one instant.

:class:`Scrubber` checks all of this — incrementally with a budget per
pass (like the GC loop), or exhaustively via :meth:`Scrubber.scrub_full`
— and heals what it can: anchors are recomputed from delta replay (or
dropped; they are an optimization), corrupt deltas are rewritten from a
companion anchor's full state, and chains that cannot be rebuilt are
truncated below the damage, which is exactly the shape of a retention
prune and therefore leaves a consistent (if shorter) history.

Damage that has been found but not yet repaired is *quarantined*: the
affected transaction-time range of the object is registered in a
:class:`QuarantineSet` that ``fetch_versions`` consults, so a temporal
read can never silently return a version reconstructed through a bad
record.  Reads over a quarantined range raise
:class:`~repro.errors.IntegrityError` (feeding the history circuit
breaker) or degrade to current-only results, per the engine's
``degraded_reads`` policy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.timeutil import MAX_TIMESTAMP
from repro.core import keys as history_keys
from repro.core.deltas import (
    OLDER_EXISTS,
    OLDER_MISSING,
    decode_record_payload,
    encode_record_payload,
)
from repro.core.reconstruct import (
    anchor_payload_from_view,
    apply_content_record,
    edge_view_from_anchor,
    vertex_view_from_anchor,
)
from repro.errors import CorruptionError, IntegrityError
from repro.graph.views import (
    EdgeView,
    VertexView,
    _copy_view,
    oldest_unreclaimed_view,
)
from repro.kvstore import WriteBatch

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

__all__ = [
    "Finding",
    "IntegrityReport",
    "QuarantineSet",
    "Scrubber",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "backward_content_diff",
]


@dataclass
class Finding:
    """One integrity violation discovered by the scrubber.

    ``code`` is machine-readable: ``checksum-mismatch``, ``bad-key``,
    ``tt-degenerate``, ``tt-overlap``, ``tt-gap``, ``anchor-orphaned``,
    ``anchor-replay-mismatch``, ``anchor-spacing`` (warning), or
    ``current-overlap``.  ``tt_start``/``tt_end`` bound the damaged
    region on the object's transaction-time axis; ``repair`` describes
    what the self-healing pass did about it (``None`` when unrepaired).
    """

    code: str
    severity: str
    object_kind: str
    gid: int
    segment: str
    kind: str
    tt_start: int
    tt_end: int
    detail: str = ""
    repair: Optional[str] = None
    key: Optional[bytes] = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "object_kind": self.object_kind,
            "gid": self.gid,
            "segment": self.segment,
            "kind": self.kind,
            "tt_start": self.tt_start,
            "tt_end": self.tt_end,
            "detail": self.detail,
            "repair": self.repair,
            "key": self.key.hex() if self.key is not None else None,
        }


@dataclass
class IntegrityReport:
    """Machine-readable outcome of one scrub pass (or offline fsck)."""

    findings: list[Finding] = field(default_factory=list)
    gids_checked: int = 0
    records_checked: int = 0
    checksums_verified: int = 0
    legacy_records: int = 0
    repairs_applied: int = 0
    repairs_failed: int = 0
    records_dropped: int = 0
    anchors_inserted: int = 0

    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings do not fail a verify)."""
        return not self.errors()

    def as_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "gids_checked": self.gids_checked,
            "records_checked": self.records_checked,
            "checksums_verified": self.checksums_verified,
            "legacy_records": self.legacy_records,
            "repairs_applied": self.repairs_applied,
            "repairs_failed": self.repairs_failed,
            "records_dropped": self.records_dropped,
            "anchors_inserted": self.anchors_inserted,
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "findings": [f.as_dict() for f in self.findings],
        }


class QuarantineSet:
    """Transaction-time ranges whose reconstructions are untrusted.

    Keyed by ``(object_kind, gid)``; each entry holds one or more
    ``(tt_start, tt_end)`` ranges.  ``fetch_versions`` refuses (or
    degrades) any temporal read whose condition overlaps a quarantined
    range, because reconstruction replays *through* damaged records:
    a corrupt delta at ``(s, e)`` taints every version older than
    ``e``, so the blast radius of most findings is ``(0, e)``.
    """

    def __init__(self) -> None:
        self._ranges: dict[tuple[str, int], list[tuple[int, int]]] = {}
        self._lock = threading.Lock()

    def add(self, object_kind: str, gid: int, tt_start: int, tt_end: int) -> None:
        with self._lock:
            ranges = self._ranges.setdefault((object_kind, gid), [])
            if (tt_start, tt_end) not in ranges:
                ranges.append((tt_start, tt_end))

    def blocks(self, object_kind: str, gid: int, t1: int, t2: int) -> bool:
        """Whether a read over ``[t1, t2]`` touches a quarantined range.

        A version with interval inside a quarantined ``(qs, qe)`` can
        only be surfaced when the condition admits versions ending at
        or before ``qe`` — i.e. when ``t1 < qe`` — and beginning at or
        after ``qs`` — i.e. when ``t2 >= qs``.
        """
        with self._lock:
            ranges = self._ranges.get((object_kind, gid))
            if not ranges:
                return False
            return any(t1 < qe and t2 >= qs for qs, qe in ranges)

    def ranges(self, object_kind: str, gid: int) -> list[tuple[int, int]]:
        with self._lock:
            return list(self._ranges.get((object_kind, gid), ()))

    def clear_object(self, object_kind: str, gid: int) -> None:
        with self._lock:
            self._ranges.pop((object_kind, gid), None)

    def clear(self) -> None:
        with self._lock:
            self._ranges.clear()

    def count(self) -> int:
        """Number of objects with at least one quarantined range."""
        with self._lock:
            return len(self._ranges)

    def as_dict(self) -> dict[str, list[tuple[int, int]]]:
        with self._lock:
            return {
                f"{kind}:{gid}": list(ranges)
                for (kind, gid), ranges in self._ranges.items()
            }


@dataclass
class _Rec:
    """One raw history record as seen by the scrubber.

    ``payload`` is ``None`` when the value failed verification — the
    *key* intervals stay trustworthy (keys live in the sstable's
    CRC-protected region), which is what lets the interval battery run
    around a corrupt record without false gap findings.
    """

    key: bytes
    s: int
    e: int
    payload: Optional[dict]


def backward_content_diff(newer, older) -> dict[str, Any]:
    """Rebuild a merged backward content record from two full states.

    Applying the returned payload to ``newer`` (per
    :func:`~repro.core.reconstruct.apply_content_record`) must
    reproduce ``older`` — the defining property of a history delta,
    used by the scrubber to rewrite a corrupt delta when both
    neighbouring states are recoverable (the older from a companion
    anchor, the newer by replaying from above).
    """
    payload: dict[str, Any] = {}
    diff: dict[str, Any] = {}
    for name in newer.properties:
        if name not in older.properties:
            diff[name] = None
    for name, value in older.properties.items():
        if newer.properties.get(name) != value:
            diff[name] = value
    if diff:
        payload["p"] = diff
    if isinstance(newer, VertexView):
        added = sorted(older.labels - newer.labels)
        removed = sorted(newer.labels - older.labels)
        if added:
            payload["la"] = added
        if removed:
            payload["lr"] = removed
    else:
        payload["et"] = older.edge_type
        payload["f"] = older.from_gid
        payload["t"] = older.to_gid
    if newer.exists and not older.exists:
        payload["x"] = OLDER_MISSING
    elif older.exists and not newer.exists:
        payload["x"] = OLDER_EXISTS
    return payload


class Scrubber:
    """Budgeted, resumable verifier and self-healer for the history store.

    One instance per engine.  ``scrub()`` checks up to ``budget``
    objects per call — dirty objects (freshly migrated, reported via
    :meth:`note_migrated`) first, then a round-robin cursor over every
    known object, resuming where the previous pass stopped.
    ``scrub_full()`` ignores the budget and checks everything (the
    offline ``aeong verify`` path).

    With ``auto_repair`` enabled (the default online), error findings
    are quarantined, repaired, and re-verified in one pass; quarantine
    is lifted only when the re-verification comes back clean.
    """

    def __init__(
        self,
        history,
        storage=None,
        anchor_interval: Optional[int] = None,
        resilience=None,
        auto_repair: bool = True,
        budget: int = 64,
    ) -> None:
        self.history = history
        self.storage = storage
        self.anchor_interval = anchor_interval
        self.resilience = resilience
        self.auto_repair = auto_repair
        self.budget = budget
        # lifetime totals (scrub passes accumulate into these)
        self.passes = 0
        self.full_passes = 0
        self.gids_checked = 0
        self.records_checked = 0
        self.findings_total = 0
        self.errors_total = 0
        self.warnings_total = 0
        self.checksum_failures = 0
        self.repairs_applied = 0
        self.repairs_failed = 0
        self.records_dropped = 0
        self.anchors_inserted = 0
        self.cycles = {"vertex": 0, "edge": 0}
        self._cursor: dict[str, int] = {"vertex": -1, "edge": -1}
        self._dirty: dict[tuple[str, int], None] = {}
        self._lock = threading.Lock()  # dirty set + cursor
        self._scrub_lock = threading.Lock()  # serializes passes

    @property
    def _kv(self):
        return self.history.kv

    # -- pass scheduling -------------------------------------------------

    def note_migrated(self, object_kind: str, gid: int) -> None:
        """Mark an object freshly touched by ``Migrate()`` for priority
        scrubbing (called from the migrator after each epoch installs)."""
        with self._lock:
            self._dirty[(object_kind, gid)] = None

    def _next_targets(self, budget: int) -> list[tuple[str, int]]:
        targets: list[tuple[str, int]] = []
        with self._lock:
            while self._dirty and len(targets) < budget:
                key = next(iter(self._dirty))
                del self._dirty[key]
                targets.append(key)
            for kind in ("vertex", "edge"):
                if len(targets) >= budget:
                    break
                known = sorted(self.history.known_gids(kind))
                if not known:
                    continue
                pending = [g for g in known if g > self._cursor[kind]]
                take = pending[: budget - len(targets)]
                targets.extend((kind, g) for g in take)
                if take:
                    self._cursor[kind] = take[-1]
                if len(take) == len(pending):
                    # the cursor wrapped: one full cycle over this kind
                    self._cursor[kind] = -1
                    self.cycles[kind] += 1
        return targets

    def scrub(self, budget: Optional[int] = None) -> IntegrityReport:
        """One incremental pass over at most ``budget`` objects."""
        with self._scrub_lock:
            report = IntegrityReport()
            for object_kind, gid in self._next_targets(budget or self.budget):
                self._scrub_object(object_kind, gid, report)
            self.passes += 1
            self._absorb(report)
            return report

    def scrub_full(self) -> IntegrityReport:
        """Exhaustive pass over every known object (offline fsck)."""
        with self._scrub_lock:
            report = IntegrityReport()
            with self._lock:
                self._dirty.clear()
            for kind in ("vertex", "edge"):
                for gid in sorted(self.history.known_gids(kind)):
                    self._scrub_object(kind, gid, report)
            self.full_passes += 1
            self._absorb(report)
            return report

    def _absorb(self, report: IntegrityReport) -> None:
        self.gids_checked += report.gids_checked
        self.records_checked += report.records_checked
        self.findings_total += len(report.findings)
        self.errors_total += len(report.errors())
        self.warnings_total += len(report.warnings())
        self.checksum_failures += sum(
            1 for f in report.findings if f.code == "checksum-mismatch"
        )
        self.repairs_applied += report.repairs_applied
        self.repairs_failed += report.repairs_failed
        self.records_dropped += report.records_dropped
        self.anchors_inserted += report.anchors_inserted

    def metrics(self) -> dict[str, Any]:
        with self._lock:
            dirty_pending = len(self._dirty)
        return {
            "passes": self.passes,
            "full_passes": self.full_passes,
            "gids_checked": self.gids_checked,
            "records_checked": self.records_checked,
            "findings": self.findings_total,
            "errors": self.errors_total,
            "warnings": self.warnings_total,
            "checksum_failures": self.checksum_failures,
            "repairs_applied": self.repairs_applied,
            "repairs_failed": self.repairs_failed,
            "records_dropped": self.records_dropped,
            "anchors_inserted": self.anchors_inserted,
            "quarantined_objects": self.history.quarantine.count(),
            "dirty_pending": dirty_pending,
            "checksums_verified": self.history.checksums_verified,
            "legacy_records": self.history.legacy_records,
            "cycles": dict(self.cycles),
        }

    # -- one object: verify, quarantine, repair, re-verify ----------------

    def _scrub_object(
        self, object_kind: str, gid: int, report: IntegrityReport
    ) -> None:
        report.gids_checked += 1
        findings = self._verify_object(object_kind, gid, report)
        errors = [f for f in findings if f.severity == SEVERITY_ERROR]
        quarantine = self.history.quarantine
        repaired_clean = not errors
        if errors:
            for finding in errors:
                qs, qe = self._blast_radius(finding)
                quarantine.add(object_kind, gid, qs, qe)
            if self.auto_repair:
                self._repair_object(object_kind, gid, errors, report)
                recheck = self._verify_object(
                    object_kind, gid, IntegrityReport()
                )
                recheck_errors = [
                    f for f in recheck if f.severity == SEVERITY_ERROR
                ]
                if recheck_errors:
                    report.repairs_failed += 1
                    quarantine.clear_object(object_kind, gid)
                    for finding in recheck_errors:
                        qs, qe = self._blast_radius(finding)
                        quarantine.add(object_kind, gid, qs, qe)
                else:
                    quarantine.clear_object(object_kind, gid)
                    repaired_clean = True
        else:
            # a previously-quarantined object that now verifies clean
            # (e.g. repaired by an earlier pass) is released
            quarantine.clear_object(object_kind, gid)
        report.findings.extend(findings)
        spacing = [f for f in findings if f.code == "anchor-spacing"]
        if spacing and self.auto_repair and repaired_clean:
            inserted = self._insert_spacing_anchors(object_kind, gid)
            if inserted:
                report.anchors_inserted += inserted
                report.repairs_applied += 1
                for finding in spacing:
                    finding.repair = f"inserted {inserted} anchor(s)"

    @staticmethod
    def _blast_radius(finding: Finding) -> tuple[int, int]:
        """Quarantined TT range for one error finding.

        Reconstruction replays downward through every record, so damage
        at ``tt_end = e`` taints all versions older than ``e`` —
        quarantine ``(0, e)``.  A current-store overlap (or an
        undecodable key) undermines the whole chain: quarantine
        everything.
        """
        if finding.code in ("current-overlap", "bad-key"):
            return (0, MAX_TIMESTAMP)
        return (0, finding.tt_end)

    # -- verification ----------------------------------------------------

    @staticmethod
    def _content_segment(object_kind: str) -> bytes:
        return (
            history_keys.SEGMENT_VERTEX
            if object_kind == "vertex"
            else history_keys.SEGMENT_EDGE
        )

    def _current_record(self, object_kind: str, gid: int):
        if self.storage is None:
            return None
        if object_kind == "vertex":
            return self.storage.vertex_record(gid)
        return self.storage.edge_record(gid)

    def _load_stream(
        self,
        segment: bytes,
        kind: bytes,
        gid: int,
        object_kind: str,
        report: Optional[IntegrityReport] = None,
        findings: Optional[list[Finding]] = None,
    ) -> list[_Rec]:
        """Scan one object's records raw from the KV store.

        Bypasses the history store's caches on purpose: the scrubber
        must see what is actually stored, not what was decoded before
        the damage happened.  With ``report``/``findings`` given,
        checksum failures and undecodable keys become findings; without
        them this is the quiet loader the repair path uses.
        """
        records: list[_Rec] = []
        prefix = history_keys.object_prefix(segment, kind, gid)
        for key, value in self._kv.scan_prefix(prefix):
            try:
                decoded = history_keys.decode_key(key)
            except CorruptionError as exc:
                if findings is not None:
                    findings.append(
                        Finding(
                            "bad-key",
                            SEVERITY_ERROR,
                            object_kind,
                            gid,
                            segment.decode(),
                            kind.decode(),
                            0,
                            MAX_TIMESTAMP,
                            detail=str(exc),
                            key=key,
                        )
                    )
                continue
            if report is not None:
                report.records_checked += 1
            try:
                payload, checksummed = decode_record_payload(value)
            except IntegrityError as exc:
                if findings is not None:
                    findings.append(
                        Finding(
                            "checksum-mismatch",
                            SEVERITY_ERROR,
                            object_kind,
                            gid,
                            segment.decode(),
                            kind.decode(),
                            decoded.tt_start,
                            decoded.tt_end,
                            detail=str(exc),
                            key=key,
                        )
                    )
                records.append(_Rec(key, decoded.tt_start, decoded.tt_end, None))
                continue
            if report is not None:
                if checksummed:
                    report.checksums_verified += 1
                else:
                    report.legacy_records += 1
            records.append(_Rec(key, decoded.tt_start, decoded.tt_end, payload))
        return records

    def _verify_object(
        self, object_kind: str, gid: int, report: IntegrityReport
    ) -> list[Finding]:
        findings: list[Finding] = []
        segment = self._content_segment(object_kind)
        content = self._load_stream(
            segment, history_keys.KIND_DELTA, gid, object_kind, report, findings
        )
        anchors = self._load_stream(
            segment, history_keys.KIND_ANCHOR, gid, object_kind, report, findings
        )
        topology: list[_Rec] = []
        if object_kind == "vertex":
            topology = self._load_stream(
                history_keys.SEGMENT_TOPOLOGY,
                history_keys.KIND_DELTA,
                gid,
                object_kind,
                report,
                findings,
            )
        self._check_intervals(content, object_kind, gid, segment, findings)
        if topology:
            self._check_intervals(
                topology, object_kind, gid, history_keys.SEGMENT_TOPOLOGY, findings
            )
        # Anchors: their tt_end is always shared with a delta staged in
        # the same epoch (content-triggered anchors share the content
        # draft's end, topology-triggered ones the topology draft's),
        # and retention prunes both together — so an anchor end with no
        # matching delta end is an orphan from partial damage.
        delta_ends = {d.e for d in content} | {t.e for t in topology}
        clean_anchors: list[_Rec] = []
        for anchor in sorted(anchors, key=lambda r: (r.e, r.s)):
            if anchor.s >= anchor.e:
                findings.append(
                    Finding(
                        "tt-degenerate",
                        SEVERITY_ERROR,
                        object_kind,
                        gid,
                        segment.decode(),
                        "A",
                        anchor.s,
                        anchor.e,
                        detail=f"anchor interval [{anchor.s},{anchor.e}) is empty",
                        key=anchor.key,
                    )
                )
                continue
            if anchor.e not in delta_ends:
                findings.append(
                    Finding(
                        "anchor-orphaned",
                        SEVERITY_ERROR,
                        object_kind,
                        gid,
                        segment.decode(),
                        "A",
                        anchor.s,
                        anchor.e,
                        detail=(
                            f"anchor ends at {anchor.e} but no delta record "
                            "shares that end"
                        ),
                        key=anchor.key,
                    )
                )
                continue
            if anchor.payload is not None:
                clean_anchors.append(anchor)
        if self.anchor_interval:
            self._check_spacing(
                content, anchors, object_kind, gid, segment, findings
            )
        for a_old, a_new in zip(clean_anchors, clean_anchors[1:]):
            self._check_anchor_replay(
                object_kind, gid, a_old, a_new, content, segment, findings
            )
        record = self._current_record(object_kind, gid)
        if record is not None:
            base = oldest_unreclaimed_view(record)
            newest_end = max((d.e for d in content), default=None)
            if newest_end is not None and newest_end > base.tt_start:
                findings.append(
                    Finding(
                        "current-overlap",
                        SEVERITY_ERROR,
                        object_kind,
                        gid,
                        segment.decode(),
                        "D",
                        base.tt_start,
                        newest_end,
                        detail=(
                            f"newest reclaimed content version ends at "
                            f"{newest_end}, after the current store's oldest "
                            f"version begins at {base.tt_start}"
                        ),
                    )
                )
            elif clean_anchors and base.exists:
                self._check_base_replay(
                    object_kind,
                    gid,
                    clean_anchors[-1],
                    base,
                    content,
                    segment,
                    findings,
                )
        return findings

    def _check_intervals(
        self,
        records: list[_Rec],
        object_kind: str,
        gid: int,
        segment: bytes,
        findings: list[Finding],
    ) -> None:
        """Delta-stream battery: per-record sanity plus pairwise tiling.

        Uses *key* intervals of every record, including ones whose
        payload failed its checksum — keys sit in checksummed sstable
        regions, so the tiling check stays meaningful around rot.
        """
        chain: list[_Rec] = []
        for rec in sorted(records, key=lambda r: (r.e, r.s)):
            if rec.s >= rec.e:
                findings.append(
                    Finding(
                        "tt-degenerate",
                        SEVERITY_ERROR,
                        object_kind,
                        gid,
                        segment.decode(),
                        "D",
                        rec.s,
                        rec.e,
                        detail=f"record interval [{rec.s},{rec.e}) is empty",
                        key=rec.key,
                    )
                )
                continue
            chain.append(rec)
        for prev, rec in zip(chain, chain[1:]):
            if rec.s < prev.e:
                findings.append(
                    Finding(
                        "tt-overlap",
                        SEVERITY_ERROR,
                        object_kind,
                        gid,
                        segment.decode(),
                        "D",
                        rec.s,
                        prev.e,
                        detail=(
                            f"record [{rec.s},{rec.e}) overlaps its "
                            f"predecessor [{prev.s},{prev.e})"
                        ),
                        key=rec.key,
                    )
                )
            elif rec.s > prev.e:
                findings.append(
                    Finding(
                        "tt-gap",
                        SEVERITY_ERROR,
                        object_kind,
                        gid,
                        segment.decode(),
                        "D",
                        prev.e,
                        rec.s,
                        detail=(
                            f"gap between [{prev.s},{prev.e}) and "
                            f"[{rec.s},{rec.e}): versions in between are "
                            "unreachable"
                        ),
                        key=rec.key,
                    )
                )

    def _check_spacing(
        self,
        content: list[_Rec],
        anchors: list[_Rec],
        object_kind: str,
        gid: int,
        segment: bytes,
        findings: list[Finding],
    ) -> None:
        """Anchor cadence (section 3.2): reconstruction cost is bounded
        by the number of deltas between a target version and the
        nearest anchor *above* it, which the policy keeps at ``u``.

        An anchor with start ``s`` serves every target at or above
        ``s`` via at most the deltas ending in ``(target, s]``, so the
        run of content deltas past the last anchor start must not
        exceed ``u``.  A violation is a warning — reads stay correct,
        only slower — and is healed by inserting synthetic anchors.
        """
        interval = self.anchor_interval
        marks = sorted({a.s for a in anchors if a.s < a.e})
        run = 0
        index = 0
        for delta in sorted(content, key=lambda r: (r.e, r.s)):
            while index < len(marks) and marks[index] < delta.e:
                run = 0
                index += 1
            run += 1
            if run > interval:
                findings.append(
                    Finding(
                        "anchor-spacing",
                        SEVERITY_WARNING,
                        object_kind,
                        gid,
                        segment.decode(),
                        "D",
                        delta.s,
                        delta.e,
                        detail=(
                            f"{run} content deltas since the last anchor "
                            f"(policy interval u={interval})"
                        ),
                        key=delta.key,
                    )
                )
                run = 0

    def _anchor_view(self, object_kind: str, gid: int, anchor: _Rec):
        if object_kind == "vertex":
            return vertex_view_from_anchor(gid, anchor.payload, anchor.s, anchor.e)
        return edge_view_from_anchor(gid, anchor.payload, anchor.s, anchor.e)

    def _replay_range(
        self, content: list[_Rec], target_start: int, boundary: int
    ) -> Optional[list[_Rec]]:
        """Intact content deltas tiling ``(target_start, boundary]``.

        Returns ``None`` when the range cannot be replayed: a corrupt
        payload inside it, a tiling break, or misaligned ends — those
        are (or will be) separate findings; replay-based checks and
        repairs simply stand down.
        """
        rng = [
            d
            for d in content
            if target_start < d.e <= boundary and d.s < d.e
        ]
        rng.sort(key=lambda r: (r.e, r.s))
        if any(d.payload is None for d in rng):
            return None
        if rng:
            if rng[0].s != target_start or rng[-1].e != boundary:
                return None
            for prev, rec in zip(rng, rng[1:]):
                if rec.s != prev.e:
                    return None
        elif boundary != target_start:
            return None
        return rng

    def _check_anchor_replay(
        self,
        object_kind: str,
        gid: int,
        a_old: _Rec,
        a_new: _Rec,
        content: list[_Rec],
        segment: bytes,
        findings: list[Finding],
    ) -> None:
        """Replaying the deltas between two anchors from the newer one
        must reproduce the older one's full state (Algorithm 1 wrote
        both from the same live chain, so any disagreement is damage —
        attributed to the older anchor, which replay can rebuild)."""
        rng = self._replay_range(content, a_old.s, a_new.s)
        if rng is None:
            return
        view = self._anchor_view(object_kind, gid, a_new)
        for delta in reversed(rng):
            apply_content_record(view, delta.payload, delta.s, delta.e)
        if view.exists and anchor_payload_from_view(view) == a_old.payload:
            return
        findings.append(
            Finding(
                "anchor-replay-mismatch",
                SEVERITY_ERROR,
                object_kind,
                gid,
                segment.decode(),
                "A",
                a_old.s,
                a_old.e,
                detail=(
                    f"replay from anchor [{a_new.s},{a_new.e}) does not "
                    f"reproduce anchor [{a_old.s},{a_old.e})"
                ),
                key=a_old.key,
            )
        )

    def _check_base_replay(
        self,
        object_kind: str,
        gid: int,
        anchor: _Rec,
        base,
        content: list[_Rec],
        segment: bytes,
        findings: list[Finding],
    ) -> None:
        """Same replay invariant at the store seam: stepping the current
        store's oldest unreclaimed version down through the reclaimed
        deltas must land exactly on the newest anchor."""
        rng = self._replay_range(content, anchor.s, base.tt_start)
        if rng is None:
            return
        view = _copy_view(base)
        for delta in reversed(rng):
            apply_content_record(view, delta.payload, delta.s, delta.e)
        if view.exists and anchor_payload_from_view(view) == anchor.payload:
            return
        findings.append(
            Finding(
                "anchor-replay-mismatch",
                SEVERITY_ERROR,
                object_kind,
                gid,
                segment.decode(),
                "A",
                anchor.s,
                anchor.e,
                detail=(
                    "replay from the current store's oldest version does "
                    f"not reproduce anchor [{anchor.s},{anchor.e})"
                ),
                key=anchor.key,
            )
        )

    # -- repair ----------------------------------------------------------

    def _replay_down(
        self,
        object_kind: str,
        gid: int,
        target_start: int,
        exclude_anchor_key: Optional[bytes] = None,
    ):
        """Recompute the full content state starting at ``target_start``.

        Base selection mirrors ``FetchFromKV``: the lowest intact
        anchor at or above the target (excluding the one being
        rebuilt), else the current store's oldest unreclaimed version,
        else the blank above-all-history placeholder.  Returns ``None``
        when no intact, contiguous replay path exists.
        """
        segment = self._content_segment(object_kind)
        anchors = [
            a
            for a in self._load_stream(
                segment, history_keys.KIND_ANCHOR, gid, object_kind
            )
            if a.payload is not None and a.s < a.e and a.key != exclude_anchor_key
        ]
        content = self._load_stream(
            segment, history_keys.KIND_DELTA, gid, object_kind
        )
        base_view = None
        boundary = None
        candidates = [a for a in anchors if a.s >= target_start]
        if candidates:
            nearest = min(candidates, key=lambda a: (a.s, a.e))
            base_view = self._anchor_view(object_kind, gid, nearest)
            boundary = nearest.s
        else:
            record = self._current_record(object_kind, gid)
            if record is not None:
                base = oldest_unreclaimed_view(record)
                if base.exists:
                    base_view = _copy_view(base)
                    boundary = base.tt_start
            if base_view is None:
                if not content:
                    return None
                boundary = max(d.e for d in content)
                base_view = (
                    VertexView.blank(gid, boundary, MAX_TIMESTAMP)
                    if object_kind == "vertex"
                    else EdgeView.blank(gid, boundary, MAX_TIMESTAMP)
                )
        if boundary < target_start:
            return None
        rng = self._replay_range(content, target_start, boundary)
        if rng is None:
            return None
        for delta in reversed(rng):
            apply_content_record(base_view, delta.payload, delta.s, delta.e)
        return base_view

    def _repair_object(
        self,
        object_kind: str,
        gid: int,
        errors: list[Finding],
        report: IntegrityReport,
    ) -> None:
        """Heal one object's error findings, cheapest-first.

        Anchors are redundant (full states derivable by replay), so a
        damaged anchor is recomputed or dropped.  A corrupt delta is
        rewritten when both neighbouring states are recoverable —
        otherwise the chain is truncated below the damage, which has
        the same shape as a retention prune and therefore leaves a
        consistent store.  Each action is installed immediately so
        later repairs (anchor recompute after a delta rewrite) see it.
        """
        segment = self._content_segment(object_kind)
        truncate_at: Optional[int] = None
        # keys removed by earlier repair actions in this pass: findings
        # anchored on them (e.g. a tt-gap against a record the
        # current-overlap repair dropped) are already resolved
        removed: set[bytes] = set()

        def order(finding: Finding) -> int:
            priority = {
                "bad-key": 0,
                "anchor-orphaned": 1,
                "checksum-mismatch": 2,
                "anchor-replay-mismatch": 3,
                "current-overlap": 4,
                "tt-degenerate": 5,
                "tt-overlap": 5,
                "tt-gap": 5,
            }
            return priority.get(finding.code, 6)

        for finding in sorted(errors, key=order):
            code = finding.code
            if finding.key is not None and finding.key in removed:
                finding.repair = "resolved by an earlier repair"
                continue
            if code == "bad-key":
                if finding.key is not None:
                    self._delete_keys([finding.key])
                    removed.add(finding.key)
                    report.records_dropped += 1
                    report.repairs_applied += 1
                    finding.repair = "dropped undecodable key"
            elif code == "anchor-orphaned" or (
                code == "checksum-mismatch" and finding.kind == "A"
            ):
                self._delete_keys([finding.key])
                removed.add(finding.key)
                report.records_dropped += 1
                report.repairs_applied += 1
                finding.repair = "dropped anchor (derivable by replay)"
            elif code == "checksum-mismatch":
                if finding.segment == history_keys.SEGMENT_TOPOLOGY.decode():
                    truncate_at = max(truncate_at or 0, finding.tt_end)
                    finding.repair = "truncated below damage"
                    continue
                rewritten = self._rewrite_delta(object_kind, gid, finding)
                if rewritten:
                    report.repairs_applied += 1
                    finding.repair = "rewritten from anchor + replay"
                else:
                    truncate_at = max(truncate_at or 0, finding.tt_end)
                    finding.repair = "truncated below damage"
            elif code == "anchor-replay-mismatch":
                state = self._replay_down(
                    object_kind, gid, finding.tt_start,
                    exclude_anchor_key=finding.key,
                )
                if state is not None and state.exists:
                    batch = WriteBatch()
                    batch.put(
                        finding.key,
                        encode_record_payload(anchor_payload_from_view(state)),
                    )
                    self._kv.write(batch)
                    report.repairs_applied += 1
                    finding.repair = "re-anchored from delta replay"
                else:
                    self._delete_keys([finding.key])
                    removed.add(finding.key)
                    report.records_dropped += 1
                    report.repairs_applied += 1
                    finding.repair = "dropped anchor (replay unavailable)"
            elif code in ("tt-degenerate", "tt-overlap", "tt-gap"):
                truncate_at = max(truncate_at or 0, finding.tt_end)
                finding.repair = "truncated below damage"
            elif code == "current-overlap":
                doomed = self._drop_current_overlap(object_kind, gid)
                if doomed:
                    removed.update(doomed)
                    report.records_dropped += len(doomed)
                    report.repairs_applied += 1
                    finding.repair = (
                        f"dropped {len(doomed)} record(s) overlapping the "
                        "current store"
                    )
        if truncate_at is not None:
            dropped = self._truncate_below(object_kind, gid, truncate_at)
            report.records_dropped += dropped
            if dropped:
                report.repairs_applied += 1
        self.history.invalidate_caches()
        self._refresh_known(object_kind, gid)

    def _rewrite_delta(
        self, object_kind: str, gid: int, finding: Finding
    ) -> bool:
        """Rebuild one corrupt content delta in place.

        Needs both neighbouring states: the older comes from a
        companion anchor sharing the delta's interval (the anchor *is*
        the state this delta produces), the newer by replaying down
        from the next intact base.  Returns False when either is
        unavailable (caller truncates instead).
        """
        segment = self._content_segment(object_kind)
        anchors = self._load_stream(
            segment, history_keys.KIND_ANCHOR, gid, object_kind
        )
        companion = next(
            (
                a
                for a in anchors
                if a.payload is not None
                and a.e == finding.tt_end
                and a.s == finding.tt_start
            ),
            None,
        )
        if companion is None:
            return False
        newer = self._replay_down(object_kind, gid, finding.tt_end)
        if newer is None:
            return False
        older = self._anchor_view(object_kind, gid, companion)
        payload = backward_content_diff(newer, older)
        batch = WriteBatch()
        batch.put(finding.key, encode_record_payload(payload))
        self._kv.write(batch)
        return True

    def _drop_current_overlap(self, object_kind: str, gid: int) -> list[bytes]:
        """Remove reclaimed content records that claim transaction time
        the current store still owns (keeps topology records — their
        timeline may legitimately extend past the content seam — and
        anchors whose own interval starts at or before the seam).
        Returns the dropped keys."""
        record = self._current_record(object_kind, gid)
        if record is None:
            return []
        cut = oldest_unreclaimed_view(record).tt_start
        segment = self._content_segment(object_kind)
        doomed: list[bytes] = []
        for key, _value in self._kv.scan_prefix(
            history_keys.object_prefix(segment, history_keys.KIND_DELTA, gid)
        ):
            if history_keys.decode_key(key).tt_end > cut:
                doomed.append(key)
        for key, _value in self._kv.scan_prefix(
            history_keys.object_prefix(segment, history_keys.KIND_ANCHOR, gid)
        ):
            if history_keys.decode_key(key).tt_start > cut:
                doomed.append(key)
        self._delete_keys(doomed)
        return doomed

    def _truncate_below(
        self, object_kind: str, gid: int, threshold: int
    ) -> int:
        """Drop every record of the object ending at or before
        ``threshold`` — across content, topology, deltas and anchors,
        the same cut a retention prune makes, so the survivors form a
        complete (if shorter) history."""
        segments = (
            [history_keys.SEGMENT_VERTEX, history_keys.SEGMENT_TOPOLOGY]
            if object_kind == "vertex"
            else [history_keys.SEGMENT_EDGE]
        )
        doomed: list[bytes] = []
        for segment in segments:
            for kind in (history_keys.KIND_ANCHOR, history_keys.KIND_DELTA):
                prefix = history_keys.object_prefix(segment, kind, gid)
                for key, _value in self._kv.scan_prefix(prefix):
                    if history_keys.decode_key(key).tt_end <= threshold:
                        doomed.append(key)
        self._delete_keys(doomed)
        return len(doomed)

    def _delete_keys(self, doomed: list[bytes]) -> None:
        if not doomed:
            return
        batch = WriteBatch()
        for key in doomed:
            batch.delete(key)
        self._kv.write(batch)

    def _refresh_known(self, object_kind: str, gid: int) -> None:
        """Drop the object from the known-gid set if repairs emptied it."""
        segments = (
            [history_keys.SEGMENT_VERTEX, history_keys.SEGMENT_TOPOLOGY]
            if object_kind == "vertex"
            else [history_keys.SEGMENT_EDGE]
        )
        for segment in segments:
            for kind in (history_keys.KIND_ANCHOR, history_keys.KIND_DELTA):
                prefix = history_keys.object_prefix(segment, kind, gid)
                for _key, _value in self._kv.scan_prefix(prefix):
                    return
        # Route through the store so its memoized scan list and cached
        # reconstructions for the object are dropped with the gid.
        self.history.discard_known(object_kind, gid)

    def _insert_spacing_anchors(self, object_kind: str, gid: int) -> int:
        """Heal anchor-spacing warnings by inserting synthetic anchors.

        Walks the content stream with the same cadence the policy
        enforces; wherever a run exceeds ``u``, the state at that
        delta's interval is recomputed by replay and written as a
        regular anchor — indistinguishable from one Algorithm 1 staged.
        """
        interval = self.anchor_interval
        if not interval:
            return 0
        segment = self._content_segment(object_kind)
        content = self._load_stream(
            segment, history_keys.KIND_DELTA, gid, object_kind
        )
        anchors = self._load_stream(
            segment, history_keys.KIND_ANCHOR, gid, object_kind
        )
        existing = {a.key for a in anchors}
        marks = sorted({a.s for a in anchors if a.s < a.e})
        batch = WriteBatch()
        inserted = 0
        run = 0
        index = 0
        for delta in sorted(content, key=lambda r: (r.e, r.s)):
            if delta.s >= delta.e:
                continue
            while index < len(marks) and marks[index] < delta.e:
                run = 0
                index += 1
            run += 1
            # Insert at run == u — the cadence Algorithm 1 itself keeps
            # (an anchor every u-th record), which is strictly tighter
            # than the check's run > u warning threshold.  Inserting
            # only where the warning fired would leave anchors u+1
            # apart and the next pass warning again.
            if run >= interval:
                run = 0
                state = self._replay_down(object_kind, gid, delta.s)
                if state is None or not state.exists:
                    continue
                key = history_keys.encode_key(
                    segment, history_keys.KIND_ANCHOR, gid, delta.s, delta.e
                )
                if key in existing:
                    continue
                batch.put(
                    key, encode_record_payload(anchor_payload_from_view(state))
                )
                existing.add(key)
                inserted += 1
        if inserted:
            self._kv.write(batch)
            self.history.invalidate_caches()
        return inserted
