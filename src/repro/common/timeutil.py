"""Logical-timestamp helpers.

AeonG's transaction time is the engine-assigned commit timestamp, a
monotone logical integer.  Workloads carry wall-clock event times, so we
provide a fixed, lossless mapping between :class:`datetime.datetime`
and logical microsecond counts.  All engine-internal comparisons happen
on the integer form.
"""

from __future__ import annotations

from datetime import datetime, timezone

#: Smallest usable timestamp (the beginning of history).
MIN_TIMESTAMP = 0

#: Sentinel for "still current": an interval end of ``MAX_TIMESTAMP``
#: means the version has not been superseded (the paper writes TT.ed=∞).
MAX_TIMESTAMP = 2**63 - 1

_EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)


def datetime_to_ts(moment: datetime) -> int:
    """Map a datetime to a logical timestamp (microseconds since epoch).

    Naive datetimes are interpreted as UTC, which keeps workload
    generators deterministic regardless of host timezone.
    """
    if moment.tzinfo is None:
        moment = moment.replace(tzinfo=timezone.utc)
    delta = moment - _EPOCH
    return int(delta.total_seconds()) * 1_000_000 + delta.microseconds


def ts_to_datetime(ts: int) -> datetime:
    """Inverse of :func:`datetime_to_ts` (always returns UTC)."""
    if ts == MAX_TIMESTAMP:
        raise ValueError("MAX_TIMESTAMP is a sentinel, not a real instant")
    seconds, micros = divmod(ts, 1_000_000)
    return datetime.fromtimestamp(seconds, tz=timezone.utc).replace(
        microsecond=micros
    )
