"""Compact binary serialization for property values and diffs.

The history store (the RocksDB stand-in) stores *bytes*; the paper's
storage-overhead experiments (Figures 5a, 6a, 6c) compare systems by the
size of what they persist.  To keep that comparison honest we encode
every value with the same compact, self-describing binary format instead
of, say, ``repr`` or ``pickle`` whose sizes would be arbitrary.

Wire format: one type tag byte followed by a payload.

=========  ==========================================================
tag        payload
=========  ==========================================================
``N``      none (empty payload)
``T``      true (empty payload)
``F``      false (empty payload)
``i``      varint-encoded zig-zag integer
``d``      8-byte IEEE-754 double, big-endian
``s``      varint length + UTF-8 bytes
``b``      varint length + raw bytes
``l``      varint count + encoded elements
``m``      varint count + alternating encoded keys and values
=========  ==========================================================

Varints use the LEB128 scheme (7 data bits per byte, high bit =
continuation); integers are zig-zag mapped so small negative numbers
stay small on the wire.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import CorruptionError

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"d"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_MAP = b"m"

_DOUBLE = struct.Struct(">d")


def _encode_varint(value: int, out: bytearray) -> None:
    if value < 0:
        raise ValueError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptionError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _wide_zigzag(value: int) -> int:
    # Python ints are unbounded; generalize zig-zag without a fixed width.
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return value >> 1 if not value & 1 else -((value + 1) >> 1)


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        out += _TAG_INT
        _encode_varint(_wide_zigzag(value), out)
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += _DOUBLE.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR
        _encode_varint(len(raw), out)
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES
        _encode_varint(len(value), out)
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        _encode_varint(len(value), out)
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out += _TAG_MAP
        _encode_varint(len(value), out)
        for key, item in value.items():
            _encode_into(key, out)
            _encode_into(item, out)
    else:
        raise TypeError(f"unsupported property value type: {type(value)!r}")


def _decode_from(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise CorruptionError("truncated value")
    tag = data[pos:pos + 1]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        raw, pos = _decode_varint(data, pos)
        return _unzigzag(raw), pos
    if tag == _TAG_FLOAT:
        if pos + 8 > len(data):
            raise CorruptionError("truncated double")
        return _DOUBLE.unpack_from(data, pos)[0], pos + 8
    if tag == _TAG_STR:
        length, pos = _decode_varint(data, pos)
        if pos + length > len(data):
            raise CorruptionError("truncated string")
        return data[pos:pos + length].decode("utf-8"), pos + length
    if tag == _TAG_BYTES:
        length, pos = _decode_varint(data, pos)
        if pos + length > len(data):
            raise CorruptionError("truncated bytes")
        return bytes(data[pos:pos + length]), pos + length
    if tag == _TAG_LIST:
        count, pos = _decode_varint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos)
            items.append(item)
        return items, pos
    if tag == _TAG_MAP:
        count, pos = _decode_varint(data, pos)
        mapping = {}
        for _ in range(count):
            key, pos = _decode_from(data, pos)
            item, pos = _decode_from(data, pos)
            mapping[key] = item
        return mapping, pos
    raise CorruptionError(f"unknown type tag {tag!r}")


def encode_value(value: Any) -> bytes:
    """Encode a single property value to its wire representation."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def decode_value(data: bytes) -> Any:
    """Decode a value produced by :func:`encode_value`.

    Raises :class:`~repro.errors.CorruptionError` on malformed input or
    trailing garbage.
    """
    value, pos = _decode_from(data, 0)
    if pos != len(data):
        raise CorruptionError(f"{len(data) - pos} trailing bytes after value")
    return value


def encode_mapping(mapping: dict[str, Any]) -> bytes:
    """Encode a property map; identical to ``encode_value(dict)``."""
    return encode_value(mapping)


def decode_mapping(data: bytes) -> dict[str, Any]:
    """Decode a property map and verify it actually is a mapping."""
    value = decode_value(data)
    if not isinstance(value, dict):
        raise CorruptionError("expected a mapping")
    return value


def encoded_size(value: Any) -> int:
    """Size in bytes that ``value`` occupies on the wire.

    Used by the storage-accounting layer to model in-memory graph
    objects with the same metric as persisted KV records.
    """
    return len(encode_value(value))
