"""Shared low-level utilities: id allocation, serialization, time helpers."""

from repro.common.ids import GidAllocator, VERTEX_NAMESPACE, EDGE_NAMESPACE
from repro.common.serde import (
    encode_value,
    decode_value,
    encode_mapping,
    decode_mapping,
    encoded_size,
)
from repro.common.timeutil import (
    MIN_TIMESTAMP,
    MAX_TIMESTAMP,
    datetime_to_ts,
    ts_to_datetime,
)

__all__ = [
    "GidAllocator",
    "VERTEX_NAMESPACE",
    "EDGE_NAMESPACE",
    "encode_value",
    "decode_value",
    "encode_mapping",
    "decode_mapping",
    "encoded_size",
    "MIN_TIMESTAMP",
    "MAX_TIMESTAMP",
    "datetime_to_ts",
    "ts_to_datetime",
]
