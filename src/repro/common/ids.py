"""Graph identifier (gid) allocation.

Memgraph assigns each vertex and edge a unique 64-bit identifier; AeonG
keys its history store on that identifier.  We reproduce the scheme with
one monotone counter per namespace so vertex and edge gids never collide
even though they live in separate maps (the history store distinguishes
them by key prefix anyway, but unique gids make debugging and the ``VE``
topology segment unambiguous).
"""

from __future__ import annotations

import itertools
import threading

#: Namespace tags; they only matter for reading debug output.
VERTEX_NAMESPACE = "vertex"
EDGE_NAMESPACE = "edge"


class GidAllocator:
    """Thread-safe monotone allocator for graph identifiers.

    One allocator instance is owned by each :class:`~repro.graph.storage.
    GraphStorage`; ids start at 0 and never repeat for the lifetime of
    the storage, including across deletes (a reused gid would corrupt
    the history store, whose keys embed the gid).
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)
        self._lock = threading.Lock()
        self._last = start - 1

    def allocate(self) -> int:
        """Return the next unused gid."""
        with self._lock:
            self._last = next(self._counter)
            return self._last

    @property
    def last_allocated(self) -> int:
        """The most recently handed-out gid (or ``start - 1`` if none)."""
        return self._last

    def allocate_up_to(self, next_gid: int) -> None:
        """Ensure future gids are at least ``next_gid`` (recovery)."""
        with self._lock:
            if next_gid > self._last + 1:
                self._counter = itertools.count(next_gid)
                self._last = next_gid - 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GidAllocator(last={self._last})"
