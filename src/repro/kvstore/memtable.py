"""Skiplist-backed memtable: the mutable, sorted head of the LSM tree.

A skiplist gives O(log n) expected insert/lookup plus in-order
traversal and ``seek`` without any rebalancing — the same structure
RocksDB and Memgraph use for their in-memory sorted runs.  The random
level generator is seeded per-memtable so behaviour is deterministic
under a fixed seed (useful for reproducible benchmarks).
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

_MAX_LEVEL = 16
_P = 0.5


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Optional[bytes], value: Optional[bytes], level: int):
        self.key = key
        self.value = value
        self.forward: list[Optional[_Node]] = [None] * level


class MemTable:
    """Sorted mutable map from ``bytes`` keys to values or tombstones.

    ``value is None`` encodes a tombstone; the memtable itself does not
    interpret tombstones, it just keeps the latest write per key.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._rng = random.Random(seed)
        self._count = 0
        self._bytes = 0

    def __len__(self) -> int:
        return self._count

    @property
    def approximate_bytes(self) -> int:
        """Sum of key and value lengths currently held (tombstones count
        their key only)."""
        return self._bytes

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find_predecessors(self, key: bytes) -> list[_Node]:
        update: list[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[lvl]
            update[lvl] = node
        return update

    def put(self, key: bytes, value: Optional[bytes]) -> None:
        """Insert or overwrite ``key``; ``None`` stores a tombstone."""
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            old = candidate.value
            self._bytes -= len(old) if old is not None else 0
            self._bytes += len(value) if value is not None else 0
            candidate.value = value
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for lvl in range(level):
            node.forward[lvl] = update[lvl].forward[lvl]
            update[lvl].forward[lvl] = node
        self._count += 1
        self._bytes += len(key) + (len(value) if value is not None else 0)

    def put_many(self, items) -> None:
        """Insert a whole batch in one sorted pass over the skiplist.

        ``items`` is an iterable of ``(key, value)`` pairs (``None``
        values store tombstones).  The batch is sorted and inserted
        with a *rolling* predecessor vector: each key's search resumes
        from the previous key's predecessors instead of restarting at
        the head, so an epoch-sized batch costs one forward walk of
        the list plus O(log n) per level-crossing — the bulk-insert
        path ``KVStore.write`` uses for a GC epoch's ``commit_batch``.
        """
        ordered = sorted(items, key=lambda kv: kv[0])
        if not ordered:
            return
        update: list[_Node] = [self._head] * _MAX_LEVEL
        for key, value in ordered:
            node = self._head
            for lvl in range(self._level - 1, -1, -1):
                prev = update[lvl]
                # Resume from whichever is further along: the node
                # carried down from the level above, or this level's
                # predecessor from the previous key.  Both precede
                # ``key`` (keys only grow), so the max is safe.
                if prev.key is not None and (
                    node.key is None or prev.key > node.key
                ):
                    node = prev
                nxt = node.forward[lvl]
                while nxt is not None and nxt.key < key:
                    node = nxt
                    nxt = node.forward[lvl]
                update[lvl] = node
            candidate = update[0].forward[0]
            if candidate is not None and candidate.key == key:
                old = candidate.value
                self._bytes -= len(old) if old is not None else 0
                self._bytes += len(value) if value is not None else 0
                candidate.value = value
                continue
            level = self._random_level()
            if level > self._level:
                self._level = level
            new_node = _Node(key, value, level)
            for lvl in range(level):
                new_node.forward[lvl] = update[lvl].forward[lvl]
                update[lvl].forward[lvl] = new_node
            self._count += 1
            self._bytes += len(key) + (
                len(value) if value is not None else 0
            )

    def get(self, key: bytes) -> tuple[bool, Optional[bytes]]:
        """Return ``(found, value)``; a found tombstone is ``(True, None)``."""
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[lvl]
        node = node.forward[0]
        if node is not None and node.key == key:
            return True, node.value
        return False, None

    def seek(self, key: bytes) -> Iterator[tuple[bytes, Optional[bytes]]]:
        """Yield entries with key >= ``key`` in ascending key order."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def __iter__(self) -> Iterator[tuple[bytes, Optional[bytes]]]:
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]
