"""Bloom filters for SSTable point lookups.

A RocksDB staple: each immutable run keeps a small bit array so a
``get`` for an absent key usually skips the run without a binary
search.  No false negatives, tunable false-positive rate.

Double hashing (Kirsch–Mitzenmacher): two 64-bit halves of a BLAKE2b
digest generate the k probe positions — deterministic across processes
so the filter can be persisted alongside the table.
"""

from __future__ import annotations

import hashlib
import math
import struct

from repro.errors import CorruptionError

_HEADER = struct.Struct(">IIQ")  # bit count, hash count, item count


def _hash_pair(key: bytes) -> tuple[int, int]:
    digest = hashlib.blake2b(key, digest_size=16).digest()
    h1, h2 = struct.unpack(">QQ", digest)
    return h1, h2 | 1  # odd step so probes cycle through all bits


class BloomFilter:
    """A fixed-size Bloom filter over byte-string keys."""

    def __init__(self, capacity: int, fp_rate: float = 0.01) -> None:
        if capacity < 1:
            capacity = 1
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        bits = max(8, int(-capacity * math.log(fp_rate) / (math.log(2) ** 2)))
        self._bits = bits
        self._hashes = max(1, round(bits / capacity * math.log(2)))
        self._array = bytearray((bits + 7) // 8)
        self._count = 0

    @property
    def bit_count(self) -> int:
        return self._bits

    @property
    def hash_count(self) -> int:
        return self._hashes

    def __len__(self) -> int:
        return self._count

    def add(self, key: bytes) -> None:
        h1, h2 = _hash_pair(bytes(key))
        for i in range(self._hashes):
            position = (h1 + i * h2) % self._bits
            self._array[position >> 3] |= 1 << (position & 7)
        self._count += 1

    def might_contain(self, key: bytes) -> bool:
        """False means definitely absent; True means probably present."""
        h1, h2 = _hash_pair(bytes(key))
        for i in range(self._hashes):
            position = (h1 + i * h2) % self._bits
            if not self._array[position >> 3] & (1 << (position & 7)):
                return False
        return True

    @property
    def approximate_bytes(self) -> int:
        return len(self._array) + _HEADER.size

    # -- persistence -------------------------------------------------------

    def encode(self) -> bytes:
        return _HEADER.pack(self._bits, self._hashes, self._count) + bytes(
            self._array
        )

    @classmethod
    def decode(cls, data: bytes) -> "BloomFilter":
        if len(data) < _HEADER.size:
            raise CorruptionError("bloom filter shorter than header")
        bits, hashes, count = _HEADER.unpack_from(data)
        array = data[_HEADER.size:]
        if len(array) != (bits + 7) // 8:
            raise CorruptionError("bloom filter bit-array length mismatch")
        instance = object.__new__(cls)
        instance._bits = bits
        instance._hashes = hashes
        instance._array = bytearray(array)
        instance._count = count
        return instance
