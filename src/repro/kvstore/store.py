"""The key-value store facade: LSM memtable + immutable runs.

Provides the RocksDB operations AeonG's historical store depends on:

``put/get/delete``
    point operations;
``write``
    atomic batch install (used by ``Migrate()``);
``seek / scan_prefix``
    ordered iteration from an arbitrary key, the workhorse behind
    anchor seeks and version-chain scans;
``approximate_bytes``
    byte-accurate size of everything held, for the storage benchmarks;
``flush / compact``
    LSM maintenance;
``save / load``
    whole-store persistence to a directory (sstables + manifest).

Thread safety: all public methods take the store lock, which is enough
for the migration thread and query threads to interleave (the paper's
late-migration strategy writes from the GC thread while queries read).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Iterator, Optional

from repro.errors import KVStoreError
from repro.faults import FAILPOINTS, DEFAULT_IO, StorageIO
from repro.kvstore.api import StoreStats, WriteBatch, _check_key
from repro.kvstore.iterator import bounded, merge_runs
from repro.kvstore.memtable import MemTable
from repro.kvstore.sstable import SSTable
from repro.kvstore.wal import WalScan, WriteAheadLog
from repro.observability import NULL_SPAN

_DEFAULT_MEMTABLE_LIMIT = 4 * 1024 * 1024  # bytes, like a small RocksDB

FAILPOINTS.register(
    "kv.flush", "kv.compact", "kv.save.sst", "kv.save.manifest"
)


def _maybe_span(tracer, name: str):
    """A tracer span when one is attached, else the shared no-op."""
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name)


class KVStore:
    """Ordered key-value store with LSM internals.

    Parameters
    ----------
    memtable_limit_bytes:
        Flush threshold for the mutable memtable.
    max_runs:
        When the number of immutable runs exceeds this, a full
        compaction merges them into one.
    wal_path:
        If given, every write is journaled there and can be recovered
        with :meth:`recover`.
    seed:
        Seed for the memtable skiplists (determinism in benchmarks).
    durability_mode:
        ``"fsync"`` syncs every WAL append to the device; ``"flush"``
        (default) stops at the OS buffer.
    """

    def __init__(
        self,
        memtable_limit_bytes: int = _DEFAULT_MEMTABLE_LIMIT,
        max_runs: int = 8,
        wal_path: Optional[Path] = None,
        seed: Optional[int] = 0,
        durability_mode: str = "flush",
    ) -> None:
        if memtable_limit_bytes <= 0:
            raise ValueError("memtable_limit_bytes must be positive")
        if max_runs < 1:
            raise ValueError("max_runs must be at least 1")
        self._memtable_limit = memtable_limit_bytes
        self._max_runs = max_runs
        self._seed = seed
        self._memtable = MemTable(seed=seed)
        self._runs: list[SSTable] = []  # newest first
        self._lock = threading.RLock()
        self._io = StorageIO(durability_mode)
        self._wal = (
            WriteAheadLog(wal_path, storage_io=self._io)
            if wal_path is not None
            else None
        )
        self.stats = StoreStats()
        self.last_recovery_scan: Optional[WalScan] = None
        #: the owning engine's Tracer (or None): brackets flush and
        #: compaction with ``kv.*`` spans (see repro.observability)
        self.tracer = None

    # -- write path -----------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite one key."""
        _check_key(key)
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("value must be bytes")
        with self._lock:
            if self._wal is not None:
                self._wal.append([(bytes(key), bytes(value))])
            self._memtable.put(bytes(key), bytes(value))
            self.stats.puts += 1
            self._maybe_flush()

    def delete(self, key: bytes) -> None:
        """Remove a key (writes a tombstone)."""
        _check_key(key)
        with self._lock:
            if self._wal is not None:
                self._wal.append([(bytes(key), None)])
            self._memtable.put(bytes(key), None)
            self.stats.deletes += 1
            self._maybe_flush()

    def write(self, batch: WriteBatch) -> None:
        """Apply a whole batch atomically.

        One WAL append for the batch, then one sorted insertion pass
        over the memtable (:meth:`MemTable.put_many`) instead of a
        full-height skiplist descent per key — the write-batching half
        of the group-commit work: a GC epoch's ``commit_batch`` costs
        one pass however many records it staged.
        """
        with self._lock:
            ops = list(batch.items())
            if self._wal is not None and ops:
                self._wal.append(ops)
            self._memtable.put_many(ops)
            for _key, value in ops:
                if value is None:
                    self.stats.deletes += 1
                else:
                    self.stats.puts += 1
            self.stats.batch_writes += 1
            self._maybe_flush()

    # -- read path ------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the newest value for ``key`` or ``None``."""
        _check_key(key)
        with self._lock:
            self.stats.gets += 1
            found, value = self._memtable.get(bytes(key))
            if found:
                return value
            for run in self._runs:
                found, value = run.get(bytes(key))
                if found:
                    return value
            return None

    def seek(self, key: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate live entries with key >= ``key`` in ascending order.

        The iterator works over a point-in-time view of the runs taken
        at call time (writes arriving later may or may not be seen,
        matching RocksDB iterator semantics without an explicit
        snapshot pin).
        """
        with self._lock:
            self.stats.seeks += 1
            single = not self._runs
            if single:
                source = self._memtable.seek(bytes(key))
            else:
                runs = [self._memtable.seek(bytes(key))] + [
                    run.seek(bytes(key)) for run in self._runs
                ]
        if single:
            # Fast path: everything lives in the memtable, no merge
            # needed — just drop tombstones.
            for pair_key, value in source:
                if value is not None:
                    yield pair_key, value
            return
        for pair_key, value in merge_runs(runs):
            yield pair_key, value  # value is not None: tombstones dropped

    def scan_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Iterate live entries whose key starts with ``prefix``."""
        with self._lock:
            self.stats.seeks += 1
            runs = [self._memtable.seek(bytes(prefix))] + [
                run.seek(bytes(prefix)) for run in self._runs
            ]
        yield from bounded(merge_runs(runs), bytes(prefix))

    def scan_range(
        self, start: bytes, stop: bytes
    ) -> Iterator[tuple[bytes, bytes]]:
        """Iterate live entries with ``start <= key < stop``.

        One seek serves the whole range: SSTable runs position both
        bounds by binary search, so a batched reader (e.g. the history
        store preloading every candidate edge of an expand) pays one
        merge instead of one seek per object.
        """
        with self._lock:
            self.stats.seeks += 1
            self.stats.range_scans += 1
            runs = [self._memtable.seek(bytes(start))] + [
                run.seek_range(bytes(start), bytes(stop))
                for run in self._runs
            ]
        for key, value in merge_runs(runs):
            if key >= stop:
                return
            yield key, value

    def scan_all(self) -> Iterator[tuple[bytes, bytes]]:
        """Iterate every live entry in key order."""
        return self.seek(b"\x00")

    def __len__(self) -> int:
        """Number of live keys (requires a full merge; test helper)."""
        return sum(1 for _ in self.scan_all())

    # -- size accounting --------------------------------------------------

    def approximate_bytes(self) -> int:
        """Bytes held across the memtable and all runs.

        Runs that have not been compacted may double-count superseded
        versions, exactly as physical space in an LSM tree does; call
        :meth:`compact` first for a post-compaction figure.
        """
        with self._lock:
            total = self._memtable.approximate_bytes
            total += sum(run.approximate_bytes for run in self._runs)
            return total

    def compacted_bytes(self) -> int:
        """Bytes after a full compaction (steady-state disk footprint)."""
        with self._lock:
            self.compact()
            return self.approximate_bytes()

    # -- maintenance ------------------------------------------------------

    def flush(self) -> None:
        """Freeze the memtable into an immutable run.

        The WAL is deliberately *not* truncated here: runs live in
        memory, so journaled writes stay replayable until :meth:`save`
        has made them durable (truncating at flush time was a crash
        window that silently lost every flushed-but-unsaved write).
        """
        with self._lock:
            if len(self._memtable) == 0:
                return
            with _maybe_span(self.tracer, "kv.flush"):
                FAILPOINTS.check("kv.flush")
                self._runs.insert(0, SSTable.from_memtable(self._memtable))
                self._memtable = MemTable(seed=self._seed)
                self.stats.flushes += 1

    def _maybe_flush(self) -> None:
        if self._memtable.approximate_bytes >= self._memtable_limit:
            self.flush()
            if len(self._runs) > self._max_runs:
                # Bounded maintenance: fold the oldest half of the runs
                # instead of rewriting everything (full compaction is
                # still available explicitly via compact()).
                self.compact_tail(len(self._runs) // 2 + 1)

    def compact_tail(self, count: int) -> None:
        """Merge the ``count`` *oldest* runs into one.

        Keeps write amplification bounded: newer runs are untouched.
        Tombstones in the merged tail shadow nothing older (there is
        nothing below the tail), so they are dropped — the reclamation
        a full compaction would do, limited to the cold end.
        """
        with self._lock:
            count = min(count, len(self._runs))
            if count < 2:
                return
            tail = self._runs[-count:]
            merged = list(
                merge_runs([iter(run) for run in tail], keep_tombstones=False)
            )
            self._runs = self._runs[:-count] + (
                [SSTable(merged)] if merged else []
            )
            self.stats.compactions += 1

    def compact(self) -> None:
        """Merge every run (and the memtable) into one, dropping
        tombstones and superseded versions."""
        with self._lock:
            if len(self._memtable) == 0 and len(self._runs) <= 1:
                return
            with _maybe_span(self.tracer, "kv.compact"):
                FAILPOINTS.check("kv.compact")
                runs = [iter(self._memtable)] + [
                    iter(run) for run in self._runs
                ]
                merged = list(merge_runs(runs, keep_tombstones=False))
                self._memtable = MemTable(seed=self._seed)
                self._runs = [SSTable(merged)] if merged else []
                self.stats.compactions += 1

    # -- persistence ------------------------------------------------------

    def save(
        self, directory: Path, storage_io: Optional[StorageIO] = None
    ) -> None:
        """Persist a compacted copy of the store to ``directory``.

        Every file is written atomically (temp + rename, fsync'd in
        ``fsync`` mode) and the manifest goes last, so a directory with
        a readable ``MANIFEST.json`` always names complete sstables; a
        crash mid-save leaves no manifest and the directory is ignored.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        io = storage_io if storage_io is not None else self._io
        with self._lock:
            self.compact()
            names = []
            for index, run in enumerate(self._runs):
                name = f"run-{index:06d}.sst"
                io.write_file(directory / name, run.encode(), "kv.save.sst")
                names.append(name)
            manifest = {"format": 1, "runs": names}
            io.write_file(
                directory / "MANIFEST.json",
                json.dumps(manifest).encode("utf-8"),
                "kv.save.manifest",
            )

    @classmethod
    def load(cls, directory: Path, **kwargs) -> "KVStore":
        """Open a store previously written by :meth:`save`."""
        directory = Path(directory)
        manifest_path = directory / "MANIFEST.json"
        if not manifest_path.exists():
            raise KVStoreError(f"no manifest in {directory}")
        manifest = json.loads(manifest_path.read_text())
        store = cls(**kwargs)
        for name in manifest["runs"]:
            data = (directory / name).read_bytes()
            store._runs.append(SSTable.decode(data))
        return store

    def recover(self, strict: bool = False) -> int:
        """Replay the WAL into the memtable; returns replayed op count.

        Called on a fresh store whose ``wal_path`` points at a log left
        by a crashed predecessor.  A torn tail is discarded and the log
        is repaired (crash-safely truncated to the valid prefix) so new
        appends never land behind garbage; the scan details land in
        :attr:`last_recovery_scan`.  With ``strict=True``, interior
        corruption raises :class:`~repro.errors.CorruptionError`.
        """
        if self._wal is None:
            raise KVStoreError("store has no WAL to recover from")
        count = 0
        with self._lock:
            scan = self._wal.scan(strict=strict)
            for ops in scan.batches:
                for key, value in ops:
                    self._memtable.put(key, value)
                    count += 1
            self._wal.repair()
            self.last_recovery_scan = scan
        return count

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
