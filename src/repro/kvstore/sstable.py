"""Immutable sorted runs (SSTables).

A flushed memtable becomes an :class:`SSTable`: a sorted array of
entries plus a sparse index for binary search.  Tables can be encoded
to bytes (with a checksummed footer) for on-disk persistence and
decoded back, so the store survives a save/load round trip.

Encoding::

    [entry]*  sparse-index  footer

    entry  := varint(klen) key varint(flag) [varint(vlen) value]
              flag 0 = value follows, flag 1 = tombstone
    footer := u32 entry_count | u32 payload_crc32 | 8-byte magic
"""

from __future__ import annotations

import bisect
import struct
import zlib
from typing import Iterator, Optional

from repro.errors import CorruptionError
from repro.faults import FAILPOINTS, MODE_CORRUPT, corrupt_bytes
from repro.kvstore.bloom import BloomFilter

_MAGIC = b"REPROSST"
_FOOTER = struct.Struct(">III8s")  # entries, payload crc, bloom length, magic

FAILPOINTS.register("kv.sstable.encode", "kv.sstable.decode")


def _write_varint(value: int, out: bytearray) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptionError("truncated varint in sstable")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


class SSTable:
    """An immutable, sorted sequence of key/value-or-tombstone entries."""

    def __init__(self, entries: list[tuple[bytes, Optional[bytes]]]) -> None:
        keys = [key for key, _ in entries]
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise ValueError("sstable entries must be strictly sorted by key")
        self._keys = keys
        self._values = [value for _, value in entries]
        self._bytes = sum(
            len(key) + (len(value) if value is not None else 0)
            for key, value in entries
        )
        self._bloom = BloomFilter(max(1, len(keys)))
        for key in keys:
            self._bloom.add(key)

    @classmethod
    def from_memtable(cls, memtable) -> "SSTable":
        """Freeze a memtable (tombstones included) into a sorted run."""
        return cls(list(memtable))

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def approximate_bytes(self) -> int:
        return self._bytes

    @property
    def smallest_key(self) -> Optional[bytes]:
        return self._keys[0] if self._keys else None

    @property
    def largest_key(self) -> Optional[bytes]:
        return self._keys[-1] if self._keys else None

    def get(self, key: bytes) -> tuple[bool, Optional[bytes]]:
        """Return ``(found, value)``; found tombstone is ``(True, None)``."""
        if not self._bloom.might_contain(key):
            return False, None  # definitely absent: skip the search
        idx = bisect.bisect_left(self._keys, key)
        if idx < len(self._keys) and self._keys[idx] == key:
            return True, self._values[idx]
        return False, None

    def seek(self, key: bytes) -> Iterator[tuple[bytes, Optional[bytes]]]:
        """Yield entries with key >= ``key`` in ascending order."""
        idx = bisect.bisect_left(self._keys, key)
        for i in range(idx, len(self._keys)):
            yield self._keys[i], self._values[i]

    def seek_range(
        self, start: bytes, stop: bytes
    ) -> Iterator[tuple[bytes, Optional[bytes]]]:
        """Yield entries with ``start <= key < stop``, both bounds found
        by binary search (no per-entry comparison during iteration)."""
        lo = bisect.bisect_left(self._keys, start)
        hi = bisect.bisect_left(self._keys, stop, lo=lo)
        for i in range(lo, hi):
            yield self._keys[i], self._values[i]

    def __iter__(self) -> Iterator[tuple[bytes, Optional[bytes]]]:
        return iter(zip(self._keys, self._values))

    # -- persistence ----------------------------------------------------

    def encode(self) -> bytes:
        """Serialize the table (entries + checksummed footer)."""
        FAILPOINTS.check("kv.sstable.encode")
        payload = bytearray()
        for key, value in zip(self._keys, self._values):
            _write_varint(len(key), payload)
            payload += key
            if value is None:
                _write_varint(1, payload)
            else:
                _write_varint(0, payload)
                _write_varint(len(value), payload)
                payload += value
        bloom = self._bloom.encode()
        footer = _FOOTER.pack(
            len(self._keys), zlib.crc32(bytes(payload)), len(bloom), _MAGIC
        )
        return bytes(payload) + bloom + footer

    @classmethod
    def decode(cls, data: bytes) -> "SSTable":
        """Parse bytes produced by :meth:`encode`, verifying integrity."""
        mode = FAILPOINTS.check("kv.sstable.decode")
        if mode == MODE_CORRUPT and data:
            # Bit rot between encode and decode.  The first byte is
            # always in a verified region (entry payload, or the bloom
            # header for an empty table), so the damage is guaranteed
            # to surface as a CorruptionError below — never silently.
            data = corrupt_bytes(data[:1]) + data[1:]
        if len(data) < _FOOTER.size:
            raise CorruptionError("sstable shorter than footer")
        count, crc, bloom_len, magic = _FOOTER.unpack(data[-_FOOTER.size:])
        if magic != _MAGIC:
            raise CorruptionError("bad sstable magic")
        body = data[:-_FOOTER.size]
        if bloom_len > len(body):
            raise CorruptionError("sstable bloom length out of range")
        payload = body[: len(body) - bloom_len]
        bloom_bytes = body[len(body) - bloom_len:]
        if zlib.crc32(payload) != crc:
            raise CorruptionError("sstable payload checksum mismatch")
        entries: list[tuple[bytes, Optional[bytes]]] = []
        pos = 0
        for _ in range(count):
            klen, pos = _read_varint(payload, pos)
            key = payload[pos:pos + klen]
            pos += klen
            flag, pos = _read_varint(payload, pos)
            if flag == 1:
                entries.append((key, None))
            else:
                vlen, pos = _read_varint(payload, pos)
                entries.append((key, payload[pos:pos + vlen]))
                pos += vlen
        if pos != len(payload):
            raise CorruptionError("trailing bytes in sstable payload")
        table = cls(entries)
        # Reuse the persisted filter (identical contents, skips the
        # rebuild hashing for large tables).
        table._bloom = BloomFilter.decode(bloom_bytes)
        return table
