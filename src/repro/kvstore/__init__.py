"""An ordered, prefix-seekable key-value store (the RocksDB stand-in).

AeonG persists its historical graph data in RocksDB.  This package
provides the subset of RocksDB behaviour the paper's design relies on:

- byte-string keys kept in globally sorted order, so that all versions
  of one graph object (which share a key prefix) are physically
  clustered and version-sorted (paper section 4.2);
- ``seek``-style iterators for finding the nearest anchor record;
- atomic write batches, used by ``Migrate()`` (Algorithm 1) to install
  a whole garbage-collection epoch at once;
- byte-accurate size accounting for the storage-overhead experiments;
- optional durability via a write-ahead log plus immutable sorted runs.

The implementation is a small LSM tree: an in-memory skiplist memtable
that flushes to immutable SSTable runs, with k-way merge iterators and
a simple full compaction.
"""

from repro.kvstore.api import WriteBatch
from repro.kvstore.store import KVStore

__all__ = ["KVStore", "WriteBatch"]
