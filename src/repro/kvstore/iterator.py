"""K-way merging iterators over memtable + SSTable runs.

Reads must see the *newest* write for each key.  Runs are passed
newest-first; the merge keeps, for each key, the entry from the
lowest-indexed (newest) run and drops older duplicates.  Tombstones are
resolved here: a surviving tombstone suppresses the key entirely.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Optional

from repro.kvstore.api import Entry


def merge_runs(
    runs: list[Iterable[tuple[bytes, Optional[bytes]]]],
    keep_tombstones: bool = False,
) -> Iterator[tuple[bytes, Optional[bytes]]]:
    """Merge sorted runs, newest run first, deduplicating by key.

    Yields ``(key, value_or_tombstone)`` in ascending key order.  When
    ``keep_tombstones`` is false, keys whose newest entry is a tombstone
    are skipped (the read path); compaction passes true to retain the
    markers for lower levels.
    """
    heap: list[tuple[bytes, int, Optional[bytes], Iterator]] = []
    for age, run in enumerate(runs):
        iterator = iter(run)
        for key, value in iterator:
            heapq.heappush(heap, (key, age, value, iterator))
            break
    last_key: Optional[bytes] = None
    while heap:
        key, age, value, iterator = heapq.heappop(heap)
        for next_key, next_value in iterator:
            heapq.heappush(heap, (next_key, age, next_value, iterator))
            break
        if key == last_key:
            continue  # an older run's duplicate
        last_key = key
        if value is None and not keep_tombstones:
            continue
        yield key, value


def entries(
    merged: Iterator[tuple[bytes, Optional[bytes]]]
) -> Iterator[Entry]:
    """Wrap live merged pairs into :class:`Entry` objects."""
    for key, value in merged:
        if value is not None:
            yield Entry(key, value)


def bounded(
    merged: Iterator[tuple[bytes, Optional[bytes]]],
    prefix: bytes,
) -> Iterator[tuple[bytes, Optional[bytes]]]:
    """Stop iteration as soon as keys leave ``prefix``."""
    for key, value in merged:
        if not key.startswith(prefix):
            return
        yield key, value
