"""Public datatypes of the key-value store: write batches and entries.

Keys and values are ``bytes``.  A deletion is represented internally by
a *tombstone* (value ``None``); tombstones flow through memtables,
SSTables and merge iterators and are dropped at the final read surface
and during full compaction, exactly like RocksDB's delete markers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass(frozen=True)
class Entry:
    """One key-value pair as seen by iterators (never a tombstone)."""

    key: bytes
    value: bytes


class WriteBatch:
    """An ordered group of writes applied atomically by ``KVStore.write``.

    The batch preserves insertion order; a later operation on the same
    key within one batch overrides an earlier one, matching RocksDB
    semantics.  ``Migrate()`` (paper Algorithm 1, line 8
    ``putMultiples``) uses a batch so a crash can never expose half a
    garbage-collection epoch.
    """

    def __init__(self) -> None:
        self._ops: dict[bytes, Optional[bytes]] = {}

    def put(self, key: bytes, value: bytes) -> None:
        """Stage an insert/overwrite of ``key``."""
        _check_key(key)
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("value must be bytes")
        self._ops[bytes(key)] = bytes(value)

    def delete(self, key: bytes) -> None:
        """Stage a deletion of ``key``."""
        _check_key(key)
        self._ops[bytes(key)] = None

    def clear(self) -> None:
        """Drop all staged operations."""
        self._ops.clear()

    def __len__(self) -> int:
        return len(self._ops)

    def __bool__(self) -> bool:
        return bool(self._ops)

    def items(self) -> Iterator[tuple[bytes, Optional[bytes]]]:
        """Yield staged ``(key, value-or-tombstone)`` pairs."""
        return iter(self._ops.items())


@dataclass
class StoreStats:
    """Counters exposed by the store for tests and benchmarks."""

    puts: int = 0
    deletes: int = 0
    gets: int = 0
    seeks: int = 0
    range_scans: int = 0
    flushes: int = 0
    compactions: int = 0
    batch_writes: int = 0
    extra: dict = field(default_factory=dict)


def _check_key(key: bytes) -> None:
    if not isinstance(key, (bytes, bytearray)):
        raise TypeError("key must be bytes")
    if not key:
        raise ValueError("key must be non-empty")
