"""Write-ahead log for the key-value store.

Each record is an atomic batch of operations; on recovery the log is
replayed in order, and a torn final record (partial write during crash)
is detected via its checksum and discarded, like RocksDB's WAL.

Record format::

    u32 length | u32 crc32(payload) | payload
    payload := varint(op_count) ( varint(klen) key
                                  varint(flag) [varint(vlen) value] )*

Durability discipline: ``durability_mode="flush"`` stops at the OS
buffer (fast, survives process death but not power loss);
``"fsync"`` syncs every append to the device.  All physical I/O routes
through :class:`repro.faults.StorageIO`, so every boundary — append,
sync, truncate — is a registered failpoint site
(``<site_prefix>.append`` / ``.sync`` / ``.truncate``).

Recovery distinguishes a *torn tail* (an incomplete or garbage final
record — the expected residue of a crash mid-append) from *corruption*
(a damaged record with valid data after it — real on-disk damage that
replay must not silently hide).  :meth:`WriteAheadLog.scan` reports
both; ``strict=True`` escalates corruption to
:class:`~repro.errors.CorruptionError`.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Iterator, Optional

from repro.errors import CorruptionError
from repro.faults import FAILPOINTS, SimulatedCrash, StorageIO, torn_prefix
from repro.kvstore.sstable import _read_varint, _write_varint

_HEADER = struct.Struct(">II")

# The default site prefix; other prefixes (e.g. ``engine.wal``) are
# registered by their owners, per-instance prefixes at construction.
FAILPOINTS.register("kv.wal.append", "kv.wal.sync", "kv.wal.truncate")


def _encode_batch(ops: list[tuple[bytes, Optional[bytes]]]) -> bytes:
    payload = bytearray()
    _write_varint(len(ops), payload)
    for key, value in ops:
        _write_varint(len(key), payload)
        payload += key
        if value is None:
            _write_varint(1, payload)
        else:
            _write_varint(0, payload)
            _write_varint(len(value), payload)
            payload += value
    return bytes(payload)


def _decode_batch(payload: bytes) -> list[tuple[bytes, Optional[bytes]]]:
    count, pos = _read_varint(payload, 0)
    ops: list[tuple[bytes, Optional[bytes]]] = []
    for _ in range(count):
        klen, pos = _read_varint(payload, pos)
        key = payload[pos:pos + klen]
        pos += klen
        flag, pos = _read_varint(payload, pos)
        if flag == 1:
            ops.append((key, None))
        else:
            vlen, pos = _read_varint(payload, pos)
            ops.append((key, payload[pos:pos + vlen]))
            pos += vlen
    if pos != len(payload):
        raise CorruptionError("trailing bytes in WAL record")
    return ops


@dataclass
class WalScan:
    """What one pass over the log found.

    ``torn_tail`` marks the expected crash residue (an incomplete or
    checksum-failing *final* record); ``corruption`` marks a damaged
    record *followed by valid bytes* — real damage, never produced by a
    clean crash of an append-only writer.
    """

    batches: list = field(default_factory=list)
    #: byte extent ``(start, end)`` of each intact record, in order —
    #: lets callers map a record index to a truncation boundary (the
    #: replication fence cuts the log at an extent edge)
    extents: list = field(default_factory=list)
    records: int = 0
    bytes_scanned: int = 0
    valid_bytes: int = 0  # offset just past the last intact record
    bytes_discarded: int = 0
    torn_tail: bool = False
    corruption: bool = False


class WriteAheadLog:
    """Append-only durability log.

    May be backed by a real file (``path``) or an in-memory buffer
    (``path=None``), the latter used by tests exercising recovery logic
    without touching the filesystem.
    """

    def __init__(
        self,
        path: Optional[Path] = None,
        durability_mode: str = "flush",
        site_prefix: str = "kv.wal",
        storage_io: Optional[StorageIO] = None,
    ) -> None:
        self._path = Path(path) if path is not None else None
        self._io = (
            storage_io
            if storage_io is not None
            else StorageIO(durability_mode)
        )
        self._site_append = f"{site_prefix}.append"
        self._site_sync = f"{site_prefix}.sync"
        self._site_truncate = f"{site_prefix}.truncate"
        FAILPOINTS.register(
            self._site_append, self._site_sync, self._site_truncate
        )
        self.last_scan: Optional[WalScan] = None
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            # A stale .tmp is the residue of a crash mid-truncate; the
            # rename never happened, so the original file is authoritative.
            tmp = self._tmp_path()
            if tmp.exists():
                tmp.unlink()
            self._file: BinaryIO = open(self._path, "ab")
            self._synced = self._file.tell()
        else:
            self._file = io.BytesIO()
            self._synced = 0
        self._closed = False

    @property
    def durability_mode(self) -> str:
        return self._io.durability_mode

    @property
    def fsync_enabled(self) -> bool:
        return self._io.fsync_enabled

    def _tmp_path(self) -> Path:
        return self._path.with_name(self._path.name + ".tmp")

    def append(
        self, ops: list[tuple[bytes, Optional[bytes]]], sync: bool = True
    ) -> None:
        """Durably append one atomic batch.

        ``sync=False`` skips the per-append fsync so a group-commit
        caller can append once and sync once for a whole batch of
        logical records (the caller must invoke :meth:`sync` before
        acknowledging anything from the batch).
        """
        payload = _encode_batch(ops)
        record = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._io.append(self._file, record, self._site_append)
        if sync and self._io.fsync_enabled:
            self._synced = self._io.sync(
                self._file, self._site_sync, self._synced
            )

    def sync(self) -> None:
        """Force everything appended so far to the device."""
        self._synced = self._io.sync(self._file, self._site_sync, self._synced)

    # -- failure-mode helpers (group-commit failpoint sites) -------------

    def append_torn(
        self, ops: list[tuple[bytes, Optional[bytes]]], site: str
    ) -> None:
        """A ``torn-write`` at batch granularity: half of the *whole
        batch frame* reaches the file, then the process "dies".

        Mirrors :meth:`repro.faults.StorageIO.append`'s torn-write
        behaviour but is triggered by a caller-level failpoint site
        (``wal.group.append``), so tests can tear exactly the combined
        group-commit frame rather than an individual append.
        """
        payload = _encode_batch(ops)
        record = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._file.write(torn_prefix(record))
        self._file.flush()
        raise SimulatedCrash(site)

    def simulate_partial_fsync(self, site: str) -> None:
        """A ``partial-fsync`` at batch granularity: the unsynced tail
        is half-lost (the "dropped OS buffer"), then the process
        "dies".  Triggered by a caller-level site (``wal.group.fsync``)
        against bytes appended with ``sync=False``."""
        self._file.flush()
        size = self._file.tell()
        keep = self._synced + (size - self._synced) // 2
        self._file.truncate(keep)
        raise SimulatedCrash(site)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._path is not None:
            self._file.close()

    def truncate(self) -> None:
        """Discard all records (called after a successful checkpoint)."""
        self.truncate_to(0)

    def truncate_to(self, keep_bytes: int) -> None:
        """Crash-safely cut the log back to its first ``keep_bytes``.

        Write-new + atomic rename: the surviving prefix is written to a
        temp file and renamed over the log, so a crash at any instant
        leaves either the full old log or the exact truncated one —
        never a half-valid file (the failure mode of truncating the
        live file in place).
        """
        if self._path is None:
            data = self._file.getvalue()[:keep_bytes]
            self._io.registry.check(self._site_truncate)
            self._file = io.BytesIO()
            self._file.write(data)
            self._synced = keep_bytes
            return
        self._file.flush()
        prefix = self._path.read_bytes()[:keep_bytes] if keep_bytes else b""
        tmp = self._tmp_path()
        with open(tmp, "wb") as handle:
            handle.write(prefix)
            handle.flush()
            if self._io.fsync_enabled:
                os.fsync(handle.fileno())
        # The dangerous window: new file durable, old still in place.
        # A crash here leaves the original log plus a stray .tmp that
        # the next open discards — recovery sees the full old log.
        self._io.rename(tmp, self._path, self._site_truncate)
        self._file.close()
        self._file = open(self._path, "ab")
        self._synced = self._file.tell()

    def drop_prefix(self, drop_bytes: int) -> None:
        """Crash-safely discard the log's first ``drop_bytes``.

        The complement of :meth:`truncate_to`: keeps the *suffix*.
        Used by checkpoint truncation under replication, where records
        past the slowest replica's acknowledged watermark must survive
        even though the checkpoint has absorbed everything.  Same
        write-new + atomic-rename discipline, same failpoint site.
        """
        if drop_bytes <= 0:
            return
        if self._path is None:
            data = self._file.getvalue()[drop_bytes:]
            self._io.registry.check(self._site_truncate)
            self._file = io.BytesIO()
            self._file.write(data)
            self._synced = len(data)
            return
        self._file.flush()
        suffix = self._path.read_bytes()[drop_bytes:]
        tmp = self._tmp_path()
        with open(tmp, "wb") as handle:
            handle.write(suffix)
            handle.flush()
            if self._io.fsync_enabled:
                os.fsync(handle.fileno())
        self._io.rename(tmp, self._path, self._site_truncate)
        self._file.close()
        self._file = open(self._path, "ab")
        self._synced = self._file.tell()

    # -- recovery -------------------------------------------------------

    def scan(self, strict: bool = False) -> WalScan:
        """Parse the whole log, classifying any damaged tail.

        With ``strict=True``, corruption (a bad record that is *not*
        the torn final one) raises :class:`CorruptionError` instead of
        being flagged — callers that would rather refuse to open than
        silently drop interior records.
        """
        data = self._snapshot_bytes()
        scan = WalScan(bytes_scanned=len(data))
        pos = 0
        while pos < len(data):
            if pos + _HEADER.size > len(data):
                scan.torn_tail = True  # torn header: crash mid-write
                break
            length, crc = _HEADER.unpack_from(data, pos)
            start = pos + _HEADER.size
            end = start + length
            if end > len(data):
                scan.torn_tail = True  # torn payload
                break
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                if end == len(data):
                    # Garbage final record: expected crash residue.
                    scan.torn_tail = True
                else:
                    # Damaged record with bytes *after* it: an
                    # append-only crash cannot produce this.
                    if strict:
                        raise CorruptionError(
                            f"WAL record at offset {pos} failed its "
                            f"checksum but {len(data) - end} valid bytes "
                            "follow: interior corruption, not a torn tail"
                        )
                    scan.corruption = True
                break
            try:
                batch = _decode_batch(payload)
            except CorruptionError:
                # Checksum passed but the payload is malformed:
                # software-level damage, never a torn write.
                if strict:
                    raise
                scan.corruption = True
                break
            scan.batches.append(batch)
            scan.extents.append((pos, end))
            scan.records += 1
            pos = end
            scan.valid_bytes = pos
        scan.bytes_discarded = len(data) - scan.valid_bytes
        self.last_scan = scan
        return scan

    def replay(
        self, strict: bool = False
    ) -> Iterator[list[tuple[bytes, Optional[bytes]]]]:
        """Yield batches in append order; stop at the first torn record."""
        yield from self.scan(strict=strict).batches

    def repair(self) -> bool:
        """Crash-safely drop a damaged tail found by the last scan.

        Returns True when bytes were discarded.  Without this, appends
        after recovery would land *behind* unreadable garbage and be
        lost on the next replay.
        """
        scan = self.last_scan if self.last_scan is not None else self.scan()
        if scan.bytes_discarded == 0:
            return False
        self.truncate_to(scan.valid_bytes)
        return True

    def _snapshot_bytes(self) -> bytes:
        if self._path is not None:
            self._file.flush()
            return self._path.read_bytes()
        return self._file.getvalue()
