"""Write-ahead log for the key-value store.

Each record is an atomic batch of operations; on recovery the log is
replayed in order, and a torn final record (partial write during crash)
is detected via its checksum and discarded, like RocksDB's WAL.

Record format::

    u32 length | u32 crc32(payload) | payload
    payload := varint(op_count) ( varint(klen) key
                                  varint(flag) [varint(vlen) value] )*
"""

from __future__ import annotations

import io
import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Iterator, Optional

from repro.errors import CorruptionError
from repro.kvstore.sstable import _read_varint, _write_varint

_HEADER = struct.Struct(">II")


def _encode_batch(ops: list[tuple[bytes, Optional[bytes]]]) -> bytes:
    payload = bytearray()
    _write_varint(len(ops), payload)
    for key, value in ops:
        _write_varint(len(key), payload)
        payload += key
        if value is None:
            _write_varint(1, payload)
        else:
            _write_varint(0, payload)
            _write_varint(len(value), payload)
            payload += value
    return bytes(payload)


def _decode_batch(payload: bytes) -> list[tuple[bytes, Optional[bytes]]]:
    count, pos = _read_varint(payload, 0)
    ops: list[tuple[bytes, Optional[bytes]]] = []
    for _ in range(count):
        klen, pos = _read_varint(payload, pos)
        key = payload[pos:pos + klen]
        pos += klen
        flag, pos = _read_varint(payload, pos)
        if flag == 1:
            ops.append((key, None))
        else:
            vlen, pos = _read_varint(payload, pos)
            ops.append((key, payload[pos:pos + vlen]))
            pos += vlen
    if pos != len(payload):
        raise CorruptionError("trailing bytes in WAL record")
    return ops


class WriteAheadLog:
    """Append-only durability log.

    May be backed by a real file (``path``) or an in-memory buffer
    (``path=None``), the latter used by tests exercising recovery logic
    without touching the filesystem.
    """

    def __init__(self, path: Optional[Path] = None) -> None:
        self._path = Path(path) if path is not None else None
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._file: BinaryIO = open(self._path, "ab")
        else:
            self._file = io.BytesIO()

    def append(self, ops: list[tuple[bytes, Optional[bytes]]]) -> None:
        """Durably append one atomic batch."""
        payload = _encode_batch(ops)
        record = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._file.write(record)
        self._file.flush()

    def close(self) -> None:
        if self._path is not None:
            self._file.close()

    def truncate(self) -> None:
        """Discard all records (called after a successful flush)."""
        if self._path is not None:
            self._file.close()
            self._file = open(self._path, "wb")
        else:
            self._file = io.BytesIO()

    # -- recovery -------------------------------------------------------

    def replay(self) -> Iterator[list[tuple[bytes, Optional[bytes]]]]:
        """Yield batches in append order; stop at the first torn record."""
        data = self._snapshot_bytes()
        pos = 0
        while pos < len(data):
            if pos + _HEADER.size > len(data):
                return  # torn header: crash mid-write
            length, crc = _HEADER.unpack_from(data, pos)
            start = pos + _HEADER.size
            end = start + length
            if end > len(data):
                return  # torn payload
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                return  # corrupted tail
            yield _decode_batch(payload)
            pos = end

    def _snapshot_bytes(self) -> bytes:
        if self._path is not None:
            self._file.flush()
            return self._path.read_bytes()
        return self._file.getvalue()
