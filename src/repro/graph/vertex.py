"""The in-place vertex record of the current store.

A record always holds the *newest* state; older versions are derived by
applying the undo-delta chain hanging off ``delta_head``.  Besides the
regular transaction-time field (``tt_start``, reset by every content
change) a vertex keeps a second one for its latest *structural* change
(``tt_structure_start``) — the paper adds it so topology deltas (the
``VE`` records) can be timestamped independently of property updates
(section 4.1, "Assigning transaction-time").
"""

from __future__ import annotations

import threading
from typing import Any, NamedTuple, Optional

from repro.common.serde import encoded_size
from repro.common.timeutil import MIN_TIMESTAMP
from repro.mvcc.delta import Delta


class EdgeRef(NamedTuple):
    """A lightweight edge stub stored in a vertex's adjacency lists.

    Memgraph keeps ``(edge type, other endpoint, edge pointer)`` stubs
    on both endpoints; expansion reads these before touching the edge
    record itself.
    """

    edge_type: str
    other_gid: int
    edge_gid: int


class VertexRecord:
    """Mutable current-state vertex (plus its version chain head)."""

    __slots__ = (
        "gid",
        "labels",
        "properties",
        "out_edges",
        "in_edges",
        "deleted",
        "delta_head",
        "tt_start",
        "tt_structure_start",
        "lock",
    )

    def __init__(self, gid: int) -> None:
        self.gid = gid
        self.labels: set[str] = set()
        self.properties: dict[str, Any] = {}
        self.out_edges: list[EdgeRef] = []
        self.in_edges: list[EdgeRef] = []
        self.deleted = False
        self.delta_head: Optional[Delta] = None
        self.tt_start = MIN_TIMESTAMP
        self.tt_structure_start = MIN_TIMESTAMP
        self.lock = threading.RLock()

    @property
    def kind(self) -> str:
        return "vertex"

    def approximate_bytes(self) -> int:
        """Wire-size model of the record (storage accounting).

        Counts gid, labels, properties and adjacency stubs with the
        same encoder the history store uses, so current-store and
        history-store sizes are comparable.
        """
        size = 8  # gid
        size += encoded_size(sorted(self.labels))
        size += encoded_size(self.properties)
        size += 17 * (len(self.out_edges) + len(self.in_edges))
        size += 16  # two transaction-time fields
        return size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "deleted" if self.deleted else "live"
        return f"VertexRecord(gid={self.gid}, {state}, labels={sorted(self.labels)})"
