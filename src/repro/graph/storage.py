"""GraphStorage: transactional CRUD over vertices and edges.

This is the write path of the current store.  Every mutation follows
the Memgraph protocol the paper extends:

1. **conflict check** — if the object's newest delta belongs to another
   active transaction, or to one committed after our snapshot, abort
   with a serialization conflict (first-updater-wins);
2. **undo delta** — create the delta that reverses the change, copy the
   object's current transaction-time start into it, chain it at the
   head, and register it in the transaction's undo buffer;
3. **in-place change** — apply the new value to the record.

Deletions follow the paper's decomposition (section 4.1, "Delta
organization"): an edge deletion clears the edge's properties and
detaches it from both endpoints (one ``E`` delta plus two ``VE``
deltas); a vertex deletion first deletes the incident edges, then
clears the vertex.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, Optional

from repro.common.ids import GidAllocator
from repro.errors import (
    EdgeNotFound,
    GraphError,
    SerializationConflict,
    VertexNotFound,
)
from repro.graph.edge import EdgeRecord
from repro.graph.constraints import ConstraintRegistry
from repro.graph.indexes import IndexRegistry
from repro.graph.properties import validate_properties, validate_value
from repro.graph.vertex import EdgeRef, VertexRecord
from repro.graph.views import EdgeView, VertexView, visible_view
from repro.mvcc.delta import Delta, DeltaAction
from repro.mvcc.manager import TransactionManager
from repro.mvcc.transaction import CommitStatus, Transaction


def apply_undo_to_record(record, delta: Delta) -> None:
    """Apply one undo delta to the in-place record (abort rollback)."""
    action = delta.action
    if action == DeltaAction.SET_PROPERTY:
        name, old_value = delta.payload
        if old_value is None:
            record.properties.pop(name, None)
        else:
            record.properties[name] = old_value
    elif action == DeltaAction.ADD_LABEL:
        record.labels.add(delta.payload)
    elif action == DeltaAction.REMOVE_LABEL:
        record.labels.discard(delta.payload)
    elif action == DeltaAction.ADD_OUT_EDGE:
        record.out_edges.append(EdgeRef(*delta.payload))
    elif action == DeltaAction.ADD_IN_EDGE:
        record.in_edges.append(EdgeRef(*delta.payload))
    elif action == DeltaAction.REMOVE_OUT_EDGE:
        ref = EdgeRef(*delta.payload)
        record.out_edges = [r for r in record.out_edges if r.edge_gid != ref.edge_gid]
    elif action == DeltaAction.REMOVE_IN_EDGE:
        ref = EdgeRef(*delta.payload)
        record.in_edges = [r for r in record.in_edges if r.edge_gid != ref.edge_gid]
    elif action == DeltaAction.RECREATE_OBJECT:
        record.deleted = False
    elif action == DeltaAction.DELETE_OBJECT:
        record.deleted = True
    else:  # pragma: no cover - exhaustive over DeltaAction
        raise GraphError(f"cannot undo {action}")


class GraphStorage:
    """Vertex/edge maps with MVCC write protocol and visibility reads."""

    def __init__(self, manager: Optional[TransactionManager] = None) -> None:
        self.manager = manager if manager is not None else TransactionManager()
        self.manager.set_undo_applier(apply_undo_to_record)
        self._gids = GidAllocator()
        self._vertices: dict[int, VertexRecord] = {}
        self._edges: dict[int, EdgeRecord] = {}
        self._lock = threading.RLock()
        self.indexes = IndexRegistry()
        self.constraints = ConstraintRegistry()

    # -- write protocol helpers ------------------------------------------

    def _check_write_conflict(self, txn: Transaction, record) -> None:
        head = record.delta_head
        if head is None:
            return
        info = head.commit_info
        if info.status == CommitStatus.ACTIVE and info.transaction_id != txn.id:
            raise SerializationConflict(
                f"{record.kind} {record.gid} locked by transaction "
                f"{info.transaction_id}"
            )
        if (
            info.status == CommitStatus.COMMITTED
            and info.commit_ts is not None
            and info.commit_ts > txn.start_ts
        ):
            raise SerializationConflict(
                f"{record.kind} {record.gid} modified after snapshot "
                f"{txn.start_ts}"
            )

    def _push_delta(
        self,
        txn: Transaction,
        record,
        action: DeltaAction,
        payload: Any,
    ) -> Delta:
        # Fail before touching the record: a transaction the watchdog
        # aborted in the background must not chain a dangling delta
        # (the owner gets TransactionTimeout here instead).
        txn.check_active()
        structural = action in (
            DeltaAction.ADD_OUT_EDGE,
            DeltaAction.ADD_IN_EDGE,
            DeltaAction.REMOVE_OUT_EDGE,
            DeltaAction.REMOVE_IN_EDGE,
        )
        tt_start = (
            record.tt_structure_start
            if structural and isinstance(record, VertexRecord)
            else record.tt_start
        )
        delta = Delta(
            action=action,
            payload=payload,
            commit_info=txn.commit_info,
            object_kind=record.kind,
            object_gid=record.gid,
            tt_start=tt_start,
        )
        delta.next = record.delta_head
        record.delta_head = delta
        txn.record_delta(record, delta)
        return delta

    # -- vertex writes ------------------------------------------------------

    def create_vertex(
        self,
        txn: Transaction,
        labels: tuple[str, ...] | list[str] = (),
        properties: Optional[dict[str, Any]] = None,
        gid: Optional[int] = None,
    ) -> int:
        """Insert a vertex; returns its gid.

        ``gid`` forces a specific identifier (WAL replay only — gids
        key the history store, so replay must reproduce them).
        """
        txn.check_active()
        properties = dict(properties or {})
        validate_properties(properties)
        record = VertexRecord(self._claim_gid(gid))
        record.labels.update(labels)
        record.properties.update(properties)
        self.constraints.check_new_vertex(
            txn, record.gid, record.labels, record.properties
        )
        with self._lock:
            self._vertices[record.gid] = record
        # The undo of a create: the object did not exist before.
        self._push_delta(txn, record, DeltaAction.DELETE_OBJECT, None)
        self.indexes.notify_vertex_write(record, txn)
        return record.gid

    def add_label(self, txn: Transaction, gid: int, label: str) -> bool:
        """Add a label; returns False if it was already present."""
        record = self._writable_vertex(txn, gid)
        if label in record.labels:
            return False
        self.constraints.check_vertex_write(
            txn, record, record.labels | {label}, record.properties
        )
        self._push_delta(txn, record, DeltaAction.REMOVE_LABEL, label)
        record.labels.add(label)
        self.indexes.notify_vertex_write(record, txn)
        return True

    def remove_label(self, txn: Transaction, gid: int, label: str) -> bool:
        """Remove a label; returns False if it was absent."""
        record = self._writable_vertex(txn, gid)
        if label not in record.labels:
            return False
        self.constraints.check_vertex_write(
            txn, record, record.labels - {label}, record.properties
        )
        self._push_delta(txn, record, DeltaAction.ADD_LABEL, label)
        record.labels.discard(label)
        return True

    def set_vertex_property(
        self, txn: Transaction, gid: int, name: str, value: Any
    ) -> None:
        """Set (or, with ``value=None``, remove) a vertex property."""
        record = self._writable_vertex(txn, gid)
        self._set_property(txn, record, name, value)
        self.indexes.notify_vertex_write(record, txn)

    def delete_vertex(
        self, txn: Transaction, gid: int, detach: bool = True
    ) -> None:
        """Delete a vertex, decomposed per the paper: delete the linked
        edges first, then clear the vertex's attributes.

        Without ``detach`` the delete fails if any visible edge remains
        (mirroring Cypher's plain ``DELETE``).
        """
        record = self._writable_vertex(txn, gid)
        view = visible_view(record, txn)
        incident = list(view.out_edges) + list(view.in_edges)
        if incident and not detach:
            raise GraphError(
                f"vertex {gid} still has {len(incident)} edges; "
                "use detach=True"
            )
        for ref in incident:
            self.delete_edge(txn, ref.edge_gid)
        for name in list(record.properties):
            self._set_property(txn, record, name, None)
        for label in list(record.labels):
            self._push_delta(txn, record, DeltaAction.ADD_LABEL, label)
            record.labels.discard(label)
        self._push_delta(txn, record, DeltaAction.RECREATE_OBJECT, None)
        record.deleted = True

    # -- edge writes -----------------------------------------------------------

    def create_edge(
        self,
        txn: Transaction,
        from_gid: int,
        to_gid: int,
        edge_type: str,
        properties: Optional[dict[str, Any]] = None,
        gid: Optional[int] = None,
    ) -> int:
        """Insert an edge between two visible vertices; returns its gid."""
        txn.check_active()
        if not edge_type:
            raise ValueError("edge_type must be a non-empty string")
        properties = dict(properties or {})
        validate_properties(properties)
        source = self._writable_vertex(txn, from_gid)
        target = self._writable_vertex(txn, to_gid)
        record = EdgeRecord(self._claim_gid(gid), edge_type, from_gid, to_gid)
        record.properties.update(properties)
        with self._lock:
            self._edges[record.gid] = record
        self._push_delta(txn, record, DeltaAction.DELETE_OBJECT, None)
        out_ref = EdgeRef(edge_type, to_gid, record.gid)
        in_ref = EdgeRef(edge_type, from_gid, record.gid)
        self._push_delta(txn, source, DeltaAction.REMOVE_OUT_EDGE, tuple(out_ref))
        source.out_edges.append(out_ref)
        self._push_delta(txn, target, DeltaAction.REMOVE_IN_EDGE, tuple(in_ref))
        target.in_edges.append(in_ref)
        return record.gid

    def set_edge_property(
        self, txn: Transaction, gid: int, name: str, value: Any
    ) -> None:
        """Set (or, with ``value=None``, remove) an edge property."""
        record = self._writable_edge(txn, gid)
        self._set_property(txn, record, name, value)

    def delete_edge(self, txn: Transaction, gid: int) -> None:
        """Delete an edge: one property-clearing ``E`` delta plus a
        structural ``VE`` delta on each endpoint (paper section 4.1)."""
        record = self._writable_edge(txn, gid)
        source = self._writable_vertex(txn, record.from_gid)
        target = self._writable_vertex(txn, record.to_gid)
        for name in list(record.properties):
            self._set_property(txn, record, name, None)
        self._push_delta(txn, record, DeltaAction.RECREATE_OBJECT, None)
        record.deleted = True
        out_ref = EdgeRef(record.edge_type, record.to_gid, record.gid)
        in_ref = EdgeRef(record.edge_type, record.from_gid, record.gid)
        self._push_delta(txn, source, DeltaAction.ADD_OUT_EDGE, tuple(out_ref))
        source.out_edges = [
            r for r in source.out_edges if r.edge_gid != record.gid
        ]
        self._push_delta(txn, target, DeltaAction.ADD_IN_EDGE, tuple(in_ref))
        target.in_edges = [
            r for r in target.in_edges if r.edge_gid != record.gid
        ]

    def _claim_gid(self, gid: Optional[int]) -> int:
        if gid is None:
            return self._gids.allocate()
        if gid in self._vertices or gid in self._edges:
            raise GraphError(f"gid {gid} already in use (bad replay?)")
        self._gids.allocate_up_to(gid + 1)
        return gid

    # -- shared write internals ---------------------------------------------

    def _set_property(
        self, txn: Transaction, record, name: str, value: Any
    ) -> None:
        if not isinstance(name, str) or not name:
            raise TypeError("property names must be non-empty strings")
        if value is not None:
            validate_value(value)
        old_value = record.properties.get(name)
        if old_value == value and (value is not None or name not in record.properties):
            return  # no-op write: no delta, like Memgraph
        if isinstance(record, VertexRecord):
            new_properties = dict(record.properties)
            if value is None:
                new_properties.pop(name, None)
            else:
                new_properties[name] = value
            self.constraints.check_vertex_write(
                txn, record, record.labels, new_properties
            )
        self._push_delta(
            txn, record, DeltaAction.SET_PROPERTY, (name, old_value)
        )
        if value is None:
            record.properties.pop(name, None)
        else:
            record.properties[name] = value

    def _writable_vertex(self, txn: Transaction, gid: int) -> VertexRecord:
        txn.check_active()
        record = self._vertices.get(gid)
        if record is None:
            raise VertexNotFound(gid)
        self._check_write_conflict(txn, record)
        if record.deleted:
            raise VertexNotFound(gid)
        return record

    def _writable_edge(self, txn: Transaction, gid: int) -> EdgeRecord:
        txn.check_active()
        record = self._edges.get(gid)
        if record is None:
            raise EdgeNotFound(gid)
        self._check_write_conflict(txn, record)
        if record.deleted:
            raise EdgeNotFound(gid)
        return record

    # -- reads ---------------------------------------------------------------

    def get_vertex(self, txn: Transaction, gid: int) -> Optional[VertexView]:
        """The version of vertex ``gid`` visible to ``txn``, or None."""
        record = self._vertices.get(gid)
        if record is None:
            return None
        return visible_view(record, txn)

    def get_edge(self, txn: Transaction, gid: int) -> Optional[EdgeView]:
        """The version of edge ``gid`` visible to ``txn``, or None."""
        record = self._edges.get(gid)
        if record is None:
            return None
        return visible_view(record, txn)

    def iter_vertices(self, txn: Transaction) -> Iterator[VertexView]:
        """All vertices visible to ``txn`` (snapshot-isolation scan)."""
        with self._lock:
            records = list(self._vertices.values())
        for record in records:
            view = visible_view(record, txn)
            if view is not None:
                yield view

    def iter_edges(self, txn: Transaction) -> Iterator[EdgeView]:
        """All edges visible to ``txn``."""
        with self._lock:
            records = list(self._edges.values())
        for record in records:
            view = visible_view(record, txn)
            if view is not None:
                yield view

    # -- indexes ----------------------------------------------------------------

    def create_label_index(self, label: str) -> None:
        """Create and backfill an index on ``:label``."""
        self.indexes.create_label_index(label, self.iter_vertex_records())

    def create_label_property_index(self, label: str, prop: str) -> None:
        """Create and backfill an index on ``(:label {prop})``."""
        self.indexes.create_label_property_index(
            label, prop, self.iter_vertex_records()
        )

    def create_unique_constraint(self, label: str, prop: str) -> None:
        """Enforce uniqueness of ``prop`` values among ``:label``
        vertices (validates existing data first)."""
        self.constraints.create_unique(label, prop, self.iter_vertex_records())

    def drop_unique_constraint(self, label: str, prop: str) -> None:
        """Remove a unique constraint."""
        self.constraints.drop_unique(label, prop)

    # -- raw access for the temporal engine and GC ----------------------------

    def vertex_record(self, gid: int) -> Optional[VertexRecord]:
        return self._vertices.get(gid)

    def edge_record(self, gid: int) -> Optional[EdgeRecord]:
        return self._edges.get(gid)

    def iter_vertex_records(self) -> Iterator[VertexRecord]:
        with self._lock:
            return iter(list(self._vertices.values()))

    def iter_edge_records(self) -> Iterator[EdgeRecord]:
        with self._lock:
            return iter(list(self._edges.values()))

    def drop_record(self, record) -> None:
        """Remove a fully reclaimed, deleted record (GC callback)."""
        with self._lock:
            if isinstance(record, VertexRecord):
                self._vertices.pop(record.gid, None)
                self.indexes.forget_vertex(record.gid)
            else:
                self._edges.pop(record.gid, None)

    # -- accounting -------------------------------------------------------------

    def vertex_count(self) -> int:
        return len(self._vertices)

    def edge_count(self) -> int:
        return len(self._edges)

    def approximate_bytes(self) -> int:
        """Wire-size model of the whole current store (records only;
        undo deltas are transient and excluded, as in the paper where
        they are reclaimed by GC)."""
        with self._lock:
            total = sum(r.approximate_bytes() for r in self._vertices.values())
            total += sum(r.approximate_bytes() for r in self._edges.values())
            return total
