"""The in-place edge record of the current store."""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.common.serde import encoded_size
from repro.common.timeutil import MIN_TIMESTAMP
from repro.mvcc.delta import Delta


class EdgeRecord:
    """Mutable current-state edge (plus its version chain head).

    Endpoints are stored by gid; the vertex adjacency stubs
    (:class:`~repro.graph.vertex.EdgeRef`) are the structure the query
    engine actually traverses, so an edge record is only consulted for
    its type, properties and transaction time.
    """

    __slots__ = (
        "gid",
        "edge_type",
        "from_gid",
        "to_gid",
        "properties",
        "deleted",
        "delta_head",
        "tt_start",
        "lock",
    )

    def __init__(
        self, gid: int, edge_type: str, from_gid: int, to_gid: int
    ) -> None:
        self.gid = gid
        self.edge_type = edge_type
        self.from_gid = from_gid
        self.to_gid = to_gid
        self.properties: dict[str, Any] = {}
        self.deleted = False
        self.delta_head: Optional[Delta] = None
        self.tt_start = MIN_TIMESTAMP
        self.lock = threading.RLock()

    @property
    def kind(self) -> str:
        return "edge"

    def approximate_bytes(self) -> int:
        """Wire-size model of the record (storage accounting)."""
        size = 8 * 3  # gid + both endpoints
        size += encoded_size(self.edge_type)
        size += encoded_size(self.properties)
        size += 8  # transaction-time field
        return size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "deleted" if self.deleted else "live"
        return (
            f"EdgeRecord(gid={self.gid}, {state}, "
            f"{self.from_gid}-[{self.edge_type}]->{self.to_gid})"
        )
