"""Property-map helpers: validation, diffing and size accounting.

Properties are plain ``dict[str, value]`` with values restricted to the
types the serializer understands.  The diff helpers produce the
*backward* diffs the history store persists ("we only maintain the
difference compared to the new version", paper Example 3).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.common.serde import encode_value

#: Types allowed as property values (lists/dicts may nest these).
ALLOWED_SCALARS = (type(None), bool, int, float, str, bytes)


def validate_value(value: Any) -> None:
    """Raise ``TypeError`` unless ``value`` is storable."""
    if isinstance(value, ALLOWED_SCALARS):
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            validate_value(item)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError("property map keys must be strings")
            validate_value(item)
        return
    raise TypeError(f"unsupported property value type: {type(value)!r}")


def validate_properties(properties: dict[str, Any]) -> None:
    """Validate a whole property map."""
    for name, value in properties.items():
        if not isinstance(name, str) or not name:
            raise TypeError("property names must be non-empty strings")
        validate_value(value)


def backward_diff(
    new: dict[str, Any], old: dict[str, Any]
) -> dict[str, Optional[Any]]:
    """Diff that turns ``new`` back into ``old`` when applied.

    Keys present in the result map to the value they must take in the
    older version; ``None`` under the reserved marker semantics used by
    the delta payloads means "property absent in the older version".
    The diff is minimal: unchanged keys are omitted.
    """
    diff: dict[str, Optional[Any]] = {}
    for name, old_value in old.items():
        if name not in new or new[name] != old_value:
            diff[name] = old_value
    for name in new:
        if name not in old:
            diff[name] = None
    return diff


def apply_diff(
    properties: dict[str, Any], diff: dict[str, Optional[Any]]
) -> dict[str, Any]:
    """Apply a backward diff, returning the older property map."""
    result = dict(properties)
    for name, value in diff.items():
        if value is None:
            result.pop(name, None)
        else:
            result[name] = value
    return result


def properties_size(properties: dict[str, Any]) -> int:
    """Bytes the map would occupy on the wire (storage accounting)."""
    return len(encode_value(properties))
