"""Label and label+property indexes over the current store.

Memgraph-style semantics: an index holds *candidate* gids inserted at
write time, without versioning; a reader must re-verify each candidate
against its own snapshot (label still present, value still equal,
object visible).  Deleted objects leave stale entries that are swept
when the record itself is reclaimed.  This keeps the write path cheap —
important for the Figure 6(b) throughput experiment — at the cost of
a visibility check per candidate, exactly the trade Memgraph makes.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Iterator, Optional

from repro.errors import GraphError


class _LabelIndex:
    def __init__(self, label: str) -> None:
        self.label = label
        self.gids: set[int] = set()


class _LabelPropertyIndex:
    def __init__(self, label: str, prop: str) -> None:
        self.label = label
        self.prop = prop
        self.by_value: dict[Any, set[int]] = {}
        self._sorted_values: list = []

    def add(self, value: Any, gid: int) -> None:
        try:
            bucket = self.by_value.get(value)
        except TypeError:
            return  # unhashable value: not indexable
        if bucket is None:
            self.by_value[value] = {gid}
            try:
                bisect.insort(self._sorted_values, value)
            except TypeError:
                # mixed-type values: keep equality lookups, drop ordering
                self._sorted_values = []
        else:
            bucket.add(gid)

    def forget(self, gid: int) -> None:
        for bucket in self.by_value.values():
            bucket.discard(gid)

    def lookup(self, value: Any) -> set[int]:
        return set(self.by_value.get(value, ()))

    def lookup_range(
        self, low: Any, high: Any, include_low: bool, include_high: bool
    ) -> set[int]:
        result: set[int] = set()
        if self._sorted_values:
            lo = (
                bisect.bisect_left(self._sorted_values, low)
                if include_low
                else bisect.bisect_right(self._sorted_values, low)
            )
            hi = (
                bisect.bisect_right(self._sorted_values, high)
                if include_high
                else bisect.bisect_left(self._sorted_values, high)
            )
            for value in self._sorted_values[lo:hi]:
                result |= self.by_value.get(value, set())
            return result
        for value, bucket in self.by_value.items():  # ordering lost; scan
            try:
                above = value > low or (include_low and value == low)
                below = value < high or (include_high and value == high)
            except TypeError:
                continue
            if above and below:
                result |= bucket
        return result


class IndexRegistry:
    """All indexes of one graph storage."""

    def __init__(self) -> None:
        self._labels: dict[str, _LabelIndex] = {}
        self._label_props: dict[tuple[str, str], _LabelPropertyIndex] = {}
        self._lock = threading.RLock()

    # -- creation ---------------------------------------------------------

    def create_label_index(self, label: str, records: Iterator) -> None:
        """Create (and backfill) an index on ``label``."""
        with self._lock:
            if label in self._labels:
                raise GraphError(f"label index on :{label} already exists")
            index = _LabelIndex(label)
            for record in records:
                if not record.deleted and label in record.labels:
                    index.gids.add(record.gid)
            self._labels[label] = index

    def create_label_property_index(
        self, label: str, prop: str, records: Iterator
    ) -> None:
        """Create (and backfill) an index on ``(:label {prop})``."""
        with self._lock:
            key = (label, prop)
            if key in self._label_props:
                raise GraphError(f"index on :{label}({prop}) already exists")
            index = _LabelPropertyIndex(label, prop)
            for record in records:
                if (
                    not record.deleted
                    and label in record.labels
                    and prop in record.properties
                ):
                    index.add(record.properties[prop], record.gid)
            self._label_props[key] = index

    def has_label_index(self, label: str) -> bool:
        return label in self._labels

    def has_label_property_index(self, label: str, prop: str) -> bool:
        return (label, prop) in self._label_props

    # -- maintenance --------------------------------------------------------

    def notify_vertex_write(self, record, txn) -> None:
        """Register a (possibly uncommitted) record state as candidate."""
        with self._lock:
            for label, index in self._labels.items():
                if label in record.labels:
                    index.gids.add(record.gid)
            for (label, prop), index in self._label_props.items():
                if label in record.labels and prop in record.properties:
                    index.add(record.properties[prop], record.gid)

    def forget_vertex(self, gid: int) -> None:
        """Drop a reclaimed vertex from every index."""
        with self._lock:
            for index in self._labels.values():
                index.gids.discard(gid)
            for index in self._label_props.values():
                index.forget(gid)

    # -- lookups -----------------------------------------------------------

    def candidates_by_label(self, label: str) -> Optional[set[int]]:
        """Candidate gids for ``:label``, or None when unindexed."""
        with self._lock:
            index = self._labels.get(label)
            return set(index.gids) if index is not None else None

    def candidates_by_value(
        self, label: str, prop: str, value: Any
    ) -> Optional[set[int]]:
        """Candidate gids for ``:label {prop: value}``, or None."""
        with self._lock:
            index = self._label_props.get((label, prop))
            return index.lookup(value) if index is not None else None

    def candidates_by_range(
        self,
        label: str,
        prop: str,
        low: Any,
        high: Any,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Optional[set[int]]:
        """Candidate gids for a value range, or None when unindexed."""
        with self._lock:
            index = self._label_props.get((label, prop))
            if index is None:
                return None
            return index.lookup_range(low, high, include_low, include_high)
