"""Property-graph storage on the MVCC substrate (the "current store").

Vertices and edges are updated in place; every change creates an undo
delta chained newest-to-oldest (see :mod:`repro.mvcc`).  This package
is the stand-in for Memgraph's native storage: AeonG keeps it as the
*current data storage engine* and attaches the historical store beside
it (paper section 3.1).
"""

from repro.graph.edge import EdgeRecord
from repro.graph.storage import GraphStorage
from repro.graph.vertex import EdgeRef, VertexRecord
from repro.graph.views import EdgeView, VertexView

__all__ = [
    "GraphStorage",
    "VertexRecord",
    "EdgeRecord",
    "EdgeRef",
    "VertexView",
    "EdgeView",
]
