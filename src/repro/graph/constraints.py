"""Unique constraints on (label, property) pairs.

The standard graph-database guarantee (Memgraph/Neo4j ``CREATE
CONSTRAINT ... IS UNIQUE``): at most one vertex with a given label may
carry a given value of the property.  Enforcement is claim-based and
transactional:

- a write that would give a constrained (label, value) pair to a
  vertex *claims* the value; a conflicting live claim raises
  :class:`~repro.errors.ConstraintViolation` immediately (first-writer
  wins, like the write-write conflict rule);
- claims made by a transaction are released again if it aborts
  (registered as abort hooks);
- removals (property unset, label removed, vertex deleted) release the
  claim — re-claimable by the *same* transaction or, after commit, by
  anyone.

Claims deliberately cover uncommitted writers: two concurrent inserts
of the same value must not both commit, and under first-writer-wins
the second simply fails fast.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import ConstraintViolation, GraphError


class _Unique:
    def __init__(self, label: str, prop: str) -> None:
        self.label = label
        self.prop = prop
        self.claims: dict[Any, int] = {}  # value -> owning gid


class ConstraintRegistry:
    """All unique constraints of one graph storage."""

    def __init__(self) -> None:
        self._unique: dict[tuple[str, str], _Unique] = {}
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._unique)

    def has_unique(self, label: str, prop: str) -> bool:
        return (label, prop) in self._unique

    def create_unique(self, label: str, prop: str, records) -> None:
        """Install a constraint, validating existing committed data."""
        with self._lock:
            key = (label, prop)
            if key in self._unique:
                raise GraphError(
                    f"unique constraint on (:{label}, {prop}) already exists"
                )
            constraint = _Unique(label, prop)
            for record in records:
                if record.deleted or label not in record.labels:
                    continue
                value = record.properties.get(prop)
                if value is None:
                    continue
                hashable = _hashable(value, label, prop)
                existing = constraint.claims.get(hashable)
                if existing is not None and existing != record.gid:
                    raise ConstraintViolation(
                        f"cannot create unique constraint on (:{label}, "
                        f"{prop}): value {value!r} held by vertices "
                        f"{existing} and {record.gid}"
                    )
                constraint.claims[hashable] = record.gid
            self._unique[key] = constraint

    def drop_unique(self, label: str, prop: str) -> None:
        with self._lock:
            if (label, prop) not in self._unique:
                raise GraphError(f"no unique constraint on (:{label}, {prop})")
            del self._unique[(label, prop)]

    # -- write-path enforcement -------------------------------------------

    def claim(self, txn, label: str, prop: str, value: Any, gid: int) -> None:
        """Reserve ``value`` for ``gid``; rolls back on transaction abort."""
        constraint = self._unique.get((label, prop))
        if constraint is None or value is None:
            return
        hashable = _hashable(value, label, prop)
        with self._lock:
            owner = constraint.claims.get(hashable)
            if owner is not None and owner != gid:
                raise ConstraintViolation(
                    f"unique constraint (:{label}, {prop}): value {value!r} "
                    f"already used by vertex {owner}"
                )
            if owner == gid:
                return
            constraint.claims[hashable] = gid
        txn.on_abort(lambda: self._release(constraint, hashable, gid))

    def release(self, txn, label: str, prop: str, value: Any, gid: int) -> None:
        """Give a value back; restored if the transaction aborts."""
        constraint = self._unique.get((label, prop))
        if constraint is None or value is None:
            return
        hashable = _hashable(value, label, prop)
        with self._lock:
            if constraint.claims.get(hashable) != gid:
                return
            del constraint.claims[hashable]
        txn.on_abort(lambda: self._reclaim(constraint, hashable, gid))

    def _release(self, constraint: _Unique, hashable, gid: int) -> None:
        with self._lock:
            if constraint.claims.get(hashable) == gid:
                del constraint.claims[hashable]

    def _reclaim(self, constraint: _Unique, hashable, gid: int) -> None:
        with self._lock:
            constraint.claims.setdefault(hashable, gid)

    # -- helpers the storage write paths call --------------------------------

    def check_vertex_write(
        self,
        txn,
        record,
        new_labels: set[str],
        new_properties: dict[str, Any],
    ) -> None:
        """Claim/release around one vertex mutation.

        Called *before* the in-place change with the record still in
        its old state; ``new_labels``/``new_properties`` describe the
        post-write state.
        """
        if not self._unique:
            return
        for (label, prop), _constraint in list(self._unique.items()):
            old_applies = label in record.labels
            new_applies = label in new_labels
            old_value = record.properties.get(prop) if old_applies else None
            new_value = new_properties.get(prop) if new_applies else None
            if old_value == new_value and old_applies == new_applies:
                continue
            if old_applies and old_value is not None:
                self.release(txn, label, prop, old_value, record.gid)
            if new_applies and new_value is not None:
                self.claim(txn, label, prop, new_value, record.gid)

    def check_new_vertex(
        self, txn, gid: int, labels: set[str], properties: dict[str, Any]
    ) -> None:
        if not self._unique:
            return
        for (label, prop), _constraint in list(self._unique.items()):
            if label in labels and properties.get(prop) is not None:
                self.claim(txn, label, prop, properties[prop], gid)


def _hashable(value: Any, label: str, prop: str):
    try:
        hash(value)
        return value
    except TypeError:
        raise ConstraintViolation(
            f"unique constraint (:{label}, {prop}) cannot index "
            f"unhashable value {value!r}"
        ) from None
