"""Materialized version views and undo application.

A *view* is an immutable-by-convention copy of one version of a vertex
or edge.  Starting from the in-place record (the newest version), the
reader repeatedly applies undo deltas to step the view backwards in
time; each step also narrows the view's transaction-time interval to
the one recorded on the delta.  Both snapshot-isolation reads and
temporal scans are built from this single primitive.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.common.timeutil import MAX_TIMESTAMP
from repro.errors import StorageError
from repro.graph.edge import EdgeRecord
from repro.graph.vertex import EdgeRef, VertexRecord
from repro.mvcc.delta import Delta, DeltaAction
from repro.mvcc.transaction import Transaction, delta_visible_at


class VertexView:
    """One version of a vertex, detached from the record.

    Views are copy-on-write: construction *shares* the record's label
    set, property map and adjacency lists (scans materialize a view per
    candidate, so this keeps an unindexed scan allocation-free) and the
    shared containers are only copied by the first mutating step.
    Treat views as read-only snapshots; mutate through the engine API.
    """

    __slots__ = (
        "gid",
        "labels",
        "properties",
        "out_edges",
        "in_edges",
        "exists",
        "tt_start",
        "tt_end",
        "_owned",
    )

    def __init__(self, record: VertexRecord) -> None:
        self.gid = record.gid
        self.labels = record.labels
        self.properties = record.properties
        self.out_edges = record.out_edges
        self.in_edges = record.in_edges
        self.exists = not record.deleted
        self.tt_start = record.tt_start
        self.tt_end = MAX_TIMESTAMP
        self._owned = False

    def _own(self) -> None:
        if not self._owned:
            self.labels = set(self.labels)
            self.properties = dict(self.properties)
            self.out_edges = list(self.out_edges)
            self.in_edges = list(self.in_edges)
            self._owned = True

    @classmethod
    def blank(cls, gid: int, tt_start: int, tt_end: int) -> "VertexView":
        """A non-existent placeholder version (reconstruction base for
        objects already reclaimed from the current store)."""
        view = object.__new__(cls)
        view.gid = gid
        view.labels = set()
        view.properties = {}
        view.out_edges = []
        view.in_edges = []
        view.exists = False
        view.tt_start = tt_start
        view.tt_end = tt_end
        view._owned = True
        return view

    def step_back(self, delta: Delta) -> None:
        """Apply one undo delta, turning this view into the older version."""
        action = delta.action
        if action == DeltaAction.SET_PROPERTY:
            self._own()
            name, old_value = delta.payload
            if old_value is None:
                self.properties.pop(name, None)
            else:
                self.properties[name] = old_value
        elif action == DeltaAction.ADD_LABEL:
            self._own()
            self.labels.add(delta.payload)
        elif action == DeltaAction.REMOVE_LABEL:
            self._own()
            self.labels.discard(delta.payload)
        elif action == DeltaAction.ADD_OUT_EDGE:
            self._own()
            self.out_edges.append(EdgeRef(*delta.payload))
        elif action == DeltaAction.ADD_IN_EDGE:
            self._own()
            self.in_edges.append(EdgeRef(*delta.payload))
        elif action == DeltaAction.REMOVE_OUT_EDGE:
            self._own()
            ref = EdgeRef(*delta.payload)
            self.out_edges = [r for r in self.out_edges if r.edge_gid != ref.edge_gid]
        elif action == DeltaAction.REMOVE_IN_EDGE:
            self._own()
            ref = EdgeRef(*delta.payload)
            self.in_edges = [r for r in self.in_edges if r.edge_gid != ref.edge_gid]
        elif action == DeltaAction.RECREATE_OBJECT:
            self.exists = True
        elif action == DeltaAction.DELETE_OBJECT:
            self.exists = False
        else:  # pragma: no cover - exhaustive over DeltaAction
            raise StorageError(f"cannot apply {action} to a vertex view")
        self.tt_start = delta.tt_start
        self.tt_end = delta.tt_end

    @property
    def tt(self) -> tuple[int, int]:
        return (self.tt_start, self.tt_end)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VertexView(gid={self.gid}, exists={self.exists},"
            f" tt=[{self.tt_start},{self.tt_end}))"
        )


class EdgeView:
    """One version of an edge, detached from the record.

    Copy-on-write like :class:`VertexView`: the property map is shared
    with the record until the first mutating step.
    """

    __slots__ = (
        "gid",
        "edge_type",
        "from_gid",
        "to_gid",
        "properties",
        "exists",
        "tt_start",
        "tt_end",
        "_owned",
    )

    def __init__(self, record: EdgeRecord) -> None:
        self.gid = record.gid
        self.edge_type = record.edge_type
        self.from_gid = record.from_gid
        self.to_gid = record.to_gid
        self.properties = record.properties
        self.exists = not record.deleted
        self.tt_start = record.tt_start
        self.tt_end = MAX_TIMESTAMP
        self._owned = False

    def _own(self) -> None:
        if not self._owned:
            self.properties = dict(self.properties)
            self._owned = True

    @classmethod
    def blank(cls, gid: int, tt_start: int, tt_end: int) -> "EdgeView":
        """A non-existent placeholder version (reconstruction base)."""
        view = object.__new__(cls)
        view.gid = gid
        view.edge_type = ""
        view.from_gid = -1
        view.to_gid = -1
        view.properties = {}
        view.exists = False
        view.tt_start = tt_start
        view.tt_end = tt_end
        view._owned = True
        return view

    def step_back(self, delta: Delta) -> None:
        """Apply one undo delta, turning this view into the older version."""
        action = delta.action
        if action == DeltaAction.SET_PROPERTY:
            self._own()
            name, old_value = delta.payload
            if old_value is None:
                self.properties.pop(name, None)
            else:
                self.properties[name] = old_value
        elif action == DeltaAction.RECREATE_OBJECT:
            self.exists = True
        elif action == DeltaAction.DELETE_OBJECT:
            self.exists = False
        else:  # pragma: no cover - exhaustive over edge-legal actions
            raise StorageError(f"cannot apply {action} to an edge view")
        self.tt_start = delta.tt_start
        self.tt_end = delta.tt_end

    @property
    def tt(self) -> tuple[int, int]:
        return (self.tt_start, self.tt_end)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EdgeView(gid={self.gid}, exists={self.exists},"
            f" tt=[{self.tt_start},{self.tt_end}))"
        )


def visible_view(record, txn: Transaction):
    """Materialize the version of ``record`` visible to ``txn``.

    Implements snapshot isolation: undo every delta whose change is not
    part of the transaction's snapshot, stop at the first visible one
    (chains are newest-to-oldest with decreasing commit timestamps).
    Returns ``None`` when the visible version does not exist (deleted,
    or created after the snapshot).
    """
    view = VertexView(record) if isinstance(record, VertexRecord) else EdgeView(record)
    delta = record.delta_head
    while delta is not None:
        if delta_visible_at(delta, txn.start_ts, txn):
            break
        view.step_back(delta)
        delta = delta.next
    return view if view.exists else None


def version_iterator(record, txn: Transaction) -> Iterator:
    """Yield every version of ``record`` in the current store, newest
    first, starting from the version visible to ``txn``.

    This is the "current data storage" half of the paper's Algorithm 2
    (the loop over ``v ∪ v.deltas``): uncommitted foreign changes are
    skipped via the snapshot check, then each unreclaimed historical
    version is surfaced for the temporal check.  Versions where the
    object did not exist are not yielded.
    """
    view = VertexView(record) if isinstance(record, VertexRecord) else EdgeView(record)
    delta = record.delta_head
    # First, roll back changes invisible to the snapshot (SnapshotCheck).
    while delta is not None and not delta_visible_at(delta, txn.start_ts, txn):
        view.step_back(delta)
        delta = delta.next
    if view.exists:
        yield view
        # Detach lazily: this line only runs if the consumer resumes
        # the generator, so a point query that stops at the first
        # version never pays for a copy.
        view = _copy_view(view)
    # Then surface older, unreclaimed versions for temporal filtering.
    # Versions are transaction-granular: all consecutive deltas sharing
    # one commit info describe a single version transition and must be
    # applied together before the older version is surfaced.  Purely
    # structural transitions do not create content versions (that is
    # what the separate structural transaction-time field is for), so
    # a group is only surfaced when it touched content, and the
    # surfaced interval is the content timeline's.
    while delta is not None:
        commit_info = delta.commit_info
        content_tt = None
        while delta is not None and delta.commit_info is commit_info:
            view.step_back(delta)
            if not delta.is_structural:
                content_tt = (delta.tt_start, delta.tt_end)
            delta = delta.next
        if content_tt is not None and view.exists:
            view.tt_start, view.tt_end = content_tt
            yield view
            view = _copy_view(view)


def oldest_unreclaimed_view(record):
    """The view after applying the *entire* delta chain.

    This is "the object's oldest version from current storage"
    (Algorithm 2 line 14), the base ``FetchFromKV`` reconstructs from
    when no anchor supersedes it.  The result may be a non-existent
    placeholder (the chain still holds the creation delta), which the
    history store handles by finding nothing older.
    """
    view = VertexView(record) if isinstance(record, VertexRecord) else EdgeView(record)
    delta = record.delta_head
    content_tt = (view.tt_start, view.tt_end)
    while delta is not None:
        view.step_back(delta)
        if not delta.is_structural:
            content_tt = (delta.tt_start, delta.tt_end)
        delta = delta.next
    # The base's interval is the content timeline's: reclaimed content
    # records all end at or before it, which is what the history
    # store's collection boundary relies on.
    view.tt_start, view.tt_end = content_tt
    return view


def _copy_view(view):
    """Snapshot a mutable stepping view into an independent object."""
    clone = object.__new__(type(view))
    for slot in type(view).__slots__:
        value = getattr(view, slot)
        if isinstance(value, set):
            value = set(value)
        elif isinstance(value, dict):
            value = dict(value)
        elif isinstance(value, list):
            value = list(value)
        setattr(clone, slot, value)
    clone._owned = True  # the clone got fresh containers above
    return clone
