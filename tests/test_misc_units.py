"""Assorted unit tests: merge iterators, id allocation, latency
recorder, rendering, and temporal label-change corners."""

from __future__ import annotations

import pytest

from repro import AeonG
from repro.common.ids import GidAllocator
from repro.core.stats import LatencyRecorder, StorageReport
from repro.kvstore.api import Entry, WriteBatch
from repro.kvstore.iterator import bounded, entries, merge_runs


class TestMergeRuns:
    def test_newest_run_wins(self):
        newest = [(b"a", b"new"), (b"b", b"1")]
        oldest = [(b"a", b"old"), (b"c", b"2")]
        merged = dict(merge_runs([iter(newest), iter(oldest)]))
        assert merged == {b"a": b"new", b"b": b"1", b"c": b"2"}

    def test_tombstone_suppresses_key(self):
        newest = [(b"a", None)]
        oldest = [(b"a", b"old")]
        assert list(merge_runs([iter(newest), iter(oldest)])) == []

    def test_keep_tombstones_for_compaction(self):
        newest = [(b"a", None)]
        oldest = [(b"a", b"old")]
        merged = list(
            merge_runs([iter(newest), iter(oldest)], keep_tombstones=True)
        )
        assert merged == [(b"a", None)]

    def test_bounded_stops_at_prefix_end(self):
        source = iter([(b"p1", b"x"), (b"p2", b"y"), (b"q", b"z")])
        assert list(bounded(source, b"p")) == [(b"p1", b"x"), (b"p2", b"y")]

    def test_entries_drops_tombstones(self):
        source = iter([(b"a", b"1"), (b"b", None)])
        assert list(entries(source)) == [Entry(b"a", b"1")]

    def test_empty_runs(self):
        assert list(merge_runs([iter([]), iter([])])) == []


class TestGidAllocator:
    def test_monotone_unique(self):
        allocator = GidAllocator()
        gids = [allocator.allocate() for _ in range(10)]
        assert gids == sorted(set(gids))

    def test_allocate_up_to(self):
        allocator = GidAllocator()
        allocator.allocate()
        allocator.allocate_up_to(100)
        assert allocator.allocate() == 100

    def test_allocate_up_to_never_goes_backwards(self):
        allocator = GidAllocator()
        for _ in range(5):
            allocator.allocate()
        allocator.allocate_up_to(2)
        assert allocator.allocate() == 5


class TestWriteBatch:
    def test_later_op_wins(self):
        batch = WriteBatch()
        batch.put(b"k", b"1")
        batch.delete(b"k")
        assert dict(batch.items()) == {b"k": None}

    def test_clear_and_bool(self):
        batch = WriteBatch()
        assert not batch
        batch.put(b"k", b"1")
        assert batch and len(batch) == 1
        batch.clear()
        assert not batch

    def test_validation(self):
        batch = WriteBatch()
        with pytest.raises(ValueError):
            batch.put(b"", b"v")
        with pytest.raises(TypeError):
            batch.put(b"k", 5)


class TestStats:
    def test_latency_percentiles(self):
        recorder = LatencyRecorder(samples_us=[float(v) for v in range(1, 101)])
        assert recorder.count == 100
        assert recorder.mean_us == pytest.approx(50.5)
        assert recorder.p50_us == pytest.approx(50.0, abs=1.0)
        assert recorder.p99_us >= 98.0

    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert recorder.mean_us == 0.0
        assert recorder.p50_us == 0.0

    def test_storage_report_str(self):
        report = StorageReport(
            current_bytes=10, history_bytes=5, vertex_count=2, edge_count=1
        )
        assert report.total_bytes == 15
        assert "current=10B" in str(report)


class TestRendering:
    def test_return_edge_renders_fully(self):
        db = AeonG(gc_interval_transactions=0)
        db.execute("CREATE (a:X {n: 1})")
        db.execute("CREATE (b:X {n: 2})")
        db.execute(
            "MATCH (a:X {n:1}), (b:X {n:2}) CREATE (a)-[:T {w: 9}]->(b)"
        )
        rows = db.execute("MATCH (a)-[r:T]->(b) RETURN r")
        rendered = rows[0]["r"]
        assert rendered["type"] == "T"
        assert rendered["properties"] == {"w": 9}
        assert rendered["from"] != rendered["to"]
        assert rendered["tt"][1] > rendered["tt"][0]

    def test_return_edge_list_from_var_length(self):
        db = AeonG(gc_interval_transactions=0)
        db.execute("CREATE (a:X {n: 1})")
        db.execute("CREATE (b:X {n: 2})")
        db.execute(
            "MATCH (a:X {n:1}), (b:X {n:2}) CREATE (a)-[:T]->(b)"
        )
        rows = db.execute("MATCH (a:X {n:1})-[r:T*1..2]->(b) RETURN r")
        assert isinstance(rows[0]["r"], list)
        assert rows[0]["r"][0]["type"] == "T"


class TestLabelChangeHistory:
    """Label evolution across GC: the old label must still find the
    old versions — the subtle case the scan's pruning must not lose."""

    def _relabeled(self):
        db = AeonG(anchor_interval=2, gc_interval_transactions=0)
        with db.transaction() as txn:
            gid = db.create_vertex(txn, ["Draft"], {"title": "t"})
        t_draft = db.now()
        with db.transaction() as txn:
            db.add_label(txn, gid, "Published")
            db.remove_label(txn, gid, "Draft")
        db.collect_garbage()
        return db, gid, t_draft

    def test_old_label_found_historically(self):
        db, gid, t_draft = self._relabeled()
        rows = db.execute(
            f"MATCH (n:Draft) TT SNAPSHOT {t_draft - 1} RETURN n.title"
        )
        assert rows == [{"n.title": "t"}]
        assert db.execute("MATCH (n:Draft) RETURN count(*) AS c") == [{"c": 0}]

    def test_new_label_absent_historically(self):
        db, gid, t_draft = self._relabeled()
        rows = db.execute(
            f"MATCH (n:Published) TT SNAPSHOT {t_draft - 1} RETURN count(*) AS c"
        )
        assert rows == [{"c": 0}]
        assert db.execute(
            "MATCH (n:Published) RETURN count(*) AS c"
        ) == [{"c": 1}]

    def test_slice_sees_both_labels(self):
        db, gid, _t = self._relabeled()
        rows = db.execute(
            f"MATCH (n:Draft) TT BETWEEN 0 AND {db.now()} RETURN count(*) AS c"
        )
        assert rows[0]["c"] >= 1
        rows = db.execute(
            f"MATCH (n:Published) TT BETWEEN 0 AND {db.now()} "
            "RETURN count(*) AS c"
        )
        assert rows[0]["c"] >= 1
