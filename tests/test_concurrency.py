"""Concurrency tests: parallel writers, readers during GC/migration.

These exercise the locking the paper's design depends on — user
transactions proceed while the garbage collector migrates history in
the background ("asynchronously ... lightweight to the original
databases").
"""

from __future__ import annotations

import threading

from repro import AeonG, ResilienceConfig, RetryPolicy, TemporalCondition
from repro.errors import SerializationConflict


def test_parallel_disjoint_writers_all_commit():
    db = AeonG(gc_interval_transactions=0)
    gids = []
    with db.transaction() as txn:
        for i in range(8):
            gids.append(db.create_vertex(txn, ["C"], {"slot": i, "v": 0}))
    errors = []

    def worker(gid):
        try:
            for value in range(25):
                with db.transaction() as txn:
                    db.set_vertex_property(txn, gid, "v", value)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(g,)) for g in gids]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    with db.transaction() as txn:
        for gid in gids:
            assert db.get_vertex(txn, gid).properties["v"] == 24


def test_conflicting_writers_one_wins():
    db = AeonG(gc_interval_transactions=0)
    with db.transaction() as txn:
        gid = db.create_vertex(txn, ["C"], {"v": 0})
    outcomes = {"committed": 0, "aborted": 0}
    lock = threading.Lock()
    barrier = threading.Barrier(4)

    def worker(value):
        barrier.wait()
        txn = db.begin()
        try:
            db.set_vertex_property(txn, gid, "v", value)
            db.commit(txn)
            with lock:
                outcomes["committed"] += 1
        except SerializationConflict:
            db.abort(txn)
            with lock:
                outcomes["aborted"] += 1

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert outcomes["committed"] >= 1
    assert outcomes["committed"] + outcomes["aborted"] == 4


def test_counter_increments_never_lost():
    """Retry-on-conflict increments must serialize to the exact total."""
    db = AeonG(gc_interval_transactions=0)
    with db.transaction() as txn:
        gid = db.create_vertex(txn, ["C"], {"n": 0})
    increments_per_thread = 20

    def worker():
        for _ in range(increments_per_thread):
            while True:
                txn = db.begin()
                try:
                    current = db.get_vertex(txn, gid).properties["n"]
                    db.set_vertex_property(txn, gid, "n", current + 1)
                    db.commit(txn)
                    break
                except SerializationConflict:
                    db.abort(txn)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    with db.transaction() as txn:
        assert db.get_vertex(txn, gid).properties["n"] == 80


def test_run_transaction_storm_exact_total():
    """Same contract as the manual retry loop above, but through the
    engine's run_transaction retry driver: no increment may be lost or
    double-applied under a deliberate conflict storm."""
    db = AeonG(gc_interval_transactions=0)
    with db.transaction() as txn:
        gid = db.create_vertex(txn, ["C"], {"n": 0})
    n_threads, increments = 5, 20
    policy = RetryPolicy(max_attempts=500, base_delay=0.0002, max_delay=0.005)
    errors = []

    def worker():
        try:
            for _ in range(increments):
                db.run_transaction(
                    lambda txn: db.set_vertex_property(
                        txn, gid, "n", db.get_vertex(txn, gid).properties["n"] + 1
                    ),
                    policy=policy,
                )
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    with db.transaction() as txn:
        assert db.get_vertex(txn, gid).properties["n"] == n_threads * increments
    metrics = db.metrics()["resilience"]
    assert metrics["retries_exhausted"] == 0


def test_admission_gate_under_concurrent_load():
    """With fewer slots than writers, every transaction still commits —
    the gate queues rather than rejects when the deadline is generous."""
    db = AeonG(
        gc_interval_transactions=0,
        resilience=ResilienceConfig(
            max_concurrent_transactions=2, admission_timeout=10.0
        ),
    )
    gids = []
    with db.transaction() as txn:
        for i in range(6):
            gids.append(db.create_vertex(txn, ["C"], {"slot": i, "v": 0}))
    errors = []

    def worker(gid):
        try:
            for value in range(10):
                with db.transaction() as txn:
                    db.set_vertex_property(txn, gid, "v", value)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(g,)) for g in gids]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    with db.transaction() as txn:
        for gid in gids:
            assert db.get_vertex(txn, gid).properties["v"] == 9
    metrics = db.metrics()["resilience"]["admission"]
    assert metrics["rejected"] == 0
    assert metrics["in_flight"] == 0
    assert metrics["admitted"] >= 6 * 10


def test_readers_stable_while_gc_runs():
    db = AeonG(anchor_interval=3, gc_interval_transactions=0)
    with db.transaction() as txn:
        gid = db.create_vertex(txn, ["C"], {"v": 0})
    stamps = []
    for value in range(1, 40):
        with db.transaction() as txn:
            db.set_vertex_property(txn, gid, "v", value)
        stamps.append((db.now() - 1, value))
    stop = threading.Event()
    failures = []

    def gc_loop():
        while not stop.is_set():
            db.collect_garbage()

    def read_loop():
        try:
            for _ in range(30):
                for ts, value in stamps[::5]:
                    view = next(
                        db.vertex_versions(
                            db.begin(), gid, TemporalCondition.as_of(ts)
                        )
                    )
                    assert view.properties["v"] == value, (ts, value)
        except Exception as exc:  # pragma: no cover - failure reporting
            failures.append(exc)

    gc_thread = threading.Thread(target=gc_loop)
    readers = [threading.Thread(target=read_loop) for _ in range(3)]
    gc_thread.start()
    for r in readers:
        r.start()
    for r in readers:
        r.join()
    stop.set()
    gc_thread.join()
    assert failures == []


def test_writers_during_gc_preserve_history():
    db = AeonG(anchor_interval=2, gc_interval_transactions=0)
    with db.transaction() as txn:
        gid = db.create_vertex(txn, ["C"], {"v": -1})
    stop = threading.Event()

    def gc_loop():
        while not stop.is_set():
            db.collect_garbage()

    gc_thread = threading.Thread(target=gc_loop)
    gc_thread.start()
    stamps = []
    try:
        for value in range(60):
            with db.transaction() as txn:
                db.set_vertex_property(txn, gid, "v", value)
            stamps.append((db.now() - 1, value))
    finally:
        stop.set()
        gc_thread.join()
    db.collect_garbage()
    reader = db.begin()
    for ts, value in stamps:
        view = next(db.vertex_versions(reader, gid, TemporalCondition.as_of(ts)))
        assert view.properties["v"] == value
    db.abort(reader)
