"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import AeonG
from repro.baselines import AeonGBackend, ClockGBackend, TGQLBackend
from repro.workloads import bildbc, ldbc
from repro.workloads.driver import WorkloadDriver


@pytest.fixture
def db() -> AeonG:
    """A temporal engine with manual garbage collection."""
    return AeonG(anchor_interval=4, gc_interval_transactions=0)


@pytest.fixture
def db_no_temporal() -> AeonG:
    """The vanilla configuration (TGDB-noT)."""
    return AeonG(temporal=False, gc_interval_transactions=0)


@pytest.fixture(scope="session")
def small_ldbc():
    """A small LDBC dataset + Bi-LDBC stream shared across tests."""
    dataset = ldbc.generate(persons=25, seed=3)
    stream = bildbc.generate_operations(dataset, 200, seed=4)
    return dataset, stream


@pytest.fixture(scope="session")
def loaded_backends(small_ldbc):
    """All three systems loaded with the same data (read-only tests)."""
    dataset, stream = small_ldbc
    backends = [
        AeonGBackend(gc_interval_transactions=150),
        TGQLBackend(),
        ClockGBackend(snapshot_interval=80),
    ]
    for backend in backends:
        driver = WorkloadDriver(backend, seed=7)
        driver.apply(dataset.ops)
        driver.apply(stream.ops)
        driver.finish_load()
    return dataset, stream, backends
