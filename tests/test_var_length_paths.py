"""Variable-length path tests: parsing, traversal semantics, temporal
variable-length expansion."""

from __future__ import annotations

import pytest

from repro import AeonG
from repro.errors import ParseError
from repro.query.parser import parse


@pytest.fixture
def chain_db():
    """a -> b -> c -> d (KNOWS chain) plus a shortcut a -> c."""
    db = AeonG(gc_interval_transactions=0)
    for name in "abcd":
        db.execute(f"CREATE (n:P {{name: '{name}'}})")
    for src, dst in [("a", "b"), ("b", "c"), ("c", "d")]:
        db.execute(
            f"MATCH (x:P {{name:'{src}'}}), (y:P {{name:'{dst}'}}) "
            "CREATE (x)-[:KNOWS {w: 1}]->(y)"
        )
    db.execute(
        "MATCH (x:P {name:'a'}), (y:P {name:'c'}) "
        "CREATE (x)-[:KNOWS {w: 2}]->(y)"
    )
    return db


class TestParsing:
    def test_star_forms(self):
        rel = parse("MATCH (a)-[:K*]->(b) RETURN a").matches[0].patterns[0].rels[0]
        assert (rel.min_hops, rel.max_hops) == (1, 15)
        rel = parse("MATCH (a)-[:K*3]->(b) RETURN a").matches[0].patterns[0].rels[0]
        assert (rel.min_hops, rel.max_hops) == (3, 3)
        rel = parse("MATCH (a)-[:K*1..4]->(b) RETURN a").matches[0].patterns[0].rels[0]
        assert (rel.min_hops, rel.max_hops) == (1, 4)
        rel = parse("MATCH (a)-[:K*..4]->(b) RETURN a").matches[0].patterns[0].rels[0]
        assert (rel.min_hops, rel.max_hops) == (1, 4)
        rel = parse("MATCH (a)-[:K*2..]->(b) RETURN a").matches[0].patterns[0].rels[0]
        assert (rel.min_hops, rel.max_hops) == (2, 15)

    def test_plain_rel_is_not_variable_length(self):
        rel = parse("MATCH (a)-[:K]->(b) RETURN a").matches[0].patterns[0].rels[0]
        assert not rel.is_variable_length

    def test_bad_bounds_rejected(self):
        with pytest.raises(ParseError):
            parse("MATCH (a)-[:K*4..2]->(b) RETURN a")
        with pytest.raises(ParseError):
            parse("MATCH (a)-[:K*1..99]->(b) RETURN a")


class TestTraversal:
    def test_fixed_length(self, chain_db):
        rows = chain_db.execute(
            "MATCH (a:P {name:'a'})-[:KNOWS*2]->(x) "
            "RETURN x.name ORDER BY x.name"
        )
        # a->b->c and a->c->d.
        assert rows == [{"x.name": "c"}, {"x.name": "d"}]

    def test_range(self, chain_db):
        rows = chain_db.execute(
            "MATCH (a:P {name:'a'})-[:KNOWS*1..3]->(x) "
            "RETURN DISTINCT x.name ORDER BY x.name"
        )
        assert rows == [{"x.name": "b"}, {"x.name": "c"}, {"x.name": "d"}]

    def test_rel_variable_binds_edge_list(self, chain_db):
        rows = chain_db.execute(
            "MATCH (a:P {name:'a'})-[r:KNOWS*2..2]->(x:P {name:'d'}) "
            "RETURN size(r) AS hops"
        )
        assert rows == [{"hops": 2}]

    def test_zero_hops_includes_source(self, chain_db):
        rows = chain_db.execute(
            "MATCH (a:P {name:'a'})-[:KNOWS*0..1]->(x) "
            "RETURN x.name ORDER BY x.name"
        )
        assert rows == [{"x.name": "a"}, {"x.name": "b"}, {"x.name": "c"}]

    def test_edge_uniqueness_per_path(self, chain_db):
        # Undirected traversal would bounce a-b-a without uniqueness.
        rows = chain_db.execute(
            "MATCH (a:P {name:'a'})-[:KNOWS*2..2]-(x) "
            "RETURN x.name ORDER BY x.name"
        )
        names = [row["x.name"] for row in rows]
        assert "a" not in names  # no immediate back-tracking over one edge

    def test_inline_properties_apply_to_every_hop(self, chain_db):
        rows = chain_db.execute(
            "MATCH (a:P {name:'a'})-[:KNOWS*1..3 {w: 1}]->(x) "
            "RETURN DISTINCT x.name ORDER BY x.name"
        )
        # The w=2 shortcut is excluded; only the w=1 chain survives.
        assert rows == [{"x.name": "b"}, {"x.name": "c"}, {"x.name": "d"}]

    def test_incoming_direction(self, chain_db):
        rows = chain_db.execute(
            "MATCH (d:P {name:'d'})<-[:KNOWS*1..3]-(x) "
            "RETURN DISTINCT x.name ORDER BY x.name"
        )
        assert rows == [{"x.name": "a"}, {"x.name": "b"}, {"x.name": "c"}]

    def test_bound_destination(self, chain_db):
        rows = chain_db.execute(
            "MATCH (a:P {name:'a'}), (d:P {name:'d'}) "
            "MATCH (a)-[r:KNOWS*1..3]->(d) RETURN size(r) AS hops "
            "ORDER BY hops"
        )
        assert rows == [{"hops": 2}, {"hops": 3}]


class TestTemporalVarLength:
    def test_snapshot_variable_length(self, chain_db):
        db = chain_db
        t_before = db.now()
        db.execute("MATCH (b:P {name:'b'})-[r:KNOWS]->(c:P {name:'c'}) DELETE r")
        rows = db.execute(
            "MATCH (a:P {name:'a'})-[:KNOWS*1..3]->(x) "
            "RETURN DISTINCT x.name ORDER BY x.name"
        )
        # b-c is cut: d only reachable via the a->c shortcut now.
        assert rows == [{"x.name": "b"}, {"x.name": "c"}, {"x.name": "d"}]
        rows = db.execute(
            f"MATCH (a:P {{name:'a'}})-[:KNOWS*3..3]->(x) TT SNAPSHOT {t_before - 1} "
            "RETURN x.name"
        )
        assert rows == [{"x.name": "d"}]  # the 3-hop chain existed then
        rows = db.execute(
            "MATCH (a:P {name:'a'})-[:KNOWS*3..3]->(x) RETURN x.name"
        )
        assert rows == []  # and is gone now

    def test_snapshot_after_gc(self, chain_db):
        db = chain_db
        t_before = db.now()
        db.execute("MATCH (b:P {name:'b'})-[r:KNOWS]->(c:P {name:'c'}) DELETE r")
        db.collect_garbage()
        rows = db.execute(
            f"MATCH (a:P {{name:'a'}})-[:KNOWS*3..3]->(x) TT SNAPSHOT {t_before - 1} "
            "RETURN x.name"
        )
        assert rows == [{"x.name": "d"}]
