"""The serving layer: protocol, sessions, overload, chaos, drain.

Run with ``pytest -m serving``.  Every test spins up a real asyncio
server on a loopback port (``ServerThread``) against a small engine,
and talks to it over real sockets — the retrying client, raw frames,
or both.  The session-death test is property-style: a client killed at
*any* protocol step must leave the engine balanced (no zombie
transaction, no leaked admission slot).
"""

from __future__ import annotations

import socket
import struct
import time

import pytest

from repro import AeonG, FAILPOINTS
from repro.errors import (
    OverloadError,
    ProtocolError,
    SerializationConflict,
    ServerError,
    TransactionTimeout,
)
from repro.resilience import ResilienceConfig, RetryPolicy
from repro.server import Client, ServerThread
from repro.server.app import ServerConfig
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    SITE_CONN_READ,
    SITE_CONN_WRITE,
    classify,
    decode_body,
    decode_length,
    encode_frame,
    error_response,
    shed_response,
)

pytestmark = pytest.mark.serving

ONE_SHOT = RetryPolicy(max_attempts=1)
FAST_RETRY = RetryPolicy(max_attempts=6, base_delay=0.005, max_delay=0.05)


@pytest.fixture
def engine():
    db = AeonG(
        gc_interval_transactions=0,
        resilience=ResilienceConfig(
            max_concurrent_transactions=2, admission_timeout=0.05
        ),
    )
    yield db
    db.close()


@pytest.fixture
def server(engine):
    thread = ServerThread(
        engine,
        ServerConfig(max_connections=8, executor_workers=4,
                     shed_retry_after=0.01, drain_grace=2.0),
    )
    host, port = thread.start()
    yield thread, host, port
    FAILPOINTS.clear()
    thread.stop()


def _wait_balanced(engine, deadline: float = 5.0) -> dict:
    """Poll until the engine shows no active txn and no held slot."""
    until = time.monotonic() + deadline
    while time.monotonic() < until:
        metrics = engine.metrics()
        admission = metrics["resilience"]["admission"]
        if (
            metrics["transactions"]["active"] == 0
            and admission["in_flight"] == 0
        ):
            return metrics
        time.sleep(0.01)
    raise AssertionError(
        f"engine never rebalanced: {engine.metrics()['resilience']}"
    )


# -- protocol unit tests ----------------------------------------------------


class TestProtocol:
    def test_frame_roundtrip(self):
        payload = {"op": "query", "id": 3, "params": {"x": [1, 2, None]}}
        data = encode_frame(payload)
        assert decode_length(data[:4]) == len(data) - 4
        assert decode_body(data[4:]) == payload

    def test_oversized_declared_length_rejected(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_length(header)

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_body(b"[1, 2]")
        with pytest.raises(ProtocolError, match="unparseable"):
            decode_body(b"not json at all")

    def test_classify_taxonomy(self):
        assert classify(OverloadError("x")) == ("OVERLOADED", True)
        assert classify(SerializationConflict("x")) == ("CONFLICT", True)
        assert classify(TransactionTimeout("x")) == ("TXN_TIMEOUT", True)
        assert classify(ProtocolError("x")) == ("PROTOCOL", False)
        assert classify(ValueError("x")) == ("INTERNAL", False)

    def test_retry_after_only_on_retryable(self):
        overload = error_response(1, OverloadError("full"), retry_after=0.5)
        assert overload["error"]["retry_after"] == 0.5
        fatal = error_response(2, ProtocolError("bad"), retry_after=0.5)
        assert "retry_after" not in fatal["error"]
        shed = shed_response(3, "draining", retry_after=0.1)
        assert shed["error"]["code"] == "SHUTTING_DOWN"
        assert shed["error"]["retryable"] is True

    def test_socket_sites_registered(self):
        assert SITE_CONN_READ in FAILPOINTS.sites()
        assert SITE_CONN_WRITE in FAILPOINTS.sites()


# -- session layer ----------------------------------------------------------


class TestSessions:
    def test_query_before_hello_is_protocol_error(self, server):
        _, host, port = server
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(encode_frame({"op": "query", "text": "MATCH (n) RETURN n", "id": 1}))
            response = _read_response(sock)
        assert response["ok"] is False
        assert response["error"]["code"] == "PROTOCOL"

    def test_handshake_and_basic_ops(self, server):
        _, host, port = server
        with Client(host, port) as client:
            assert client.ping()
            health = client.health()
            assert health["status"] == "ok"
            assert health["degraded"] is False
            assert client.ready() is True
            metrics = client.metrics()
            assert "server" in metrics and "resilience" in metrics

    def test_autocommit_and_interactive_transaction(self, server, engine):
        _, host, port = server
        with Client(host, port) as client:
            client.query(
                "CREATE (n:P {ext_id: $e, name: $n})",
                {"e": "a", "n": "Ann"},
            )
            client.begin()
            client.query("CREATE (n:P {ext_id: $e})", {"e": "b"})
            commit_ts = client.commit()
            assert commit_ts > 0
            client.begin()
            client.query("CREATE (n:P {ext_id: $e})", {"e": "c"})
            client.abort()
            rows = client.query("MATCH (n:P) RETURN n.ext_id")
        assert sorted(r["n.ext_id"] for r in rows) == ["a", "b"]
        _wait_balanced(engine)

    def test_prepared_statements(self, server):
        _, host, port = server
        with Client(host, port) as client:
            client.prepare("mk", "CREATE (n:P {ext_id: $e})")
            client.prepare("get", "MATCH (n {ext_id: $e}) RETURN n.ext_id")
            client.execute("mk", {"e": "p9"})
            rows = client.execute("get", {"e": "p9"})
            assert rows == [{"n.ext_id": "p9"}]
            # eager validation: a syntax error fails at prepare time
            client.policy = ONE_SHOT
            with pytest.raises(ServerError) as info:
                client.prepare("bad", "CREATE (((")
            assert info.value.code == "QUERY_ERROR"
            with pytest.raises(ServerError) as info:
                client.execute("never-prepared")
            assert info.value.code == "PROTOCOL"

    def test_per_request_deadline_times_out_transaction(self, server, engine):
        _, host, port = server
        with Client(host, port) as client:
            client.policy = ONE_SHOT
            client.begin(timeout=0.05)
            time.sleep(0.4)  # watchdog aborts the expired txn
            with pytest.raises(ServerError) as info:
                client.query("MATCH (n) RETURN n")
            assert info.value.code == "TXN_TIMEOUT"
            assert info.value.retryable is True
            # the session forgot the dead txn: new work is accepted
            assert client.query("MATCH (n) RETURN n") == []
        _wait_balanced(engine)

    def test_unknown_op_and_double_begin(self, server):
        _, host, port = server
        with Client(host, port) as client:
            client.policy = ONE_SHOT
            with pytest.raises(ServerError) as info:
                client.request({"op": "frobnicate"})
            assert info.value.code == "PROTOCOL"
            client.begin()
            with pytest.raises(ServerError) as info:
                client.request({"op": "begin"})
            assert info.value.code == "TXN_STATE"
            client.abort()


# -- overload posture -------------------------------------------------------


class TestOverload:
    def test_admission_overload_is_structured_and_retryable(
        self, server, engine
    ):
        _, host, port = server
        holders = [Client(host, port), Client(host, port)]
        for holder in holders:
            holder.connect()
            holder.begin()
        straggler = Client(host, port, policy=ONE_SHOT)
        straggler.connect()
        with pytest.raises(ServerError) as info:
            straggler.begin()
        assert info.value.code == "OVERLOADED"
        assert info.value.retryable is True
        assert info.value.retry_after is not None
        for holder in holders:
            holder.abort()
            holder.close()
        straggler.close()
        _wait_balanced(engine)

    def test_connection_limit_sheds_not_resets(self, engine):
        thread = ServerThread(
            engine, ServerConfig(max_connections=1, shed_retry_after=0.01)
        )
        host, port = thread.start()
        try:
            first = Client(host, port)
            first.connect()
            second = Client(host, port, policy=ONE_SHOT)
            with pytest.raises(ServerError) as info:
                second.connect()
            assert info.value.code == "OVERLOADED"
            assert info.value.retryable is True
            first.close()
            time.sleep(0.1)
            # slot freed: the retrying client now gets in
            third = Client(host, port, policy=FAST_RETRY)
            with third:
                assert third.ping()
        finally:
            thread.stop()

    def test_overloaded_begin_retries_to_success(self, server, engine):
        _, host, port = server
        holder = Client(host, port)
        holder.connect()
        holder.begin()

        import threading

        def release_soon():
            time.sleep(0.1)
            holder.abort()

        releaser = threading.Thread(target=release_soon)
        releaser.start()
        # 2 slots, 1 held; grab the second, contend for the first
        other = Client(host, port)
        other.connect()
        other.begin()
        contender = Client(host, port, policy=FAST_RETRY)
        contender.connect()
        contender.begin()  # retries through OVERLOADED until released
        contender.abort()
        releaser.join()
        other.abort()
        for client in (holder, other, contender):
            client.close()
        _wait_balanced(engine)


# -- chaos: socket failpoints ----------------------------------------------


class TestSocketFaults:
    @pytest.mark.parametrize(
        "site,mode",
        [
            (SITE_CONN_READ, "error"),
            (SITE_CONN_READ, "delay"),
            (SITE_CONN_READ, "disconnect"),
            (SITE_CONN_READ, "short-read"),
            (SITE_CONN_WRITE, "error"),
            (SITE_CONN_WRITE, "delay"),
            (SITE_CONN_WRITE, "disconnect"),
            (SITE_CONN_WRITE, "torn-write"),
        ],
    )
    def test_client_survives_every_socket_fault(self, server, mode, site):
        _, host, port = server
        client = Client(host, port, policy=FAST_RETRY)
        client.connect()
        try:
            FAILPOINTS.activate(site, mode, nth=1, times=1)
            assert client.ping()
            assert FAILPOINTS.stats(site).fired >= 1
        finally:
            FAILPOINTS.clear()
            client.close()

    def test_faulted_writes_are_not_lost_when_acked(self, server, engine):
        """Disconnect faults around a write: every acked create exists."""
        _, host, port = server
        acked = []
        client = Client(host, port, policy=FAST_RETRY)
        client.connect()
        FAILPOINTS.activate(SITE_CONN_WRITE, "disconnect", nth=3)
        try:
            for i in range(10):
                try:
                    client.query(
                        "CREATE (n:W {ext_id: $e})", {"e": f"w{i}"}
                    )
                    acked.append(f"w{i}")
                except (ServerError, ConnectionError, OSError):
                    pass
        finally:
            FAILPOINTS.clear()
            client.close()
        rows = engine.execute("MATCH (n:W) RETURN n.ext_id")
        stored = {row["n.ext_id"] for row in rows}
        assert set(acked) <= stored
        _wait_balanced(engine)


# -- session death at every protocol step (property-style) ------------------


def _read_response(sock) -> dict:
    header = _recv_exactly(sock, 4)
    return decode_body(_recv_exactly(sock, decode_length(header)))


def _recv_exactly(sock, n: int) -> bytes:
    data = b""
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        if not chunk:
            raise ConnectionResetError("peer closed")
        data += chunk
    return data


def _steps():
    """Each step drives a raw socket partway through the protocol and
    returns; the test then kills the socket at that exact point."""

    def connected(sock):
        pass

    def after_hello(sock):
        sock.sendall(encode_frame({"op": "hello", "version": 1, "id": 1}))
        _read_response(sock)

    def after_begin(sock):
        after_hello(sock)
        sock.sendall(encode_frame({"op": "begin", "id": 2}))
        assert _read_response(sock)["ok"]

    def mid_statement(sock):
        after_begin(sock)
        sock.sendall(encode_frame({
            "op": "query", "id": 3,
            "text": "CREATE (n:K {ext_id: $e})", "params": {"e": "dead"},
        }))
        # die without reading the response

    def torn_frame(sock):
        after_begin(sock)
        frame = encode_frame({"op": "query", "id": 3,
                              "text": "MATCH (n) RETURN n"})
        sock.sendall(frame[: len(frame) // 2])  # half a frame, then die

    def mid_commit(sock):
        mid_statement(sock)
        time.sleep(0.05)
        sock.sendall(encode_frame({"op": "commit", "id": 4}))
        # die with the commit in flight, ack unread

    return [
        ("connected", connected),
        ("after_hello", after_hello),
        ("after_begin", after_begin),
        ("mid_statement", mid_statement),
        ("torn_frame", torn_frame),
        ("mid_commit", mid_commit),
    ]


class TestSessionDeath:
    @pytest.mark.parametrize("name,step", _steps(), ids=[n for n, _ in _steps()])
    def test_killed_client_always_leaves_engine_balanced(
        self, server, engine, name, step
    ):
        _, host, port = server
        sock = socket.create_connection((host, port), timeout=5)
        try:
            step(sock)
        finally:
            # hard kill: RST instead of FIN, like a crashed process
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            sock.close()
        metrics = _wait_balanced(engine)
        admission = metrics["resilience"]["admission"]
        assert admission["in_flight"] == 0
        assert metrics["transactions"]["active"] == 0
        # and the server is still alive for the next client
        with Client(host, port) as client:
            assert client.ping()

    def test_many_killed_sessions_never_exhaust_the_gate(self, server, engine):
        """Repeated mid-transaction deaths must not consume the 2-slot
        gate: after the storm, a well-behaved client still gets in."""
        _, host, port = server
        for _ in range(6):
            sock = socket.create_connection((host, port), timeout=5)
            sock.sendall(encode_frame({"op": "hello", "version": 1, "id": 1}))
            _read_response(sock)
            sock.sendall(encode_frame({"op": "begin", "id": 2}))
            assert _read_response(sock)["ok"]
            sock.close()
        _wait_balanced(engine)
        with Client(host, port) as client:
            client.begin()
            client.query("CREATE (n:S {ext_id: $e})", {"e": "alive"})
            client.commit()
        assert engine.execute("MATCH (n:S) RETURN n.ext_id") == [
            {"n.ext_id": "alive"}
        ]


# -- interactive-transaction loss -------------------------------------------


class TestTransactionLoss:
    """A connection that dies while a ``begin()`` transaction is open
    took its server session — and the transaction — with it.  The
    client must surface a structured ``TXN_LOST`` error on the next
    operation, never silently replay onto a fresh session (regression:
    the reconnect path used to re-run the statement in autocommit)."""

    def _kill_connection(self, client):
        """Tear the transport under the client without telling it."""
        client._sock.shutdown(socket.SHUT_RDWR)
        client._sock.close()

    def test_connection_death_mid_txn_raises_txn_lost(self, server, engine):
        _thread, host, port = server
        client = Client(host, port, policy=FAST_RETRY)
        client.connect()
        client.begin()
        client.query("CREATE (n:L {ext_id: 'doomed'})")
        self._kill_connection(client)
        with pytest.raises(ServerError) as info:
            client.query("CREATE (n:L {ext_id: 'after'})")
        assert info.value.code == "TXN_LOST"
        assert info.value.retryable is False
        assert client.stats["txn_lost"] == 1
        # The statement was NOT silently replayed in autocommit: the
        # rolled-back transaction's writes are gone, and nothing new
        # was created behind the caller's back.
        _wait_balanced(engine)
        assert engine.execute("MATCH (n:L) RETURN n.ext_id") == []
        # The client recovers: a fresh begin/commit works.
        client.begin()
        client.query("CREATE (n:L {ext_id: 'retried'})")
        assert client.commit() > 0
        assert engine.execute("MATCH (n:L) RETURN n.ext_id") == [
            {"n.ext_id": "retried"}
        ]
        client.close()

    def test_injected_disconnect_mid_txn_raises_txn_lost(
        self, server, engine
    ):
        _thread, host, port = server
        client = Client(host, port, policy=FAST_RETRY)
        client.connect()
        client.begin()
        client.query("CREATE (n:L {ext_id: 'doomed'})")
        # The write site fires while the server answers the next
        # request, so the disconnect lands deterministically on it.
        FAILPOINTS.activate(SITE_CONN_WRITE, "disconnect", times=1)
        with pytest.raises(ServerError) as info:
            client.query("CREATE (n:L {ext_id: 'after'})")
        assert info.value.code == "TXN_LOST"
        FAILPOINTS.clear()
        _wait_balanced(engine)
        assert engine.execute("MATCH (n:L) RETURN n.ext_id") == []
        client.close()

    def test_commit_and_abort_clear_the_txn_flag(self, server, engine):
        _thread, host, port = server
        client = Client(host, port, policy=FAST_RETRY)
        client.connect()
        client.begin()
        client.query("CREATE (n:L {ext_id: 'kept'})")
        client.commit()
        # After commit, a torn connection is an ordinary reconnect —
        # no transaction was open, so no TXN_LOST.
        self._kill_connection(client)
        rows = client.query("MATCH (n:L) RETURN n.ext_id")
        assert rows == [{"n.ext_id": "kept"}]
        assert client.stats["txn_lost"] == 0
        client.begin()
        client.abort()
        self._kill_connection(client)
        assert client.query("MATCH (n:L) RETURN n.ext_id") == rows
        assert client.stats["txn_lost"] == 0
        client.close()

    def test_autocommit_clients_reconnect_silently(self, server, engine):
        """Without an open transaction the old behavior stands: the
        connection loss is retried transparently."""
        _thread, host, port = server
        client = Client(host, port, policy=FAST_RETRY)
        client.connect()
        client.query("CREATE (n:L {ext_id: 'a'})")
        self._kill_connection(client)
        client.query("CREATE (n:L {ext_id: 'b'})")
        assert client.stats["reconnects"] >= 1
        assert client.stats["txn_lost"] == 0
        rows = engine.execute("MATCH (n:L) RETURN n.ext_id")
        assert {r["n.ext_id"] for r in rows} == {"a", "b"}
        client.close()


# -- drain ------------------------------------------------------------------


class TestDrain:
    def test_drain_sheds_new_work_finishes_old(self, engine):
        import asyncio

        thread = ServerThread(
            engine, ServerConfig(shed_retry_after=0.01, drain_grace=2.0)
        )
        host, port = thread.start()
        client = Client(host, port, policy=ONE_SHOT)
        client.connect()
        client.begin()
        client.query("CREATE (n:D {ext_id: $e})", {"e": "drained"})
        future = asyncio.run_coroutine_threadsafe(
            thread.server.shutdown(), thread._loop
        )
        try:
            time.sleep(0.05)
            # new work on the draining server is shed, structured
            with pytest.raises(ServerError) as info:
                client.query("MATCH (n) RETURN n")
            assert info.value.code == "SHUTTING_DOWN"
            assert info.value.retryable is True
            # but the in-flight transaction may still finish
            assert client.commit() > 0
        finally:
            future.result(timeout=10)
            client.close()
            thread.stop()
        assert engine.execute("MATCH (n:D) RETURN n.ext_id") == [
            {"n.ext_id": "drained"}
        ]
        assert thread.server.counters["sessions_killed"] == 0
