"""Unit + property tests for the binary value serializer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.serde import (
    decode_mapping,
    decode_value,
    encode_mapping,
    encode_value,
    encoded_size,
)
from repro.errors import CorruptionError


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 127, 128, -128, 2**40, -(2**40), 10**30],
    )
    def test_roundtrip_ints_and_bools(self, value):
        assert decode_value(encode_value(value)) == value

    @pytest.mark.parametrize("value", [0.0, -1.5, 3.141592653589793, 1e300])
    def test_roundtrip_floats(self, value):
        assert decode_value(encode_value(value)) == value

    def test_bool_is_not_confused_with_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert encode_value(True) != encode_value(1)

    @pytest.mark.parametrize("value", ["", "hello", "héllo wörld", "日本語", "a" * 10_000])
    def test_roundtrip_strings(self, value):
        assert decode_value(encode_value(value)) == value

    def test_roundtrip_bytes(self):
        raw = bytes(range(256))
        assert decode_value(encode_value(raw)) == raw

    def test_small_ints_encode_compactly(self):
        assert len(encode_value(5)) == 2  # tag + 1 varint byte
        assert len(encode_value(-3)) == 2

    def test_negative_ints_stay_small_via_zigzag(self):
        assert len(encode_value(-1)) <= len(encode_value(-(2**40)))


class TestContainers:
    def test_roundtrip_list(self):
        value = [1, "two", 3.0, None, True, [4, 5]]
        assert decode_value(encode_value(value)) == value

    def test_tuple_decodes_as_list(self):
        assert decode_value(encode_value((1, 2))) == [1, 2]

    def test_roundtrip_nested_map(self):
        value = {"a": 1, "b": {"c": [1, 2, {"d": None}]}}
        assert decode_value(encode_value(value)) == value

    def test_mapping_helpers(self):
        mapping = {"name": "Jack", "balance": 270}
        assert decode_mapping(encode_mapping(mapping)) == mapping

    def test_decode_mapping_rejects_non_map(self):
        with pytest.raises(CorruptionError):
            decode_mapping(encode_value([1, 2]))

    def test_empty_containers(self):
        assert decode_value(encode_value([])) == []
        assert decode_value(encode_value({})) == {}


class TestErrors:
    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            encode_value(object())

    def test_set_is_unsupported(self):
        with pytest.raises(TypeError):
            encode_value({1, 2})

    def test_trailing_garbage_detected(self):
        with pytest.raises(CorruptionError):
            decode_value(encode_value(1) + b"x")

    def test_truncated_input_detected(self):
        encoded = encode_value("hello world")
        with pytest.raises(CorruptionError):
            decode_value(encoded[:-3])

    def test_unknown_tag_detected(self):
        with pytest.raises(CorruptionError):
            decode_value(b"\xffxx")

    def test_empty_input_detected(self):
        with pytest.raises(CorruptionError):
            decode_value(b"")

    def test_truncated_varint_detected(self):
        with pytest.raises(CorruptionError):
            decode_value(b"i\x80")  # continuation bit set, no next byte


def test_encoded_size_matches_encoding():
    for value in [None, 42, "hello", {"a": [1, 2, 3]}]:
        assert encoded_size(value) == len(encode_value(value))


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=50),
    st.binary(max_size=50),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=10), children, max_size=6),
    ),
    max_leaves=25,
)


@given(_values)
@settings(max_examples=300)
def test_roundtrip_property(value):
    decoded = decode_value(encode_value(value))
    assert decoded == _normalize(value)


def _normalize(value):
    """Tuples become lists on the wire; everything else is identity."""
    if isinstance(value, tuple):
        return [_normalize(v) for v in value]
    if isinstance(value, list):
        return [_normalize(v) for v in value]
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    return value


@given(_values, _values)
@settings(max_examples=150)
def test_distinct_values_distinct_encodings(a, b):
    if _normalize(a) != _normalize(b):
        assert encode_value(a) != encode_value(b)
